//! The delta circuit: a compiled `QuerySpec` maintained incrementally.

use crate::acc::RetractableAcc;
use rqp_common::expr::BoundExpr;
use rqp_common::{DataType, Field, Result, Row, RqpError, Schema, SharedClock, Value};
use rqp_exec::AggFunc;
use rqp_opt::QuerySpec;
use rqp_storage::changelog::{ChangeOp, ChangeRecord};
use rqp_storage::Catalog;
use std::collections::{BTreeMap, HashMap};

/// What one batch of changelog records did to the view: the rows a
/// subscriber inserts into and retracts from its copy. Both lists are
/// canonically ordered (full-row comparison), so packets are deterministic
/// regardless of internal hash-index iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaPacket {
    /// Epoch of the last changelog record folded into this packet.
    pub epoch: u64,
    /// Rows to add to the view (duplicates mean multiplicity).
    pub inserted: Vec<Row>,
    /// Rows to remove from the view.
    pub retracted: Vec<Row>,
}

impl DeltaPacket {
    /// True if the batch changed nothing visible.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.retracted.is_empty()
    }

    /// Total rows moved (inserted + retracted).
    pub fn delta_rows(&self) -> usize {
        self.inserted.len() + self.retracted.len()
    }
}

/// Sort rows into the canonical (full-row `total_cmp`) order used for
/// view-consistency comparison — a maintained view is an unordered
/// multiset, so both it and a from-scratch run are compared canonically.
pub fn canonicalize(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// One base-table input: bound local filter over the qualified schema.
#[derive(Debug)]
struct TableInput {
    name: String,
    schema: Schema,
    /// `None` when the predicate is trivially TRUE.
    filter: Option<BoundExpr>,
}

/// A weighted row multiset keyed by join key.
type DeltaIndex = HashMap<Vec<Value>, HashMap<Row, i64>>;

/// One left-deep join stage: the accumulated intermediate (left) against
/// the next base table (right), with a delta index per side.
#[derive(Debug)]
struct JoinStage {
    /// Key column positions in the accumulated intermediate schema.
    left_key: Vec<usize>,
    /// Key column positions in the right table's qualified schema.
    right_key: Vec<usize>,
    left_index: DeltaIndex,
    right_index: DeltaIndex,
}

/// The aggregation stage: per-group retractable accumulators.
#[derive(Debug)]
struct AggStage {
    /// Group column positions in the joined schema.
    group_cols: Vec<usize>,
    /// `(function, input column position)` per aggregate.
    aggs: Vec<(AggFunc, Option<usize>)>,
    /// Group key → (weighted row count, per-aggregate state). Ordered by
    /// key so snapshots come out in `HashAggOp`'s sorted-group order.
    groups: BTreeMap<Vec<Value>, (i64, Vec<RetractableAcc>)>,
}

impl AggStage {
    /// The group's current output row (group key ++ aggregate values),
    /// pre-projection; `None` when the group has no rows (a global
    /// aggregate — empty `group_cols` — always has an output row, matching
    /// `HashAggOp` over empty input).
    fn output(&self, key: &[Value]) -> Option<Row> {
        let empty = (0, vec![RetractableAcc::new(); self.aggs.len()]);
        let (rows, accs) = match self.groups.get(key) {
            Some(g) => g,
            None if self.group_cols.is_empty() => &empty,
            None => return None,
        };
        if *rows <= 0 && !self.group_cols.is_empty() {
            return None;
        }
        let mut out = key.to_vec();
        out.extend(self.aggs.iter().zip(accs).map(|((f, _), a)| a.finish(*f)));
        Some(out)
    }
}

/// Per-`apply` scratch: rows emitted so far plus, for aggregates, each
/// touched group's output *before* the batch (computed at first touch, so
/// one coalesced retract/insert pair is emitted per group per packet).
#[derive(Default)]
struct PacketAcc {
    inserted: Vec<Row>,
    retracted: Vec<Row>,
    touched: BTreeMap<Vec<Value>, Option<Row>>,
}

/// A compiled standing query: delta-aware filter → joins → aggregation →
/// projection, plus the maintained view itself. See the crate docs for the
/// view-consistency contract.
#[derive(Debug)]
pub struct ViewCircuit {
    spec: QuerySpec,
    /// Base inputs in left-deep join order (connectivity-greedy over the
    /// spec's declaration order).
    inputs: Vec<TableInput>,
    stages: Vec<JoinStage>,
    agg: Option<AggStage>,
    /// Output column positions (into the joined or aggregate schema);
    /// `None` keeps everything.
    projection: Option<Vec<usize>>,
    /// The final output schema (post-projection).
    out_schema: Schema,
    /// Maintained multiset for non-aggregate views (post-projection rows
    /// with net weights, in canonical order). Aggregate views are derived
    /// from the `AggStage` groups instead.
    view: BTreeMap<Row, i64>,
    /// One past the epoch of the last record folded in.
    cursor: u64,
}

/// Resolve `name` in `schema`: exact match (specs use qualified names, agg
/// aliases are unqualified) — the same `Schema::index_of` contract the
/// batch operators use.
fn resolve(schema: &Schema, name: &str) -> Result<usize> {
    schema.index_of(name)
}

impl ViewCircuit {
    /// Compile `spec` against `catalog` into an empty circuit (no rows
    /// folded in yet; see [`load_initial`](Self::load_initial)).
    ///
    /// Rejects `ORDER BY`/`LIMIT` specs: a standing view is an unordered
    /// multiset maintained under retraction, where "the first k" is not a
    /// stable notion. Subscribers order/truncate on their side.
    pub fn compile(spec: &QuerySpec, catalog: &Catalog) -> Result<ViewCircuit> {
        spec.validate()?;
        if !spec.order_by.is_empty() || spec.limit.is_some() {
            return Err(RqpError::Invalid(
                "standing subscriptions maintain unordered views; ORDER BY/LIMIT are not supported — order on the subscriber side".into(),
            ));
        }
        // Left-deep join order: declaration order, reordered greedily so
        // every table joins a connected prefix (validate() guarantees the
        // join graph is connected, so this always succeeds).
        let mut order: Vec<String> = vec![spec.tables[0].clone()];
        let mut remaining: Vec<String> = spec.tables[1..].to_vec();
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|t| {
                    spec.joins
                        .iter()
                        .any(|e| order.iter().any(|o| e.connects(o, t)))
                })
                .expect("validated join graph is connected");
            order.push(remaining.remove(pos));
        }
        let mut inputs = Vec::with_capacity(order.len());
        for name in &order {
            let table = catalog.table(name)?;
            let schema = table.qualified_schema();
            let pred = spec.local_pred(name);
            let filter = if pred == rqp_common::Expr::true_() {
                None
            } else {
                Some(pred.bind(&schema)?)
            };
            inputs.push(TableInput { name: name.clone(), schema, filter });
        }
        // Join stages with key positions; the intermediate schema grows by
        // one table per stage.
        let mut joined_fields: Vec<Field> = inputs[0].schema.fields().to_vec();
        let mut stages = Vec::with_capacity(order.len().saturating_sub(1));
        for (s, input) in inputs.iter().enumerate().skip(1) {
            let acc_schema = Schema::new(joined_fields.clone());
            let mut left_key = Vec::new();
            let mut right_key = Vec::new();
            for e in &spec.joins {
                if let Some(o) = e.oriented_from(&input.name) {
                    if order[..s].contains(&o.right_table) {
                        right_key.push(resolve(&input.schema, &o.left_qualified())?);
                        left_key.push(resolve(&acc_schema, &o.right_qualified())?);
                    }
                }
            }
            debug_assert!(!left_key.is_empty(), "greedy order guarantees an edge");
            stages.push(JoinStage {
                left_key,
                right_key,
                left_index: HashMap::new(),
                right_index: HashMap::new(),
            });
            joined_fields.extend(input.schema.fields().iter().cloned());
        }
        let joined_schema = Schema::new(joined_fields);
        // Aggregation binding mirrors HashAggOp::new (including output
        // field types), then projection resolves over the aggregate's
        // output schema — the same stacking order as the batch planner.
        let (agg, pre_proj_schema) = if !spec.aggs.is_empty() || !spec.group_by.is_empty() {
            let mut group_cols = Vec::with_capacity(spec.group_by.len());
            let mut fields: Vec<Field> = Vec::new();
            for g in &spec.group_by {
                let i = resolve(&joined_schema, g)?;
                group_cols.push(i);
                fields.push(joined_schema.field(i).clone());
            }
            let mut aggs = Vec::with_capacity(spec.aggs.len());
            for a in &spec.aggs {
                let col = a
                    .col
                    .as_deref()
                    .map(|c| resolve(&joined_schema, c))
                    .transpose()?;
                let dtype = match a.func {
                    AggFunc::Count => DataType::Int,
                    AggFunc::Sum | AggFunc::Avg => DataType::Float,
                    AggFunc::Min | AggFunc::Max => col
                        .map(|i| joined_schema.field(i).dtype)
                        .unwrap_or(DataType::Float),
                };
                fields.push(Field::new(a.alias.clone(), dtype));
                aggs.push((a.func, col));
            }
            let mut groups = BTreeMap::new();
            if spec.group_by.is_empty() {
                // A global aggregate always has exactly one (possibly
                // empty) group — materialize it so the initial snapshot
                // over empty input already carries the COUNT=0 row.
                groups.insert(Vec::new(), (0, vec![RetractableAcc::new(); aggs.len()]));
            }
            (Some(AggStage { group_cols, aggs, groups }), Schema::new(fields))
        } else {
            (None, joined_schema)
        };
        let (projection, out_schema) = match &spec.projections {
            Some(cols) => {
                let idx: Vec<usize> = cols
                    .iter()
                    .map(|c| resolve(&pre_proj_schema, c))
                    .collect::<Result<_>>()?;
                let fields = idx
                    .iter()
                    .map(|&i| pre_proj_schema.field(i).clone())
                    .collect();
                (Some(idx), Schema::new(fields))
            }
            None => (None, pre_proj_schema),
        };
        Ok(ViewCircuit {
            spec: spec.clone(),
            inputs,
            stages,
            agg,
            projection,
            out_schema,
            view: BTreeMap::new(),
            cursor: 0,
        })
    }

    /// The compiled spec.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// The view's output schema (post-projection).
    pub fn out_schema(&self) -> &Schema {
        &self.out_schema
    }

    /// One past the epoch of the last record folded in — the cursor to
    /// pass to `Changelog::since` for the next poll.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Set the changelog cursor (after an initial load that already covers
    /// everything up to `cursor`).
    pub fn set_cursor(&mut self, cursor: u64) {
        self.cursor = cursor;
    }

    /// Fold the tables' *current* contents in as the initial state,
    /// charging `clock` for the build. Call once, right after `compile`,
    /// with the same catalog (or a snapshot taken at the changelog cursor
    /// stored with [`set_cursor`](Self::set_cursor)).
    pub fn load_initial(&mut self, catalog: &Catalog, clock: &SharedClock) -> Result<()> {
        for i in 0..self.inputs.len() {
            let table = catalog.table(&self.inputs[i].name)?;
            for row in table.iter_rows() {
                self.ingest(i, row, 1, clock, None);
            }
        }
        Ok(())
    }

    /// Fold a batch of changelog records into the view, returning the
    /// delta packet subscribers apply to their copies. Records for tables
    /// the spec doesn't reference are skipped (the changelog is shared
    /// catalog-wide). Every touched row charges the shared cost clock.
    pub fn apply(&mut self, recs: &[ChangeRecord], clock: &SharedClock) -> DeltaPacket {
        let mut acc = PacketAcc::default();
        let mut epoch = self.cursor.saturating_sub(1);
        for rec in recs {
            epoch = epoch.max(rec.epoch);
            self.cursor = self.cursor.max(rec.epoch + 1);
            let Some(i) = self.inputs.iter().position(|t| t.name == rec.table) else {
                continue;
            };
            let w = match rec.op {
                ChangeOp::Insert => 1,
                ChangeOp::Delete => -1,
            };
            self.ingest(i, rec.row.clone(), w, clock, Some(&mut acc));
        }
        // Aggregate finalization: one retract/insert pair per changed
        // group, comparing pre-batch and post-batch output rows.
        if let Some(agg) = &mut self.agg {
            // Drop fully-retracted groups (a from-scratch run would not
            // see them); the global group stays, COUNT=0 and all.
            if !agg.group_cols.is_empty() {
                agg.groups.retain(|_, (rows, _)| *rows > 0);
            }
        }
        if self.agg.is_some() {
            let touched = std::mem::take(&mut acc.touched);
            for (key, old) in touched {
                let new = {
                    let agg = self.agg.as_ref().expect("agg mode");
                    agg.output(&key).map(|r| self.project(r))
                };
                if old == new {
                    continue;
                }
                if let Some(o) = old {
                    acc.retracted.push(o);
                }
                if let Some(n) = new {
                    acc.inserted.push(n);
                }
            }
        }
        DeltaPacket {
            epoch,
            inserted: canonicalize(acc.inserted),
            retracted: canonicalize(acc.retracted),
        }
    }

    /// The maintained view's current contents, in canonical order.
    pub fn snapshot(&self) -> Vec<Row> {
        match &self.agg {
            Some(agg) => {
                // Groups iterate in key order — the same sorted-group
                // order HashAggOp emits.
                let rows: Vec<Row> = agg
                    .groups
                    .keys()
                    .filter_map(|k| agg.output(k))
                    .map(|r| self.project(r))
                    .collect();
                canonicalize(rows)
            }
            None => self
                .view
                .iter()
                .flat_map(|(row, &w)| {
                    std::iter::repeat_with(move || row.clone()).take(w.max(0) as usize)
                })
                .collect(),
        }
    }

    /// Rows currently materialized in the view (post-projection
    /// multiset size for non-aggregate views, live group count for
    /// aggregate ones) — the subscription's resident footprint.
    pub fn view_rows(&self) -> usize {
        match &self.agg {
            Some(agg) => agg.groups.len().max(usize::from(agg.group_cols.is_empty())),
            None => self.view.values().map(|&w| w.max(0) as usize).sum(),
        }
    }

    fn project(&self, row: Row) -> Row {
        match &self.projection {
            Some(idx) => idx.iter().map(|&i| row[i].clone()).collect(),
            None => row,
        }
    }

    /// Push one weighted base-table row through filter → joins → the
    /// terminal stage. `out` is `None` during the initial load (state is
    /// built, nothing is emitted).
    fn ingest(
        &mut self,
        input_idx: usize,
        row: Row,
        weight: i64,
        clock: &SharedClock,
        mut out: Option<&mut PacketAcc>,
    ) {
        clock.charge_cpu_tuples(1.0);
        let input = &self.inputs[input_idx];
        debug_assert_eq!(row.len(), input.schema.len(), "changelog row arity");
        if let Some(f) = &input.filter {
            if !f.eval_bool(&row) {
                return;
            }
        }
        // Propagate through the join chain. A delta on the first table
        // enters stage 0 on the left; a delta on table i>0 enters stage
        // i-1 on the right (joining everything already accumulated), then
        // flows left through the remaining stages.
        let mut cur: Vec<(Row, i64)> = vec![(row, weight)];
        let next_stage = input_idx;
        if input_idx > 0 {
            let stage = &mut self.stages[input_idx - 1];
            let (r, w) = &cur[0];
            let key: Vec<Value> = stage.right_key.iter().map(|&i| r[i].clone()).collect();
            clock.charge_hash_build(1.0);
            update_index(&mut stage.right_index, key.clone(), r.clone(), *w);
            let mut joined = Vec::new();
            if let Some(matches) = stage.left_index.get(&key) {
                for (lrow, lw) in matches {
                    if *lw == 0 {
                        continue;
                    }
                    let mut out_row = lrow.clone();
                    out_row.extend(r.iter().cloned());
                    joined.push((out_row, lw * w));
                }
            }
            clock.charge_cpu_tuples(joined.len() as f64);
            cur = joined;
        }
        for stage in &mut self.stages[next_stage..] {
            if cur.is_empty() {
                return;
            }
            let mut next = Vec::new();
            for (lrow, lw) in cur {
                let key: Vec<Value> =
                    stage.left_key.iter().map(|&i| lrow[i].clone()).collect();
                clock.charge_hash_build(1.0);
                update_index(&mut stage.left_index, key.clone(), lrow.clone(), lw);
                if let Some(matches) = stage.right_index.get(&key) {
                    for (rrow, rw) in matches {
                        if *rw == 0 {
                            continue;
                        }
                        let mut out_row = lrow.clone();
                        out_row.extend(rrow.iter().cloned());
                        next.push((out_row, lw * rw));
                    }
                }
            }
            clock.charge_cpu_tuples(next.len() as f64);
            cur = next;
        }
        // Terminal stage: fold into the aggregate groups or the multiset
        // view, emitting into the packet when one is being built.
        if let Some(agg) = &mut self.agg {
            for (row, w) in cur {
                let key: Vec<Value> =
                    agg.group_cols.iter().map(|&i| row[i].clone()).collect();
                if let Some(acc) = out.as_deref_mut() {
                    if !acc.touched.contains_key(&key) {
                        let old = agg.output(&key).map(|r| {
                            match &self.projection {
                                Some(idx) => idx.iter().map(|&i| r[i].clone()).collect(),
                                None => r,
                            }
                        });
                        acc.touched.insert(key.clone(), old);
                    }
                }
                clock.charge_hash_build(1.0);
                let n_aggs = agg.aggs.len();
                let (rows, accs) = agg
                    .groups
                    .entry(key)
                    .or_insert_with(|| (0, vec![RetractableAcc::new(); n_aggs]));
                *rows += w;
                for (a, (_, col)) in accs.iter_mut().zip(&agg.aggs) {
                    a.apply(col.map(|i| &row[i]), w);
                }
            }
        } else {
            for (row, w) in cur {
                let row = self.project(row);
                clock.charge_hash_build(1.0);
                let net = self.view.entry(row.clone()).or_insert(0);
                *net += w;
                debug_assert!(*net >= 0, "retraction of a row the view never held");
                if *net == 0 {
                    self.view.remove(&row);
                }
                if let Some(acc) = out.as_deref_mut() {
                    let (list, n) = if w > 0 {
                        (&mut acc.inserted, w as usize)
                    } else {
                        (&mut acc.retracted, (-w) as usize)
                    };
                    for _ in 0..n {
                        list.push(row.clone());
                    }
                }
            }
        }
    }
}

/// Merge `(row, weight)` into one side's delta index, dropping zeroed
/// entries so fully-retracted rows don't linger.
fn update_index(index: &mut DeltaIndex, key: Vec<Value>, row: Row, weight: i64) {
    let bucket = index.entry(key).or_default();
    let w = bucket.entry(row.clone()).or_insert(0);
    *w += weight;
    if *w == 0 {
        bucket.remove(&row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{CostClock, DataType};
    use rqp_exec::AggSpec;
    use rqp_storage::{Changelog, Table};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = Table::new(
            "t",
            Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
        );
        let u = Table::new(
            "u",
            Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Int)]),
        );
        c.add_table(t);
        c.add_table(u);
        c
    }

    /// Drive mutations through real tables + a real changelog, returning
    /// the packets from each poll alongside the circuit.
    struct Rig {
        catalog: Catalog,
        log: Arc<Changelog>,
        circuit: ViewCircuit,
        clock: SharedClock,
        cursor: u64,
    }

    impl Rig {
        fn new(spec: &QuerySpec) -> Rig {
            let catalog = catalog();
            let log = Arc::new(Changelog::new());
            catalog.attach_changelog(&log);
            let clock = CostClock::default_clock();
            let mut circuit = ViewCircuit::compile(spec, &catalog).unwrap();
            circuit.load_initial(&catalog, &clock).unwrap();
            Rig { catalog, log, circuit, clock, cursor: 0 }
        }

        fn insert(&mut self, table: &str, row: Row) {
            self.catalog.table_mut(table).unwrap().append(row);
        }

        fn delete_where(&mut self, table: &str, k: i64) {
            let t = self.catalog.table_mut(table).unwrap();
            while let Some(i) =
                (0..t.nrows()).find(|&i| t.row(i)[0] == Value::Int(k))
            {
                t.delete_row(i);
            }
        }

        fn poll(&mut self) -> DeltaPacket {
            let (recs, cur) = self.log.since(self.cursor);
            self.cursor = cur;
            self.circuit.apply(&recs, &self.clock)
        }

        /// From-scratch reference: evaluate the spec naively over the
        /// tables' current contents (filter → nested-loop joins in circuit
        /// order → agg via the batch accumulator semantics → projection).
        fn rerun(&self) -> Vec<Row> {
            let spec = self.circuit.spec().clone();
            let order: Vec<String> =
                self.circuit.inputs.iter().map(|t| t.name.clone()).collect();
            let mut rows: Vec<Row> = Vec::new();
            let mut schema_fields: Vec<Field> = Vec::new();
            for (i, name) in order.iter().enumerate() {
                let t = self.catalog.table(name).unwrap();
                let qschema = t.qualified_schema();
                let pred = spec.local_pred(name).bind(&qschema).unwrap();
                let filtered: Vec<Row> =
                    t.iter_rows().filter(|r| pred.eval_bool(r)).collect();
                if i == 0 {
                    rows = filtered;
                    schema_fields = qschema.fields().to_vec();
                    continue;
                }
                let acc_schema = Schema::new(schema_fields.clone());
                let mut lk = Vec::new();
                let mut rk = Vec::new();
                for e in &spec.joins {
                    if let Some(o) = e.oriented_from(name) {
                        if order[..i].contains(&o.right_table) {
                            rk.push(qschema.index_of(&o.left_qualified()).unwrap());
                            lk.push(acc_schema.index_of(&o.right_qualified()).unwrap());
                        }
                    }
                }
                let mut next = Vec::new();
                for l in &rows {
                    for r in &filtered {
                        if lk.iter().zip(&rk).all(|(&a, &b)| l[a] == r[b]) {
                            let mut o = l.clone();
                            o.extend(r.iter().cloned());
                            next.push(o);
                        }
                    }
                }
                rows = next;
                schema_fields.extend(qschema.fields().iter().cloned());
            }
            let joined_schema = Schema::new(schema_fields);
            let mut out = if !spec.aggs.is_empty() || !spec.group_by.is_empty() {
                let gc: Vec<usize> = spec
                    .group_by
                    .iter()
                    .map(|g| joined_schema.index_of(g).unwrap())
                    .collect();
                let ac: Vec<Option<usize>> = spec
                    .aggs
                    .iter()
                    .map(|a| a.col.as_deref().map(|c| joined_schema.index_of(c).unwrap()))
                    .collect();
                let mut groups: BTreeMap<Vec<Value>, Vec<RetractableAcc>> = BTreeMap::new();
                if gc.is_empty() {
                    groups.insert(Vec::new(), vec![RetractableAcc::new(); spec.aggs.len()]);
                }
                for r in &rows {
                    let key: Vec<Value> = gc.iter().map(|&i| r[i].clone()).collect();
                    let states = groups
                        .entry(key)
                        .or_insert_with(|| vec![RetractableAcc::new(); spec.aggs.len()]);
                    for (s, c) in states.iter_mut().zip(&ac) {
                        s.apply(c.map(|i| &r[i]), 1);
                    }
                }
                groups
                    .into_iter()
                    .map(|(mut k, states)| {
                        k.extend(
                            states.iter().zip(&spec.aggs).map(|(s, a)| s.finish(a.func)),
                        );
                        k
                    })
                    .collect()
            } else {
                rows
            };
            if let Some(cols) = &spec.projections {
                let pre = if !spec.aggs.is_empty() || !spec.group_by.is_empty() {
                    let mut fields: Vec<Field> = spec
                        .group_by
                        .iter()
                        .map(|g| joined_schema.field(joined_schema.index_of(g).unwrap()).clone())
                        .collect();
                    for a in &spec.aggs {
                        fields.push(Field::new(a.alias.clone(), DataType::Int));
                    }
                    Schema::new(fields)
                } else {
                    joined_schema
                };
                let idx: Vec<usize> =
                    cols.iter().map(|c| pre.index_of(c).unwrap()).collect();
                out = out
                    .into_iter()
                    .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
                    .collect();
            }
            canonicalize(out)
        }

        fn assert_consistent(&self) {
            assert_eq!(self.circuit.snapshot(), self.rerun(), "view diverged from re-run");
        }
    }

    /// Apply a packet to a materialized multiset copy of the view.
    fn replay(view: &mut Vec<Row>, p: &DeltaPacket) {
        for r in &p.retracted {
            let i = view.iter().position(|x| x == r).expect("retracting a held row");
            view.remove(i);
        }
        view.extend(p.inserted.iter().cloned());
        view.sort();
    }

    #[test]
    fn order_by_and_limit_rejected() {
        let c = catalog();
        let spec = QuerySpec::new().table("t").order(&["t.k"]);
        assert!(ViewCircuit::compile(&spec, &c).is_err());
        let spec = QuerySpec::new().table("t").limit(5);
        assert!(ViewCircuit::compile(&spec, &c).is_err());
    }

    #[test]
    fn filter_projection_view_tracks_inserts_and_deletes() {
        let spec = QuerySpec::new()
            .table("t")
            .filter("t", col("t.v").ge(lit(10i64)))
            .project(&["t.v"]);
        let mut rig = Rig::new(&spec);
        let mut copy = rig.circuit.snapshot();
        assert!(copy.is_empty());
        for (k, v) in [(1, 5), (2, 10), (3, 20), (4, 10)] {
            rig.insert("t", vec![Value::Int(k), Value::Int(v)]);
        }
        let p = rig.poll();
        assert_eq!(p.inserted.len(), 3, "v=5 filtered out");
        assert!(p.retracted.is_empty());
        assert_eq!(p.epoch, 3);
        replay(&mut copy, &p);
        rig.assert_consistent();
        assert_eq!(copy, rig.circuit.snapshot());
        // Duplicates are tracked as multiplicity: both v=10 rows present.
        assert_eq!(
            rig.circuit.snapshot(),
            vec![
                vec![Value::Int(10)],
                vec![Value::Int(10)],
                vec![Value::Int(20)]
            ]
        );
        // Deleting one of them retracts exactly one copy.
        rig.delete_where("t", 2);
        let p = rig.poll();
        assert_eq!((p.inserted.len(), p.retracted.len()), (0, 1));
        replay(&mut copy, &p);
        rig.assert_consistent();
        assert_eq!(copy, rig.circuit.snapshot());
        // Deleting a filtered-out row changes nothing.
        rig.delete_where("t", 1);
        assert!(rig.poll().is_empty());
        rig.assert_consistent();
    }

    #[test]
    fn join_maintains_both_sides_incrementally() {
        let spec = QuerySpec::new()
            .join("t", "k", "u", "k")
            .project(&["t.v", "u.w"]);
        let mut rig = Rig::new(&spec);
        let mut copy = Vec::new();
        // Left rows arrive before any right match exists.
        rig.insert("t", vec![Value::Int(1), Value::Int(100)]);
        rig.insert("t", vec![Value::Int(2), Value::Int(200)]);
        assert!(rig.poll().is_empty(), "no matches yet");
        // A right row joins everything already indexed on the left.
        rig.insert("u", vec![Value::Int(1), Value::Int(-1)]);
        let p = rig.poll();
        assert_eq!(p.inserted, vec![vec![Value::Int(100), Value::Int(-1)]]);
        replay(&mut copy, &p);
        rig.assert_consistent();
        // Fan-out: a second left row with the same key doubles the match.
        rig.insert("t", vec![Value::Int(1), Value::Int(101)]);
        let p = rig.poll();
        assert_eq!(p.inserted.len(), 1);
        replay(&mut copy, &p);
        rig.assert_consistent();
        // Deleting the right row retracts every joined output at once.
        rig.delete_where("u", 1);
        let p = rig.poll();
        assert_eq!((p.inserted.len(), p.retracted.len()), (0, 2));
        replay(&mut copy, &p);
        rig.assert_consistent();
        assert!(rig.circuit.snapshot().is_empty());
        assert_eq!(copy, rig.circuit.snapshot());
    }

    #[test]
    fn grouped_aggregation_retracts_and_drops_empty_groups() {
        let spec = QuerySpec::new().table("t").aggregate(
            &["t.k"],
            vec![
                AggSpec::count_star("n"),
                AggSpec::on(AggFunc::Sum, "t.v", "s"),
                AggSpec::on(AggFunc::Min, "t.v", "lo"),
            ],
        );
        let mut rig = Rig::new(&spec);
        let mut copy = Vec::new();
        for (k, v) in [(1, 10), (1, 4), (2, 7)] {
            rig.insert("t", vec![Value::Int(k), Value::Int(v)]);
        }
        let p = rig.poll();
        replay(&mut copy, &p);
        rig.assert_consistent();
        assert_eq!(
            rig.circuit.snapshot(),
            vec![
                vec![Value::Int(1), Value::Int(2), Value::Float(14.0), Value::Int(4)],
                vec![Value::Int(2), Value::Int(1), Value::Float(7.0), Value::Int(7)],
            ]
        );
        // Retracting the group minimum falls back to the runner-up, and
        // the packet carries one coalesced retract/insert pair.
        rig.delete_where("t", 1);
        // (deletes both k=1 rows: group 1 disappears entirely)
        let p = rig.poll();
        assert_eq!((p.inserted.len(), p.retracted.len()), (0, 1));
        replay(&mut copy, &p);
        rig.assert_consistent();
        assert_eq!(rig.circuit.view_rows(), 1, "empty group dropped");
        assert_eq!(copy, rig.circuit.snapshot());
    }

    #[test]
    fn global_aggregate_exists_even_when_empty() {
        let spec = QuerySpec::new().table("t").aggregate(
            &[],
            vec![AggSpec::count_star("n"), AggSpec::on(AggFunc::Avg, "t.v", "a")],
        );
        let mut rig = Rig::new(&spec);
        assert_eq!(
            rig.circuit.snapshot(),
            vec![vec![Value::Int(0), Value::Null]],
            "COUNT(*)=0 row over empty input, like HashAggOp"
        );
        rig.assert_consistent();
        let mut copy = rig.circuit.snapshot();
        rig.insert("t", vec![Value::Int(1), Value::Int(6)]);
        rig.insert("t", vec![Value::Int(2), Value::Int(2)]);
        let p = rig.poll();
        assert_eq!((p.inserted.len(), p.retracted.len()), (1, 1), "old row swapped for new");
        replay(&mut copy, &p);
        rig.assert_consistent();
        assert_eq!(copy, rig.circuit.snapshot());
        assert_eq!(copy, vec![vec![Value::Int(2), Value::Float(4.0)]]);
        // Back to empty: the COUNT=0 row returns.
        rig.delete_where("t", 1);
        rig.delete_where("t", 2);
        let p = rig.poll();
        replay(&mut copy, &p);
        rig.assert_consistent();
        assert_eq!(copy, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn three_way_join_with_agg_stays_consistent_under_churn() {
        // t ⋈ u on k plus a second edge u ⋈ t on w≡v to exercise
        // composite keys… simpler: grouped sum over a two-table join,
        // churned from both sides in an interleaved pattern.
        let spec = QuerySpec::new()
            .join("t", "k", "u", "k")
            .filter("u", col("u.w").gt(lit(0i64)))
            .aggregate(&["t.k"], vec![AggSpec::on(AggFunc::Sum, "u.w", "s")]);
        let mut rig = Rig::new(&spec);
        let mut copy = Vec::new();
        for step in 0..40i64 {
            let k = step % 5;
            match step % 7 {
                0..=2 => rig.insert("t", vec![Value::Int(k), Value::Int(step)]),
                3..=5 => rig.insert("u", vec![Value::Int(k), Value::Int(step - 20)]),
                _ => {
                    rig.delete_where(if step % 2 == 0 { "t" } else { "u" }, k);
                }
            }
            let p = rig.poll();
            replay(&mut copy, &p);
            rig.assert_consistent();
            assert_eq!(copy, rig.circuit.snapshot(), "packet replay tracks the view");
        }
    }

    #[test]
    fn initial_load_then_deltas_matches_cold_compile() {
        // Pre-populate, compile+load, then churn: the circuit must agree
        // with a from-scratch evaluation at every step.
        let mut catalog = catalog();
        for i in 0..10i64 {
            catalog
                .table_mut("t")
                .unwrap()
                .append(vec![Value::Int(i % 3), Value::Int(i)]);
        }
        let log = Arc::new(Changelog::new());
        catalog.attach_changelog(&log);
        let clock = CostClock::default_clock();
        let spec = QuerySpec::new()
            .table("t")
            .filter("t", col("t.v").lt(lit(8i64)))
            .aggregate(&["t.k"], vec![AggSpec::count_star("n")]);
        let mut circuit = ViewCircuit::compile(&spec, &catalog).unwrap();
        circuit.load_initial(&catalog, &clock).unwrap();
        assert!(clock.now() > 0.0, "initial load charges the clock");
        assert_eq!(
            circuit.snapshot(),
            vec![
                vec![Value::Int(0), Value::Int(3)],
                vec![Value::Int(1), Value::Int(3)],
                vec![Value::Int(2), Value::Int(2)],
            ]
        );
        catalog.table_mut("t").unwrap().append(vec![Value::Int(0), Value::Int(4)]);
        let (recs, _) = log.since(0);
        let before = clock.now();
        let p = circuit.apply(&recs, &clock);
        assert!(clock.now() > before, "deltas charge the clock");
        assert_eq!((p.inserted.len(), p.retracted.len()), (1, 1));
        assert_eq!(
            circuit.snapshot()[0],
            vec![Value::Int(0), Value::Int(4)]
        );
    }

    #[test]
    fn unrelated_tables_are_skipped() {
        let spec = QuerySpec::new().table("t").project(&["t.k"]);
        let mut rig = Rig::new(&spec);
        rig.insert("u", vec![Value::Int(1), Value::Int(1)]);
        let p = rig.poll();
        assert!(p.is_empty());
        assert_eq!(p.epoch, 0, "epoch still advances past skipped records");
        assert_eq!(rig.circuit.cursor(), 1);
    }
}
