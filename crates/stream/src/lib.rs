//! # rqp-stream
//!
//! Incremental view maintenance: the engine behind standing subscriptions.
//!
//! A registered [`QuerySpec`](rqp_opt::QuerySpec) is compiled once into a
//! [`ViewCircuit`] — a dataflow of delta-aware operators mirroring the
//! batch engine's semantics exactly:
//!
//! * **filter** — each base table's local predicate, bound once against the
//!   qualified schema and applied to every incoming delta row;
//! * **hash join** — one stage per joined table (left-deep, in a
//!   connectivity-greedy order), each holding *per-side delta indexes*
//!   (key → weighted row multiset). A delta entering on one side joins the
//!   opposite side's index and flows on; the classic bilinear rule
//!   `Δ(A ⋈ B) = ΔA ⋈ B + A ⋈ ΔB` degenerates to one term per changelog
//!   record because records are applied one at a time;
//! * **grouped aggregation** — retractable accumulators
//!   ([`RetractableAcc`]) that mirror `HashAggOp`'s `AggState` finish
//!   semantics (COUNT → `Int`, SUM → `Float`, AVG of nothing → `Null`,
//!   MIN/MAX via an ordered value multiset so retraction can fall back to
//!   the runner-up);
//! * **projection** — applied last, over the aggregate's output schema,
//!   exactly where the batch planner puts it.
//!
//! Feeding the circuit an epoch-sequenced
//! [`ChangeRecord`](rqp_storage::changelog::ChangeRecord) stream yields
//! [`DeltaPacket`]s — the rows a subscriber must insert into and retract
//! from its copy of the view — instead of a full re-execution per change.
//!
//! ## The view-consistency contract
//!
//! For any interleaving of inserts and deletes, the maintained view
//! ([`ViewCircuit::snapshot`], canonically ordered) is **identical to
//! re-running the query from scratch** over the tables' current contents
//! (both sides canonicalized with [`canonicalize`], since a standing view
//! is an unordered multiset — which is also why `ORDER BY`/`LIMIT` specs
//! are rejected at compile time). Exactness of retraction is guaranteed
//! for integer data and floats whose sums stay exactly representable
//! (dyadic values well within the 53-bit mantissa — true of the testbed's
//! generators); arbitrary floats retain the usual floating-point caveat
//! that `(a + b) - b` may not equal `a`.
//!
//! Every delta charges the shared deterministic cost clock (tuples for
//! filter/join fan-out, hash charges for index and view maintenance), so
//! chaos-driven clock inflation degrades *per-delta latency* smoothly
//! rather than dropping deltas — the paper's robustness story extended to
//! continuous queries.

#![warn(missing_docs)]

pub mod acc;
pub mod circuit;

pub use acc::RetractableAcc;
pub use circuit::{canonicalize, DeltaPacket, ViewCircuit};
