//! Retractable aggregate accumulators.
//!
//! `HashAggOp`'s `AggState` only ever moves forward; incremental
//! maintenance must also *undo* a row's contribution when it is retracted.
//! COUNT/SUM/AVG invert algebraically; MIN/MAX cannot (removing the
//! minimum needs the runner-up), so the accumulator keeps an ordered
//! multiset of the values it has seen and reads the extremes off its ends.
//!
//! `finish` mirrors `AggState::finish` exactly — same output types, same
//! empty-input behavior — because the view-consistency contract compares
//! the maintained view against a from-scratch run through `HashAggOp`.

use rqp_common::Value;
use rqp_exec::AggFunc;
use std::collections::BTreeMap;

/// One aggregate's retractable state: weighted count and sum plus an
/// ordered value multiset for MIN/MAX retraction.
#[derive(Debug, Clone, Default)]
pub struct RetractableAcc {
    /// Weighted non-null count (f64 to match `AggState`'s arithmetic).
    count: f64,
    /// Weighted sum over `as_float` values.
    sum: f64,
    /// Ordered multiset of non-null values with net weights.
    values: BTreeMap<Value, i64>,
}

impl RetractableAcc {
    /// A fresh accumulator (all aggregates at their empty state).
    pub fn new() -> Self {
        RetractableAcc::default()
    }

    /// Fold one row's value in with `weight` (+1 insert, −1 retract).
    /// `None` is the COUNT(*) case (no input column: every row counts);
    /// an SQL NULL contributes nothing — both exactly as `AggState::update`.
    pub fn apply(&mut self, v: Option<&Value>, weight: i64) {
        match v {
            None => self.count += weight as f64,
            Some(v) if !v.is_null() => {
                self.count += weight as f64;
                if let Some(x) = v.as_float() {
                    self.sum += x * weight as f64;
                }
                let w = self.values.entry(v.clone()).or_insert(0);
                *w += weight;
                if *w == 0 {
                    self.values.remove(v);
                }
            }
            Some(_) => {}
        }
    }

    /// The aggregate's current value, mirroring `AggState::finish`.
    pub fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Min => self
                .values
                .keys()
                .next()
                .cloned()
                .unwrap_or(Value::Null),
            AggFunc::Max => self
                .values
                .keys()
                .next_back()
                .cloned()
                .unwrap_or(Value::Null),
            AggFunc::Avg => {
                if self.count > 0.0 {
                    Value::Float(self.sum / self.count)
                } else {
                    Value::Null
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sum_avg_invert_exactly() {
        let mut a = RetractableAcc::new();
        for v in [2.0, 4.0, 6.0] {
            a.apply(Some(&Value::Float(v)), 1);
        }
        assert_eq!(a.finish(AggFunc::Count), Value::Int(3));
        assert_eq!(a.finish(AggFunc::Sum), Value::Float(12.0));
        assert_eq!(a.finish(AggFunc::Avg), Value::Float(4.0));
        a.apply(Some(&Value::Float(4.0)), -1);
        assert_eq!(a.finish(AggFunc::Count), Value::Int(2));
        assert_eq!(a.finish(AggFunc::Sum), Value::Float(8.0));
        assert_eq!(a.finish(AggFunc::Avg), Value::Float(4.0));
        // Full retraction returns to the empty state.
        a.apply(Some(&Value::Float(2.0)), -1);
        a.apply(Some(&Value::Float(6.0)), -1);
        assert_eq!(a.finish(AggFunc::Count), Value::Int(0));
        assert_eq!(a.finish(AggFunc::Sum), Value::Float(0.0));
        assert!(a.finish(AggFunc::Avg).is_null());
    }

    #[test]
    fn min_max_fall_back_to_runner_up_on_retraction() {
        let mut a = RetractableAcc::new();
        for v in [5i64, 1, 9, 1] {
            a.apply(Some(&Value::Int(v)), 1);
        }
        assert_eq!(a.finish(AggFunc::Min), Value::Int(1));
        assert_eq!(a.finish(AggFunc::Max), Value::Int(9));
        // One of the two 1s goes: 1 is still the minimum.
        a.apply(Some(&Value::Int(1)), -1);
        assert_eq!(a.finish(AggFunc::Min), Value::Int(1));
        // The second 1 goes: the runner-up takes over.
        a.apply(Some(&Value::Int(1)), -1);
        assert_eq!(a.finish(AggFunc::Min), Value::Int(5));
        a.apply(Some(&Value::Int(9)), -1);
        assert_eq!(a.finish(AggFunc::Max), Value::Int(5));
        a.apply(Some(&Value::Int(5)), -1);
        assert!(a.finish(AggFunc::Min).is_null());
        assert!(a.finish(AggFunc::Max).is_null());
    }

    #[test]
    fn count_star_and_nulls_mirror_agg_state() {
        let mut a = RetractableAcc::new();
        a.apply(None, 1); // COUNT(*): counts
        a.apply(None, 1);
        a.apply(Some(&Value::Null), 1); // SQL NULL: contributes nothing
        assert_eq!(a.finish(AggFunc::Count), Value::Int(2));
        a.apply(None, -1);
        assert_eq!(a.finish(AggFunc::Count), Value::Int(1));
        // Sum/extremes never saw a value.
        assert_eq!(a.finish(AggFunc::Sum), Value::Float(0.0));
        assert!(a.finish(AggFunc::Min).is_null());
    }
}
