//! LEO-style execution feedback (Stillger, Lohman, Markl, Kandil — VLDB 2001).
//!
//! LEO "closes the loop": after a query runs, the actual cardinalities
//! observed at each operator are compared with the optimizer's estimates and
//! stored as *adjustment factors*; future optimizations of matching
//! predicates multiply their estimates by the learned factor. The repository
//! here keys adjustments by a predicate signature and blends repeated
//! observations with exponential smoothing.
//!
//! Experiment E19 measures the q-error decay of a repeated workload as the
//! repository fills — the "post-mortem" half of the POP + LEO pairing the
//! seminar's optimization/execution-interaction session describes.

use crate::estimator::CardEstimator;
use rqp_common::Expr;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A learned adjustment for one predicate signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adjustment {
    /// Multiplicative correction (actual / estimate), smoothed.
    pub factor: f64,
    /// Number of observations blended in.
    pub observations: usize,
}

/// Repository of learned estimate corrections.
#[derive(Debug, Clone)]
pub struct FeedbackRepo {
    adjustments: HashMap<String, Adjustment>,
    /// Weight of the newest observation (1.0 = always replace).
    smoothing: f64,
}

impl FeedbackRepo {
    /// New repository; `smoothing` ∈ (0, 1] is the exponential-smoothing
    /// weight of new observations.
    pub fn new(smoothing: f64) -> Self {
        assert!(smoothing > 0.0 && smoothing <= 1.0);
        FeedbackRepo { adjustments: HashMap::new(), smoothing }
    }

    /// Canonical signature for (table, predicate).
    pub fn signature(table: &str, pred: &Expr) -> String {
        format!("{table}|{pred}")
    }

    /// Record an observation: the optimizer estimated `estimate` rows, the
    /// executor saw `actual` rows.
    pub fn observe(&mut self, signature: &str, estimate: f64, actual: f64) {
        let factor = actual.max(1.0) / estimate.max(1.0);
        match self.adjustments.get_mut(signature) {
            Some(adj) => {
                // Blend in log space: factors are multiplicative.
                let blended =
                    (adj.factor.ln() * (1.0 - self.smoothing) + factor.ln() * self.smoothing)
                        .exp();
                adj.factor = blended;
                adj.observations += 1;
            }
            None => {
                self.adjustments
                    .insert(signature.to_owned(), Adjustment { factor, observations: 1 });
            }
        }
    }

    /// The learned correction for a signature, if any.
    pub fn adjustment(&self, signature: &str) -> Option<f64> {
        self.adjustments.get(signature).map(|a| a.factor)
    }

    /// Number of distinct signatures learned.
    pub fn len(&self) -> usize {
        self.adjustments.len()
    }

    /// True if nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.adjustments.is_empty()
    }

    /// Forget everything (e.g. after a schema or data change).
    pub fn clear(&mut self) {
        self.adjustments.clear();
    }
}

/// An estimator that applies LEO corrections on top of a base estimator.
pub struct FeedbackEstimator {
    inner: Box<dyn CardEstimator>,
    repo: Rc<RefCell<FeedbackRepo>>,
}

impl FeedbackEstimator {
    /// Wrap `inner`, consulting (and sharing) `repo`.
    pub fn new(inner: Box<dyn CardEstimator>, repo: Rc<RefCell<FeedbackRepo>>) -> Self {
        FeedbackEstimator { inner, repo }
    }

    /// Shared handle to the repository (for recording observations).
    pub fn repo(&self) -> Rc<RefCell<FeedbackRepo>> {
        Rc::clone(&self.repo)
    }
}

impl CardEstimator for FeedbackEstimator {
    fn table_rows(&self, table: &str) -> f64 {
        self.inner.table_rows(table)
    }

    fn selectivity(&self, table: &str, pred: &Expr) -> f64 {
        let base = self.inner.selectivity(table, pred);
        let sig = FeedbackRepo::signature(table, pred);
        match self.repo.borrow().adjustment(&sig) {
            Some(f) => (base * f).clamp(0.0, 1.0),
            None => base,
        }
    }

    fn join_selectivity(
        &self,
        left_table: &str,
        left_col: &str,
        right_table: &str,
        right_col: &str,
    ) -> f64 {
        let base = self
            .inner
            .join_selectivity(left_table, left_col, right_table, right_col);
        let sig = format!("join|{left_table}.{left_col}={right_table}.{right_col}");
        match self.repo.borrow().adjustment(&sig) {
            Some(f) => (base * f).clamp(0.0, 1.0),
            None => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};

    /// A fixed-output stub estimator.
    struct Fixed(f64);
    impl CardEstimator for Fixed {
        fn table_rows(&self, _: &str) -> f64 {
            1000.0
        }
        fn selectivity(&self, _: &str, _: &Expr) -> f64 {
            self.0
        }
        fn join_selectivity(&self, _: &str, _: &str, _: &str, _: &str) -> f64 {
            self.0
        }
    }

    #[test]
    fn observation_creates_adjustment() {
        let mut repo = FeedbackRepo::new(1.0);
        repo.observe("sig", 10.0, 100.0);
        assert!((repo.adjustment("sig").unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(repo.len(), 1);
        assert!(repo.adjustment("other").is_none());
    }

    #[test]
    fn smoothing_blends_observations() {
        let mut repo = FeedbackRepo::new(0.5);
        repo.observe("sig", 10.0, 100.0); // factor 10
        repo.observe("sig", 10.0, 10.0); // factor 1
        let f = repo.adjustment("sig").unwrap();
        // geometric blend: sqrt(10) ≈ 3.16
        assert!((f - 10f64.sqrt()).abs() < 1e-6, "got {f}");
    }

    #[test]
    fn estimator_applies_correction() {
        let repo = Rc::new(RefCell::new(FeedbackRepo::new(1.0)));
        let est = FeedbackEstimator::new(Box::new(Fixed(0.01)), Rc::clone(&repo));
        let pred = col("a").eq(lit(5i64));
        // Uncorrected.
        assert!((est.selectivity("t", &pred) - 0.01).abs() < 1e-12);
        // After the executor observed the truth (estimate 10 rows of 1000,
        // actual 300) the factor 30 applies.
        let sig = FeedbackRepo::signature("t", &pred);
        repo.borrow_mut().observe(&sig, 10.0, 300.0);
        let corrected = est.selectivity("t", &pred);
        assert!((corrected - 0.3).abs() < 1e-9, "got {corrected}");
    }

    #[test]
    fn correction_clamped_to_one() {
        let repo = Rc::new(RefCell::new(FeedbackRepo::new(1.0)));
        let est = FeedbackEstimator::new(Box::new(Fixed(0.5)), Rc::clone(&repo));
        let pred = col("a").lt(lit(1i64));
        let sig = FeedbackRepo::signature("t", &pred);
        repo.borrow_mut().observe(&sig, 1.0, 1_000_000.0);
        assert_eq!(est.selectivity("t", &pred), 1.0);
    }

    #[test]
    fn join_corrections_keyed_separately() {
        let repo = Rc::new(RefCell::new(FeedbackRepo::new(1.0)));
        let est = FeedbackEstimator::new(Box::new(Fixed(0.001)), Rc::clone(&repo));
        repo.borrow_mut()
            .observe("join|t.a=u.b", 1.0, 50.0);
        let js = est.join_selectivity("t", "a", "u", "b");
        assert!((js - 0.05).abs() < 1e-9, "got {js}");
        // Different join key unaffected.
        let other = est.join_selectivity("t", "a", "u", "c");
        assert!((other - 0.001).abs() < 1e-12);
    }

    #[test]
    fn clear_forgets() {
        let mut repo = FeedbackRepo::new(1.0);
        repo.observe("x", 1.0, 2.0);
        assert!(!repo.is_empty());
        repo.clear();
        assert!(repo.is_empty());
    }

    #[test]
    fn signature_distinguishes_constants() {
        let a = FeedbackRepo::signature("t", &col("k").eq(lit(1i64)));
        let b = FeedbackRepo::signature("t", &col("k").eq(lit(2i64)));
        assert_ne!(a, b);
    }
}
