//! Equi-width and equi-depth histograms over numeric columns.
//!
//! Both expose the same [`Histogram`] interface: estimate the selectivity of
//! a half-open range `[lo, hi]` (inclusive bounds, as produced by range
//! predicates) or an equality point. Within a bucket the continuous-uniform
//! assumption applies — exactly the assumption whose failure under skew the
//! black-hat experiments (E22) exploit.

/// Common interface of the numeric histograms.
pub trait Histogram {
    /// Total rows summarized.
    fn total_rows(&self) -> f64;

    /// Estimated fraction of rows with value in `[lo, hi]` (inclusive).
    /// Unbounded sides are expressed with `f64::NEG_INFINITY` /
    /// `f64::INFINITY`.
    fn range_selectivity(&self, lo: f64, hi: f64) -> f64;

    /// Estimated fraction of rows equal to `v`.
    fn eq_selectivity(&self, v: f64) -> f64;
}

/// A histogram with fixed-width buckets.
#[derive(Debug, Clone)]
pub struct EquiWidthHistogram {
    min: f64,
    max: f64,
    counts: Vec<f64>,
    total: f64,
    /// Distinct values per bucket (for equality estimates).
    distinct: Vec<f64>,
}

impl EquiWidthHistogram {
    /// Build from values with `buckets` equal-width buckets.
    pub fn build(values: &[f64], buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        if values.is_empty() {
            return EquiWidthHistogram {
                min: 0.0,
                max: 0.0,
                counts: vec![0.0; buckets],
                total: 0.0,
                distinct: vec![0.0; buckets],
            };
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = ((max - min) / buckets as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0.0; buckets];
        let mut sets: Vec<std::collections::BTreeSet<u64>> =
            vec![std::collections::BTreeSet::new(); buckets];
        for &v in values {
            let b = (((v - min) / width) as usize).min(buckets - 1);
            counts[b] += 1.0;
            sets[b].insert(v.to_bits());
        }
        EquiWidthHistogram {
            min,
            max,
            counts,
            total: values.len() as f64,
            distinct: sets.iter().map(|s| s.len() as f64).collect(),
        }
    }

    fn bucket_bounds(&self, b: usize) -> (f64, f64) {
        let width = (self.max - self.min) / self.counts.len() as f64;
        (self.min + b as f64 * width, self.min + (b + 1) as f64 * width)
    }
}

impl Histogram for EquiWidthHistogram {
    fn total_rows(&self) -> f64 {
        self.total
    }

    fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        if self.total == 0.0 || lo > hi {
            return 0.0;
        }
        let mut rows = 0.0;
        for (b, &c) in self.counts.iter().enumerate() {
            let (blo, bhi) = self.bucket_bounds(b);
            let ov_lo = lo.max(blo);
            let ov_hi = hi.min(bhi);
            if ov_hi <= ov_lo {
                // Degenerate bucket (width 0) still matches if point inside.
                if (bhi - blo) == 0.0 && lo <= blo && blo <= hi {
                    rows += c;
                }
                continue;
            }
            let frac = ((ov_hi - ov_lo) / (bhi - blo)).clamp(0.0, 1.0);
            rows += c * frac;
        }
        (rows / self.total).clamp(0.0, 1.0)
    }

    fn eq_selectivity(&self, v: f64) -> f64 {
        if self.total == 0.0 || v < self.min || v > self.max {
            return 0.0;
        }
        let buckets = self.counts.len();
        let width = ((self.max - self.min) / buckets as f64).max(f64::MIN_POSITIVE);
        let b = (((v - self.min) / width) as usize).min(buckets - 1);
        let d = self.distinct[b].max(1.0);
        (self.counts[b] / d / self.total).clamp(0.0, 1.0)
    }
}

/// A histogram with (approximately) equal row counts per bucket.
///
/// Bucket boundaries are quantiles of the build sample; skewed data thus gets
/// fine buckets where it is dense — the classic mitigation the seminar's
/// estimation sessions assume as baseline.
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram {
    /// `bounds.len() == buckets + 1`; bucket b covers [bounds[b], bounds[b+1]].
    bounds: Vec<f64>,
    counts: Vec<f64>,
    distinct: Vec<f64>,
    total: f64,
}

impl EquiDepthHistogram {
    /// Build from values with at most `buckets` quantile buckets.
    pub fn build(values: &[f64], buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        if values.is_empty() {
            return EquiDepthHistogram {
                bounds: vec![0.0, 0.0],
                counts: vec![0.0],
                distinct: vec![0.0],
                total: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let per = (n as f64 / buckets as f64).ceil().max(1.0) as usize;
        let mut bounds = vec![sorted[0]];
        let mut counts = Vec::new();
        let mut distinct = Vec::new();
        let mut i = 0usize;
        while i < n {
            let mut j = (i + per).min(n);
            // Don't split a run of duplicates across buckets.
            while j < n && sorted[j] == sorted[j - 1] {
                j += 1;
            }
            counts.push((j - i) as f64);
            let mut d = 1.0;
            for k in i + 1..j {
                if sorted[k] != sorted[k - 1] {
                    d += 1.0;
                }
            }
            distinct.push(d);
            bounds.push(sorted[j - 1]);
            i = j;
        }
        EquiDepthHistogram { bounds, counts, distinct, total: n as f64 }
    }
}

impl Histogram for EquiDepthHistogram {
    fn total_rows(&self) -> f64 {
        self.total
    }

    fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        if self.total == 0.0 || lo > hi {
            return 0.0;
        }
        let mut rows = 0.0;
        for b in 0..self.counts.len() {
            let blo = self.bounds[b];
            let bhi = self.bounds[b + 1];
            if hi < blo || lo > bhi {
                continue;
            }
            if bhi == blo {
                rows += self.counts[b];
                continue;
            }
            let ov_lo = lo.max(blo);
            let ov_hi = hi.min(bhi);
            let frac = ((ov_hi - ov_lo) / (bhi - blo)).clamp(0.0, 1.0);
            rows += self.counts[b] * frac;
        }
        (rows / self.total).clamp(0.0, 1.0)
    }

    fn eq_selectivity(&self, v: f64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        for b in 0..self.counts.len() {
            let blo = self.bounds[b];
            let bhi = self.bounds[b + 1];
            if v >= blo && v <= bhi {
                return (self.counts[b] / self.distinct[b].max(1.0) / self.total)
                    .clamp(0.0, 1.0);
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform() -> Vec<f64> {
        (0..1000).map(|i| i as f64).collect()
    }

    fn skewed() -> Vec<f64> {
        // 900 values at 0..10, 100 spread over 10..1000
        let mut v: Vec<f64> = (0..900).map(|i| (i % 10) as f64).collect();
        v.extend((0..100).map(|i| 10.0 + i as f64 * 9.9));
        v
    }

    #[test]
    fn equiwidth_uniform_range() {
        let h = EquiWidthHistogram::build(&uniform(), 20);
        let s = h.range_selectivity(0.0, 249.0);
        assert!((s - 0.25).abs() < 0.02, "got {s}");
        assert_eq!(h.total_rows(), 1000.0);
    }

    #[test]
    fn equiwidth_out_of_domain() {
        let h = EquiWidthHistogram::build(&uniform(), 20);
        assert_eq!(h.eq_selectivity(-5.0), 0.0);
        assert_eq!(h.eq_selectivity(2000.0), 0.0);
        assert_eq!(h.range_selectivity(5.0, 1.0), 0.0, "inverted range");
        assert!(h.range_selectivity(f64::NEG_INFINITY, f64::INFINITY) > 0.99);
    }

    #[test]
    fn equiwidth_eq_estimate() {
        let h = EquiWidthHistogram::build(&uniform(), 10);
        let s = h.eq_selectivity(500.0);
        assert!((s - 0.001).abs() < 0.0005, "got {s}");
    }

    #[test]
    fn equidepth_handles_skew_better() {
        let data = skewed();
        let true_sel = data.iter().filter(|&&v| v <= 5.0).count() as f64 / data.len() as f64;
        let ew = EquiWidthHistogram::build(&data, 10);
        let ed = EquiDepthHistogram::build(&data, 10);
        let ew_err = (ew.range_selectivity(0.0, 5.0) - true_sel).abs();
        let ed_err = (ed.range_selectivity(0.0, 5.0) - true_sel).abs();
        assert!(
            ed_err < ew_err,
            "equi-depth ({ed_err:.4}) should beat equi-width ({ew_err:.4}) under skew"
        );
    }

    #[test]
    fn equidepth_duplicates_not_split() {
        let data = vec![7.0; 100];
        let h = EquiDepthHistogram::build(&data, 4);
        assert!((h.eq_selectivity(7.0) - 1.0).abs() < 1e-9);
        assert!((h.range_selectivity(7.0, 7.0) - 1.0).abs() < 1e-9);
        assert_eq!(h.eq_selectivity(8.0), 0.0);
    }

    #[test]
    fn empty_histograms() {
        let ew = EquiWidthHistogram::build(&[], 5);
        let ed = EquiDepthHistogram::build(&[], 5);
        assert_eq!(ew.range_selectivity(0.0, 1.0), 0.0);
        assert_eq!(ed.range_selectivity(0.0, 1.0), 0.0);
        assert_eq!(ew.total_rows(), 0.0);
    }

    #[test]
    fn selectivities_bounded() {
        let h = EquiDepthHistogram::build(&uniform(), 7);
        for (lo, hi) in [(0.0, 999.0), (-1e9, 1e9), (500.0, 500.0), (100.0, 101.0)] {
            let s = h.range_selectivity(lo, hi);
            assert!((0.0..=1.0).contains(&s), "sel {s} out of [0,1]");
        }
    }
}
