//! Cardinality estimators.
//!
//! [`CardEstimator`] is the single interface the optimizer consults. Concrete
//! implementations cover the full spectrum the seminar discusses:
//!
//! * [`StatsEstimator`] — the industry baseline: per-column histograms +
//!   independence assumption between predicates (whose failure under
//!   correlation is the report's #1 robustness hazard);
//! * [`OracleEstimator`] — true cardinalities computed from the data, the
//!   "ideal plan" reference that the extrinsic-variability metric (E05) and
//!   Metric3 (E08) require;
//! * [`LyingEstimator`] — wraps another estimator and multiplies selected
//!   estimates by controlled error factors: the report's root cause
//!   (estimation error) turned into a first-class experimental knob.
//!
//! `rqp-stats` also provides [`crate::FeedbackEstimator`] (LEO corrections)
//! and [`crate::SamplingEstimator`] (posterior distributions).

use crate::histogram::{EquiDepthHistogram, Histogram};
use rand::Rng;
use rqp_common::{CmpOp, DataType, Expr, SimplePred, Value};
use rqp_storage::{Catalog, ColumnData, Table};
use std::collections::HashMap;
use std::rc::Rc;

/// Default selectivity for predicates the estimator cannot analyze —
/// the classic System-R "magic number".
pub const DEFAULT_SELECTIVITY: f64 = 0.1;

/// Per-column statistics.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Rows observed when stats were gathered.
    pub count: usize,
    /// Number of distinct values.
    pub ndv: usize,
    /// Minimum (numeric columns only).
    pub min: Option<f64>,
    /// Maximum (numeric columns only).
    pub max: Option<f64>,
    /// Equi-depth histogram (numeric columns only).
    pub histogram: Option<EquiDepthHistogram>,
}

impl ColumnStats {
    /// Gather stats from a column, optionally from a row subset (sampled
    /// statistics — the trigger of the "automatic disaster" experiment E21).
    pub fn gather(col: &ColumnData, rows: Option<&[usize]>, buckets: usize) -> Self {
        let collect_numeric = |vals: &mut Vec<f64>| {
            match (col, rows) {
                (ColumnData::Int(v), None) => vals.extend(v.iter().map(|&x| x as f64)),
                (ColumnData::Int(v), Some(ids)) => {
                    vals.extend(ids.iter().map(|&i| v[i] as f64))
                }
                (ColumnData::Float(v), None) => vals.extend(v.iter().copied()),
                (ColumnData::Float(v), Some(ids)) => vals.extend(ids.iter().map(|&i| v[i])),
                (ColumnData::Str(_), _) => {}
            };
        };
        match col.data_type() {
            DataType::Int | DataType::Float => {
                let mut vals = Vec::new();
                collect_numeric(&mut vals);
                let ndv = {
                    let mut bits: Vec<u64> = vals.iter().map(|f| f.to_bits()).collect();
                    bits.sort_unstable();
                    bits.dedup();
                    bits.len()
                };
                let min = vals.iter().copied().reduce(f64::min);
                let max = vals.iter().copied().reduce(f64::max);
                let histogram = if vals.is_empty() {
                    None
                } else {
                    Some(EquiDepthHistogram::build(&vals, buckets))
                };
                ColumnStats { count: vals.len(), ndv, min, max, histogram }
            }
            DataType::Str => {
                let mut seen = std::collections::BTreeSet::new();
                let mut count = 0usize;
                if let ColumnData::Str(v) = col {
                    match rows {
                        None => {
                            for s in v {
                                seen.insert(s.as_str());
                                count += 1;
                            }
                        }
                        Some(ids) => {
                            for &i in ids {
                                seen.insert(v[i].as_str());
                                count += 1;
                            }
                        }
                    }
                }
                ColumnStats { count, ndv: seen.len(), min: None, max: None, histogram: None }
            }
        }
    }

    /// Estimate the selectivity of a [`SimplePred`] against this column.
    pub fn selectivity(&self, pred: &SimplePred) -> f64 {
        let eq_sel = |v: &Value| -> f64 {
            match (v.as_float(), &self.histogram) {
                (Some(x), Some(h)) => h.eq_selectivity(x),
                _ => 1.0 / (self.ndv.max(1) as f64),
            }
        };
        match pred {
            SimplePred::Cmp { op, value, .. } => match op {
                CmpOp::Eq => eq_sel(value),
                CmpOp::Ne => (1.0 - eq_sel(value)).clamp(0.0, 1.0),
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                    match (value.as_float(), &self.histogram) {
                        (Some(x), Some(h)) => {
                            let s = match op {
                                CmpOp::Lt | CmpOp::Le => {
                                    h.range_selectivity(f64::NEG_INFINITY, x)
                                }
                                _ => h.range_selectivity(x, f64::INFINITY),
                            };
                            // Adjust open bounds by the equality mass.
                            match op {
                                CmpOp::Lt => (s - h.eq_selectivity(x)).max(0.0),
                                CmpOp::Gt => (s - h.eq_selectivity(x)).max(0.0),
                                _ => s,
                            }
                        }
                        _ => DEFAULT_SELECTIVITY * 3.0, // range magic: 1/3-ish
                    }
                }
            },
            SimplePred::Range { lo, hi, .. } => match (lo.as_float(), hi.as_float(), &self.histogram) {
                (Some(a), Some(b), Some(h)) => h.range_selectivity(a, b),
                _ => DEFAULT_SELECTIVITY * 3.0,
            },
            SimplePred::InList { values, .. } => values
                .iter()
                .map(eq_sel)
                .sum::<f64>()
                .clamp(0.0, 1.0),
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count when analyzed.
    pub rows: f64,
    /// Per-column stats keyed by *unqualified* column name.
    pub columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    /// Analyze a full table with `buckets` histogram buckets per column.
    pub fn analyze(table: &Table, buckets: usize) -> Self {
        let mut columns = HashMap::new();
        for (i, f) in table.schema().fields().iter().enumerate() {
            columns.insert(
                f.name.clone(),
                ColumnStats::gather(table.column(i), None, buckets),
            );
        }
        TableStats { rows: table.nrows() as f64, columns }
    }

    /// Analyze from a random row sample of `sample_size` rows. Sampled
    /// statistics differ run to run — the seed is the "which sample did the
    /// auto-refresh take" knob of experiment E21.
    pub fn analyze_sampled(
        table: &Table,
        buckets: usize,
        sample_size: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let ids = rqp_common::rng::sample_distinct(rng, table.nrows(), sample_size);
        let scale = if ids.is_empty() {
            0.0
        } else {
            table.nrows() as f64 / ids.len() as f64
        };
        let mut columns = HashMap::new();
        for (i, f) in table.schema().fields().iter().enumerate() {
            let mut cs = ColumnStats::gather(table.column(i), Some(&ids), buckets);
            // Extrapolate counts and NDV to table size (first-order).
            cs.count = table.nrows();
            cs.ndv = ((cs.ndv as f64) * scale.sqrt()).round().max(1.0) as usize;
            columns.insert(f.name.clone(), cs);
        }
        TableStats { rows: table.nrows() as f64, columns }
    }
}

/// Statistics for a set of tables.
#[derive(Debug, Clone, Default)]
pub struct TableStatsRegistry {
    per_table: HashMap<String, TableStats>,
}

impl TableStatsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyze every table in a catalog.
    pub fn analyze_catalog(catalog: &Catalog, buckets: usize) -> Self {
        let mut reg = Self::new();
        for name in catalog.table_names() {
            let t = catalog.table(&name).expect("listed table exists");
            reg.per_table.insert(name, TableStats::analyze(&t, buckets));
        }
        reg
    }

    /// Insert or replace stats for one table.
    pub fn insert(&mut self, table: impl Into<String>, stats: TableStats) {
        self.per_table.insert(table.into(), stats);
    }

    /// Stats for a table.
    pub fn get(&self, table: &str) -> Option<&TableStats> {
        self.per_table.get(table)
    }
}

/// The estimation interface the optimizer consults.
pub trait CardEstimator {
    /// Base cardinality of a table.
    fn table_rows(&self, table: &str) -> f64;

    /// Selectivity of a local predicate against one table.
    fn selectivity(&self, table: &str, pred: &Expr) -> f64;

    /// Selectivity of the equi-join `left_table.left_col = right_table.right_col`,
    /// as a fraction of the cross product.
    fn join_selectivity(
        &self,
        left_table: &str,
        left_col: &str,
        right_table: &str,
        right_col: &str,
    ) -> f64;

    /// Estimated output rows of a filtered table.
    fn filtered_rows(&self, table: &str, pred: &Expr) -> f64 {
        self.table_rows(table) * self.selectivity(table, pred)
    }
}

fn unqualify(col: &str) -> &str {
    col.rsplit_once('.').map(|(_, c)| c).unwrap_or(col)
}

/// Histogram + independence estimator — the industry baseline.
#[derive(Debug, Clone)]
pub struct StatsEstimator {
    registry: Rc<TableStatsRegistry>,
}

impl StatsEstimator {
    /// Build over a stats registry.
    pub fn new(registry: Rc<TableStatsRegistry>) -> Self {
        StatsEstimator { registry }
    }

    /// Estimate a (possibly compound) predicate's selectivity against one
    /// table's column stats, assuming independence between conjuncts.
    fn expr_selectivity(&self, table: &str, e: &Expr) -> f64 {
        match e {
            Expr::And(parts) => parts
                .iter()
                .map(|p| self.expr_selectivity(table, p))
                .product(),
            Expr::Or(parts) => {
                // 1 - ∏(1 - s_i), independence.
                let miss: f64 = parts
                    .iter()
                    .map(|p| 1.0 - self.expr_selectivity(table, p))
                    .product();
                (1.0 - miss).clamp(0.0, 1.0)
            }
            Expr::Not(inner) => {
                if let Some(sp) = SimplePred::from_expr(e) {
                    self.simple_selectivity(table, &sp)
                } else {
                    (1.0 - self.expr_selectivity(table, inner)).clamp(0.0, 1.0)
                }
            }
            other => match SimplePred::from_expr(other) {
                Some(sp) => self.simple_selectivity(table, &sp),
                None => DEFAULT_SELECTIVITY,
            },
        }
    }

    fn simple_selectivity(&self, table: &str, sp: &SimplePred) -> f64 {
        // Exact column name first (temp tables keep qualified field names),
        // then the unqualified suffix.
        self.registry
            .get(table)
            .and_then(|ts| {
                ts.columns
                    .get(sp.column())
                    .or_else(|| ts.columns.get(unqualify(sp.column())))
            })
            .map(|cs| cs.selectivity(sp))
            .unwrap_or(DEFAULT_SELECTIVITY)
    }
}

impl CardEstimator for StatsEstimator {
    fn table_rows(&self, table: &str) -> f64 {
        self.registry.get(table).map(|t| t.rows).unwrap_or(1000.0)
    }

    fn selectivity(&self, table: &str, pred: &Expr) -> f64 {
        self.expr_selectivity(table, pred).clamp(0.0, 1.0)
    }

    fn join_selectivity(
        &self,
        left_table: &str,
        left_col: &str,
        right_table: &str,
        right_col: &str,
    ) -> f64 {
        let ndv = |t: &str, c: &str| -> f64 {
            self.registry
                .get(t)
                .and_then(|ts| {
                    ts.columns
                        .get(c)
                        .or_else(|| ts.columns.get(unqualify(c)))
                })
                .map(|cs| cs.ndv.max(1) as f64)
                .unwrap_or(100.0)
        };
        // Classic: 1 / max(ndv_l, ndv_r), containment assumption.
        1.0 / ndv(left_table, left_col).max(ndv(right_table, right_col))
    }
}

/// True-cardinality estimator — counts against the live data. Expensive;
/// used as the *ideal* reference, never on a competitive query path.
#[derive(Debug, Clone)]
pub struct OracleEstimator {
    catalog: Rc<Catalog>,
}

impl OracleEstimator {
    /// Build over a catalog snapshot.
    pub fn new(catalog: Rc<Catalog>) -> Self {
        OracleEstimator { catalog }
    }
}

impl CardEstimator for OracleEstimator {
    fn table_rows(&self, table: &str) -> f64 {
        self.catalog
            .table(table)
            .map(|t| t.nrows() as f64)
            .unwrap_or(0.0)
    }

    fn selectivity(&self, table: &str, pred: &Expr) -> f64 {
        match self.catalog.table(table) {
            Ok(t) if t.nrows() > 0 => match t.count_where(pred) {
                Ok(n) => n as f64 / t.nrows() as f64,
                Err(_) => DEFAULT_SELECTIVITY,
            },
            _ => 0.0,
        }
    }

    fn join_selectivity(
        &self,
        left_table: &str,
        left_col: &str,
        right_table: &str,
        right_col: &str,
    ) -> f64 {
        let (Ok(lt), Ok(rt)) = (self.catalog.table(left_table), self.catalog.table(right_table))
        else {
            return 0.0;
        };
        let (Ok(lc), Ok(rc)) = (lt.column_by_name(left_col), rt.column_by_name(right_col))
        else {
            return 0.0;
        };
        if lt.nrows() == 0 || rt.nrows() == 0 {
            return 0.0;
        }
        let mut counts: HashMap<Value, (f64, f64)> = HashMap::new();
        for v in lc.iter_values() {
            counts.entry(v).or_default().0 += 1.0;
        }
        for v in rc.iter_values() {
            counts.entry(v).or_default().1 += 1.0;
        }
        let matches: f64 = counts.values().map(|&(a, b)| a * b).sum();
        matches / (lt.nrows() as f64 * rt.nrows() as f64)
    }
}

/// Error-injecting estimator: wraps another estimator and multiplies chosen
/// estimates by fixed factors. This is how experiments create the "7 orders
/// of magnitude" cardinality-estimate war stories on demand.
pub struct LyingEstimator {
    inner: Box<dyn CardEstimator>,
    /// Per-table selectivity factor.
    table_factors: HashMap<String, f64>,
    /// Per-column selectivity factor (applied when the predicate mentions the
    /// column), keyed by unqualified name.
    column_factors: HashMap<String, f64>,
    /// Global join-selectivity factor.
    join_factor: f64,
}

impl LyingEstimator {
    /// Wrap `inner` with no lies (yet).
    pub fn new(inner: Box<dyn CardEstimator>) -> Self {
        LyingEstimator {
            inner,
            table_factors: HashMap::new(),
            column_factors: HashMap::new(),
            join_factor: 1.0,
        }
    }

    /// Multiply every selectivity estimate for `table` by `factor`.
    pub fn with_table_factor(mut self, table: impl Into<String>, factor: f64) -> Self {
        self.table_factors.insert(table.into(), factor);
        self
    }

    /// Multiply selectivity estimates of predicates touching `column` by
    /// `factor`.
    pub fn with_column_factor(mut self, column: impl Into<String>, factor: f64) -> Self {
        let c: String = column.into();
        self.column_factors.insert(unqualify(&c).to_owned(), factor);
        self
    }

    /// Multiply all join selectivities by `factor`.
    pub fn with_join_factor(mut self, factor: f64) -> Self {
        self.join_factor = factor;
        self
    }
}

impl CardEstimator for LyingEstimator {
    fn table_rows(&self, table: &str) -> f64 {
        self.inner.table_rows(table)
    }

    fn selectivity(&self, table: &str, pred: &Expr) -> f64 {
        let mut s = self.inner.selectivity(table, pred);
        if let Some(f) = self.table_factors.get(table) {
            s *= f;
        }
        for c in pred.columns() {
            if let Some(f) = self.column_factors.get(unqualify(&c)) {
                s *= f;
            }
        }
        s.clamp(0.0, 1.0)
    }

    fn join_selectivity(
        &self,
        left_table: &str,
        left_col: &str,
        right_table: &str,
        right_col: &str,
    ) -> f64 {
        (self.inner.join_selectivity(left_table, left_col, right_table, right_col)
            * self.join_factor)
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::rng::seeded;
    use rqp_common::Schema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("grp", DataType::Int),
            ("name", DataType::Str),
        ]);
        let mut t = Table::new("t", schema);
        for i in 0..1000i64 {
            t.append(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::Str(format!("n{}", i % 5)),
            ]);
        }
        c.add_table(t);
        let schema_u = Schema::from_pairs(&[("grp", DataType::Int)]);
        let mut u = Table::new("u", schema_u);
        for i in 0..100i64 {
            u.append(vec![Value::Int(i % 10)]);
        }
        c.add_table(u);
        c
    }

    fn stats_estimator(c: &Catalog) -> StatsEstimator {
        StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(c, 32)))
    }

    #[test]
    fn range_estimate_accurate_on_uniform() {
        let c = catalog();
        let e = stats_estimator(&c);
        let sel = e.selectivity("t", &col("t.k").between(0i64, 249i64));
        assert!((sel - 0.25).abs() < 0.03, "got {sel}");
        assert_eq!(e.table_rows("t"), 1000.0);
    }

    #[test]
    fn eq_estimate_uses_ndv() {
        let c = catalog();
        let e = stats_estimator(&c);
        let sel = e.selectivity("t", &col("grp").eq(lit(3i64)));
        assert!((sel - 0.1).abs() < 0.03, "got {sel}");
        let sel = e.selectivity("t", &col("name").eq(lit("n1")));
        assert!((sel - 0.2).abs() < 0.05, "string eq via ndv, got {sel}");
    }

    #[test]
    fn independence_multiplies_conjuncts() {
        let c = catalog();
        let e = stats_estimator(&c);
        let p = col("k").between(0i64, 499i64).and(col("grp").eq(lit(3i64)));
        let sel = e.selectivity("t", &p);
        assert!((sel - 0.05).abs() < 0.02, "0.5 * 0.1 expected, got {sel}");
    }

    #[test]
    fn or_and_not() {
        let c = catalog();
        let e = stats_estimator(&c);
        let sel_or =
            e.selectivity("t", &col("grp").eq(lit(1i64)).or(col("grp").eq(lit(2i64))));
        assert!(sel_or > 0.15 && sel_or < 0.25, "got {sel_or}");
        let sel_not = e.selectivity("t", &col("grp").eq(lit(1i64)).not());
        assert!((sel_not - 0.9).abs() < 0.05, "got {sel_not}");
    }

    #[test]
    fn join_selectivity_containment() {
        let c = catalog();
        let e = stats_estimator(&c);
        let s = e.join_selectivity("t", "grp", "u", "grp");
        assert!((s - 0.1).abs() < 0.02, "1/max(10,10), got {s}");
    }

    #[test]
    fn oracle_matches_truth() {
        let c = Rc::new(catalog());
        let o = OracleEstimator::new(c);
        let sel = o.selectivity("t", &col("t.k").lt(lit(100i64)));
        assert!((sel - 0.1).abs() < 1e-9);
        // Exact join: each of the 10 groups: 100 × 10 pairs → 10_000 matches
        // over 100_000 cross = 0.1… wait: t has 100 rows per grp, u has 10.
        let js = o.join_selectivity("t", "grp", "u", "grp");
        assert!((js - 0.1).abs() < 1e-9, "got {js}");
    }

    #[test]
    fn lying_estimator_injects_error() {
        let c = catalog();
        let base = stats_estimator(&c);
        let truth = base.selectivity("t", &col("grp").eq(lit(3i64)));
        let liar = LyingEstimator::new(Box::new(base))
            .with_column_factor("grp", 0.001)
            .with_join_factor(10.0);
        let lied = liar.selectivity("t", &col("grp").eq(lit(3i64)));
        assert!(lied < truth / 100.0, "injected 1000x underestimate");
        let js = liar.join_selectivity("t", "grp", "u", "grp");
        assert!(js > 0.5, "join factor applied, got {js}");
        // Unrelated column unaffected.
        let sel_k = liar.selectivity("t", &col("k").lt(lit(500i64)));
        assert!((sel_k - 0.5).abs() < 0.05);
    }

    #[test]
    fn sampled_stats_perturb_estimates() {
        let c = catalog();
        let t = c.table("t").unwrap();
        let mut rng1 = seeded(1);
        let mut rng2 = seeded(2);
        let s1 = TableStats::analyze_sampled(&t, 16, 100, &mut rng1);
        let s2 = TableStats::analyze_sampled(&t, 16, 100, &mut rng2);
        let mut r1 = TableStatsRegistry::new();
        r1.insert("t", s1);
        let mut r2 = TableStatsRegistry::new();
        r2.insert("t", s2);
        let e1 = StatsEstimator::new(Rc::new(r1));
        let e2 = StatsEstimator::new(Rc::new(r2));
        let p = col("k").between(100i64, 199i64);
        let a = e1.selectivity("t", &p);
        let b = e2.selectivity("t", &p);
        // Both roughly right…
        assert!((a - 0.1).abs() < 0.08 && (b - 0.1).abs() < 0.08);
        // …but different samples give different estimates (the E21 trigger).
        assert!((a - b).abs() > 1e-6, "different samples should differ");
    }

    #[test]
    fn missing_table_defaults() {
        let c = catalog();
        let e = stats_estimator(&c);
        assert_eq!(e.table_rows("nope"), 1000.0);
        assert_eq!(
            e.selectivity("nope", &col("x").eq(lit(1i64))),
            DEFAULT_SELECTIVITY
        );
    }
}
