//! The q-error metric (Moerkotte, Neumann & Steidl, PVLDB 2009).
//!
//! `q(e, a) = max(e/a, a/e)` — the *multiplicative* estimation error, ≥ 1,
//! symmetric in over- and under-estimation. The paper proves plan-quality
//! bounds in terms of the maximum q-error over all intermediate results; the
//! seminar's estimation break-outs adopt it (alongside the additive Metric1/2
//! of Nica et al.) as the estimation-robustness currency. E08 and E19 report
//! q-error summaries.

/// The q-error of estimate `e` against actual `a`.
///
/// Both values are floored at one row (the convention of the paper) so that
/// empty results don't produce infinities; the result is always ≥ 1.
pub fn q_error(estimate: f64, actual: f64) -> f64 {
    let e = estimate.max(1.0);
    let a = actual.max(1.0);
    (e / a).max(a / e)
}

/// Aggregate q-error statistics over a set of (estimate, actual) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct QErrorSummary {
    /// Number of observations.
    pub count: usize,
    /// Maximum q-error (the bound-relevant statistic).
    pub max: f64,
    /// Geometric mean of q-errors.
    pub geo_mean: f64,
    /// Median q-error.
    pub median: f64,
    /// 95th percentile q-error.
    pub p95: f64,
}

impl QErrorSummary {
    /// Summarize `(estimate, actual)` pairs. Empty input yields the identity
    /// summary (all statistics 1).
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        if pairs.is_empty() {
            return QErrorSummary { count: 0, max: 1.0, geo_mean: 1.0, median: 1.0, p95: 1.0 };
        }
        let mut qs: Vec<f64> = pairs.iter().map(|&(e, a)| q_error(e, a)).collect();
        qs.sort_by(f64::total_cmp);
        let count = qs.len();
        let max = *qs.last().expect("non-empty");
        let geo_mean = (qs.iter().map(|q| q.ln()).sum::<f64>() / count as f64).exp();
        let median = qs[count / 2];
        let p95 = qs[((count as f64 * 0.95) as usize).min(count - 1)];
        QErrorSummary { count, max, geo_mean, median, p95 }
    }
}

impl std::fmt::Display for QErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "q-error n={} median={:.2} geo-mean={:.2} p95={:.2} max={:.2}",
            self.count, self.median, self.geo_mean, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_and_floored() {
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(50.0, 50.0), 1.0);
        // floor at 1 row avoids infinities
        assert_eq!(q_error(0.0, 100.0), 100.0);
        assert_eq!(q_error(100.0, 0.0), 100.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn always_at_least_one() {
        for (e, a) in [(1.0, 1.0), (0.5, 0.7), (3.0, 2.0), (1e9, 1.0)] {
            assert!(q_error(e, a) >= 1.0);
        }
    }

    #[test]
    fn summary_statistics() {
        let pairs = vec![(10.0, 10.0), (20.0, 10.0), (10.0, 40.0), (1.0, 1000.0)];
        let s = QErrorSummary::from_pairs(&pairs);
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 1000.0);
        assert!(s.median >= 2.0 && s.median <= 4.0);
        assert!(s.geo_mean > 1.0 && s.geo_mean < s.max);
    }

    #[test]
    fn empty_summary_is_identity() {
        let s = QErrorSummary::from_pairs(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.geo_mean, 1.0);
    }

    #[test]
    fn display_contains_fields() {
        let s = QErrorSummary::from_pairs(&[(2.0, 1.0)]);
        let out = s.to_string();
        assert!(out.contains("max=2.00"), "{out}");
    }
}
