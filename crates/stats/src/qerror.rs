//! The q-error metric (Moerkotte, Neumann & Steidl, PVLDB 2009).
//!
//! `q(e, a) = max(e/a, a/e)` — the *multiplicative* estimation error, ≥ 1,
//! symmetric in over- and under-estimation. The paper proves plan-quality
//! bounds in terms of the maximum q-error over all intermediate results; the
//! seminar's estimation break-outs adopt it (alongside the additive Metric1/2
//! of Nica et al.) as the estimation-robustness currency. E08 and E19 report
//! q-error summaries.

/// The q-error of estimate `e` against actual `a`.
///
/// Both values are floored at one row (the convention of the paper) so that
/// empty results don't produce infinities; the result is always ≥ 1.
pub fn q_error(estimate: f64, actual: f64) -> f64 {
    let e = estimate.max(1.0);
    let a = actual.max(1.0);
    (e / a).max(a / e)
}

/// Aggregate q-error statistics over a set of (estimate, actual) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct QErrorSummary {
    /// Number of observations.
    pub count: usize,
    /// Maximum q-error (the bound-relevant statistic).
    pub max: f64,
    /// Geometric mean of q-errors.
    pub geo_mean: f64,
    /// Median q-error.
    pub median: f64,
    /// 95th percentile q-error.
    pub p95: f64,
}

impl QErrorSummary {
    /// Summarize `(estimate, actual)` pairs. Empty input yields the identity
    /// summary (all statistics 1).
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        if pairs.is_empty() {
            return QErrorSummary { count: 0, max: 1.0, geo_mean: 1.0, median: 1.0, p95: 1.0 };
        }
        let mut qs: Vec<f64> = pairs.iter().map(|&(e, a)| q_error(e, a)).collect();
        qs.sort_by(f64::total_cmp);
        let count = qs.len();
        let max = *qs.last().expect("non-empty");
        let geo_mean = (qs.iter().map(|q| q.ln()).sum::<f64>() / count as f64).exp();
        let median = nearest_rank(&qs, 0.50);
        let p95 = nearest_rank(&qs, 0.95);
        QErrorSummary { count, max, geo_mean, median, p95 }
    }
}

/// Nearest-rank quantile over an ascending-sorted slice: the smallest value
/// whose rank covers fraction `q` of the observations (`rank =
/// max(ceil(q·n), 1)`). This is the convention the telemetry histogram's
/// p50/p95/p99 use, so scoreboard columns computed from either source are
/// comparable — and unlike `qs[n/2]` (the *upper* median) or truncating
/// `(n·q) as usize` (which turns p95 into max for small n), it is exact at
/// the boundaries: n=1 → the value, n=2 → the lower one at p50.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as usize;
    sorted[rank.min(n) - 1]
}

impl std::fmt::Display for QErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "q-error n={} median={:.2} geo-mean={:.2} p95={:.2} max={:.2}",
            self.count, self.median, self.geo_mean, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_and_floored() {
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(50.0, 50.0), 1.0);
        // floor at 1 row avoids infinities
        assert_eq!(q_error(0.0, 100.0), 100.0);
        assert_eq!(q_error(100.0, 0.0), 100.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn always_at_least_one() {
        for (e, a) in [(1.0, 1.0), (0.5, 0.7), (3.0, 2.0), (1e9, 1.0)] {
            assert!(q_error(e, a) >= 1.0);
        }
    }

    #[test]
    fn summary_statistics() {
        let pairs = vec![(10.0, 10.0), (20.0, 10.0), (10.0, 40.0), (1.0, 1000.0)];
        let s = QErrorSummary::from_pairs(&pairs);
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 1000.0);
        assert!(s.median >= 2.0 && s.median <= 4.0);
        assert!(s.geo_mean > 1.0 && s.geo_mean < s.max);
    }

    /// A pair whose q-error is exactly `q` (q ≥ 1).
    fn pair(q: f64) -> (f64, f64) {
        (q, 1.0)
    }

    #[test]
    fn quantiles_use_nearest_rank_boundaries() {
        // n=1: every quantile is the single observation.
        let s = QErrorSummary::from_pairs(&[pair(7.0)]);
        assert_eq!((s.median, s.p95, s.max), (7.0, 7.0, 7.0));

        // n=2: nearest-rank median is the LOWER of the two (rank ceil(1)=1),
        // not the upper one qs[n/2] would give; p95 is the upper.
        let s = QErrorSummary::from_pairs(&[pair(2.0), pair(8.0)]);
        assert_eq!(s.median, 2.0, "lower median, not qs[1]");
        assert_eq!(s.p95, 8.0);

        // n=4: median is rank ceil(2)=2 → qs[1]; p95 rank ceil(3.8)=4 → max
        // (for n=4 the 95th percentile legitimately is the max).
        let s = QErrorSummary::from_pairs(&[pair(1.0), pair(2.0), pair(4.0), pair(1000.0)]);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.p95, 1000.0);

        // n=20: the truncating (n*0.95) as usize = 19 indexed the max; the
        // nearest-rank 95th is rank ceil(19)=19 → qs[18], below the max.
        let pairs: Vec<(f64, f64)> = (1..=20).map(|i| pair(i as f64)).collect();
        let s = QErrorSummary::from_pairs(&pairs);
        assert_eq!(s.median, 10.0, "rank ceil(10)=10 → qs[9]");
        assert_eq!(s.p95, 19.0, "p95 is not the max once n covers 5% tails");
        assert_eq!(s.max, 20.0);
    }

    #[test]
    fn quantile_convention_matches_telemetry_histogram() {
        // The scoreboard mixes quantiles from QErrorSummary and from the
        // telemetry histogram; both must resolve the same rank. The
        // histogram returns bucket *upper bounds*, so feed it values that
        // are themselves power-of-two bounds shifted down: a value v in
        // (2^i, 2^(i+1)] reports bound 2^(i+1).
        let qs = [1.5, 3.0, 3.0, 12.0, 100.0];
        let hist = rqp_telemetry::Histogram::default();
        for q in qs {
            hist.observe(q);
        }
        let pairs: Vec<(f64, f64)> = qs.iter().map(|&q| (q, 1.0)).collect();
        let s = QErrorSummary::from_pairs(&pairs);
        // Median: rank ceil(2.5)=3 → third-smallest in both conventions.
        assert_eq!(s.median, 3.0);
        assert_eq!(hist.p50(), 4.0, "same rank, reported as its bucket bound");
        // p95: rank ceil(4.75)=5 → the largest, in both conventions.
        assert_eq!(s.p95, 100.0);
        assert_eq!(hist.p95(), 128.0);
    }

    #[test]
    fn empty_summary_is_identity() {
        let s = QErrorSummary::from_pairs(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.geo_mean, 1.0);
    }

    #[test]
    fn display_contains_fields() {
        let s = QErrorSummary::from_pairs(&[(2.0, 1.0)]);
        let out = s.to_string();
        assert!(out.contains("max=2.00"), "{out}");
    }
}
