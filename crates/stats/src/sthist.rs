//! Self-tuning histograms (Aboulnaga & Chaudhuri, SIGMOD 1999).
//!
//! An ST-histogram starts from a uniform assumption over `[min, max]` and
//! refines itself from *query feedback only* — the estimation error of each
//! observed range query is distributed over the buckets that contributed to
//! the estimate, and periodic restructuring splits high-frequency buckets by
//! merging near-empty ones. No data scan is ever taken; the histogram's
//! accuracy converges with the workload. Experiment E19 measures exactly this
//! convergence (together with LEO-style feedback).

use crate::histogram::Histogram;

/// A feedback-refined histogram over a fixed `[min, max]` domain.
#[derive(Debug, Clone)]
pub struct SelfTuningHistogram {
    bounds: Vec<f64>,
    counts: Vec<f64>,
    total: f64,
    damping: f64,
    refinements: usize,
    restructure_every: usize,
}

impl SelfTuningHistogram {
    /// A uniform histogram over `[min, max]` assuming `total` rows.
    ///
    /// `damping` ∈ (0, 1] scales how much of each observed error is applied
    /// (the paper's α, typically 0.5–1.0).
    pub fn new(min: f64, max: f64, total: f64, buckets: usize, damping: f64) -> Self {
        assert!(buckets > 0 && max >= min && total >= 0.0);
        assert!(damping > 0.0 && damping <= 1.0);
        let width = (max - min) / buckets as f64;
        let bounds: Vec<f64> = (0..=buckets).map(|i| min + i as f64 * width).collect();
        SelfTuningHistogram {
            bounds,
            counts: vec![total / buckets as f64; buckets],
            total,
            damping,
            refinements: 0,
            restructure_every: 50,
        }
    }

    /// Number of feedback refinements applied so far.
    pub fn refinements(&self) -> usize {
        self.refinements
    }

    /// Feed back the *actual* row count of a range query `[lo, hi]`.
    ///
    /// The estimation error is distributed over overlapping buckets in
    /// proportion to their current contribution (frequency-proportional
    /// assignment, per the paper), damped by α.
    pub fn refine(&mut self, lo: f64, hi: f64, actual_rows: f64) {
        if lo > hi {
            return;
        }
        let est = self.range_selectivity(lo, hi) * self.total;
        let err = self.damping * (actual_rows - est);
        // Contribution of each bucket to the estimate.
        let mut contribs = Vec::new();
        let mut contrib_sum = 0.0;
        for b in 0..self.counts.len() {
            let (blo, bhi) = (self.bounds[b], self.bounds[b + 1]);
            let ov = overlap_fraction(lo, hi, blo, bhi);
            let c = self.counts[b] * ov;
            contribs.push((b, ov, c));
            contrib_sum += c;
        }
        for (b, ov, c) in contribs {
            if ov <= 0.0 {
                continue;
            }
            let share = if contrib_sum > 0.0 {
                err * (c / contrib_sum)
            } else {
                // Estimate was zero: spread uniformly over overlapped buckets.
                let overlapped: f64 = self
                    .bounds
                    .windows(2)
                    .filter(|w| overlap_fraction(lo, hi, w[0], w[1]) > 0.0)
                    .count() as f64;
                err / overlapped.max(1.0)
            };
            self.counts[b] = (self.counts[b] + share).max(0.0);
        }
        self.total = self.counts.iter().sum::<f64>().max(1.0);
        self.refinements += 1;
        if self.refinements.is_multiple_of(self.restructure_every) {
            self.restructure();
        }
    }

    /// Periodic restructuring: merge the pair of adjacent buckets with the
    /// most similar frequency, then split the highest-frequency bucket in
    /// two — keeping the bucket count constant while concentrating resolution
    /// where the (observed) mass is.
    fn restructure(&mut self) {
        if self.counts.len() < 3 {
            return;
        }
        // Find the most similar adjacent pair.
        let mut best_pair = 0;
        let mut best_diff = f64::INFINITY;
        for b in 0..self.counts.len() - 1 {
            let d = (self.counts[b] - self.counts[b + 1]).abs();
            if d < best_diff {
                best_diff = d;
                best_pair = b;
            }
        }
        // Find the heaviest bucket (not one of the merged pair).
        let mut heavy = 0;
        let mut heavy_count = -1.0;
        for b in 0..self.counts.len() {
            if b == best_pair || b == best_pair + 1 {
                continue;
            }
            if self.counts[b] > heavy_count {
                heavy_count = self.counts[b];
                heavy = b;
            }
        }
        if heavy_count <= 0.0 {
            return;
        }
        // Merge best_pair and best_pair+1.
        let merged = self.counts[best_pair] + self.counts[best_pair + 1];
        self.counts[best_pair] = merged;
        self.counts.remove(best_pair + 1);
        self.bounds.remove(best_pair + 1);
        // Split `heavy` (index may have shifted).
        let heavy = if heavy > best_pair { heavy - 1 } else { heavy };
        let (hlo, hhi) = (self.bounds[heavy], self.bounds[heavy + 1]);
        let mid = (hlo + hhi) / 2.0;
        let half = self.counts[heavy] / 2.0;
        self.counts[heavy] = half;
        self.counts.insert(heavy + 1, half);
        self.bounds.insert(heavy + 1, mid);
    }
}

fn overlap_fraction(lo: f64, hi: f64, blo: f64, bhi: f64) -> f64 {
    if bhi == blo {
        return if lo <= blo && blo <= hi { 1.0 } else { 0.0 };
    }
    ((hi.min(bhi) - lo.max(blo)) / (bhi - blo)).clamp(0.0, 1.0)
}

impl Histogram for SelfTuningHistogram {
    fn total_rows(&self) -> f64 {
        self.total
    }

    fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        if self.total <= 0.0 || lo > hi {
            return 0.0;
        }
        let mut rows = 0.0;
        for b in 0..self.counts.len() {
            rows += self.counts[b] * overlap_fraction(lo, hi, self.bounds[b], self.bounds[b + 1]);
        }
        (rows / self.total).clamp(0.0, 1.0)
    }

    fn eq_selectivity(&self, v: f64) -> f64 {
        // Point estimate: tiny range around v, floor of one "row".
        let eps = (self.bounds.last().unwrap() - self.bounds[0]).abs() / 1e6 + f64::MIN_POSITIVE;
        self.range_selectivity(v - eps, v + eps)
            .max(1.0 / self.total.max(1.0))
            .min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground truth: 90% of 1000 rows in [0,10), the rest uniform to 100.
    fn true_rows(lo: f64, hi: f64) -> f64 {
        let dense = 900.0 * (hi.min(10.0) - lo.max(0.0)).max(0.0) / 10.0;
        let sparse = 100.0 * (hi.min(100.0) - lo.max(10.0)).max(0.0) / 90.0;
        dense + sparse
    }

    #[test]
    fn starts_uniform() {
        let h = SelfTuningHistogram::new(0.0, 100.0, 1000.0, 10, 1.0);
        assert!((h.range_selectivity(0.0, 50.0) - 0.5).abs() < 1e-9);
        assert_eq!(h.refinements(), 0);
    }

    #[test]
    fn feedback_reduces_error() {
        let mut h = SelfTuningHistogram::new(0.0, 100.0, 1000.0, 10, 1.0);
        let err_before = (h.range_selectivity(0.0, 10.0) * 1000.0 - true_rows(0.0, 10.0)).abs();
        // Train with a sweep of observed queries.
        for round in 0..20 {
            for i in 0..10 {
                let lo = (i * 10) as f64;
                let hi = lo + 10.0;
                h.refine(lo, hi, true_rows(lo, hi));
                let _ = round;
            }
        }
        let err_after = (h.range_selectivity(0.0, 10.0) * 1000.0 - true_rows(0.0, 10.0)).abs();
        assert!(
            err_after < err_before / 4.0,
            "before {err_before:.1}, after {err_after:.1}"
        );
    }

    #[test]
    fn total_tracks_feedback() {
        let mut h = SelfTuningHistogram::new(0.0, 100.0, 1000.0, 10, 1.0);
        h.refine(0.0, 100.0, 2000.0);
        assert!((h.total_rows() - 2000.0).abs() / 2000.0 < 0.05);
    }

    #[test]
    fn counts_never_negative() {
        let mut h = SelfTuningHistogram::new(0.0, 100.0, 1000.0, 5, 1.0);
        for _ in 0..10 {
            h.refine(0.0, 100.0, 0.0);
        }
        assert!(h.range_selectivity(0.0, 100.0) >= 0.0);
        let s = h.range_selectivity(0.0, 50.0);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn restructure_keeps_bucket_count() {
        let mut h = SelfTuningHistogram::new(0.0, 100.0, 1000.0, 8, 1.0);
        let buckets_before = h.counts.len();
        for i in 0..120 {
            let lo = (i % 10) as f64 * 10.0;
            h.refine(lo, lo + 10.0, true_rows(lo, lo + 10.0));
        }
        assert_eq!(h.counts.len(), buckets_before);
        assert_eq!(h.bounds.len(), buckets_before + 1);
        // Bounds stay sorted.
        assert!(h.bounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn inverted_range_noop() {
        let mut h = SelfTuningHistogram::new(0.0, 100.0, 1000.0, 4, 0.5);
        h.refine(50.0, 10.0, 500.0);
        assert_eq!(h.refinements(), 0);
        assert_eq!(h.range_selectivity(50.0, 10.0), 0.0);
    }

    #[test]
    fn eq_selectivity_bounded() {
        let h = SelfTuningHistogram::new(0.0, 100.0, 1000.0, 10, 1.0);
        let s = h.eq_selectivity(42.0);
        assert!(s > 0.0 && s <= 1.0);
    }
}
