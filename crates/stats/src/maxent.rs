//! Consistent selectivity estimation via maximum entropy
//! (Markl, Haas, Kutsch, Megiddo, Srivastava, Tran — VLDB Journal 2007).
//!
//! Given selectivities for *some* conjunctions of predicates (single-column
//! statistics, a few multivariate statistics, feedback observations), the
//! maximum-entropy principle picks the unique joint distribution over the
//! `2^n` predicate atoms that satisfies every known constraint and assumes
//! nothing else. In the absence of multivariate knowledge it reduces exactly
//! to the independence assumption; with partial knowledge it avoids the
//! inconsistent, biased ad-hoc combinations the paper criticizes.
//!
//! [`MaxEntSolver`] implements iterative proportional fitting over the atom
//! space (practical for `n ≤ 16` predicates, far above real optimizer needs).

use rqp_common::{Result, RqpError};

/// Builder for a maximum-entropy joint selectivity model over `n` predicates.
///
/// ```
/// use rqp_stats::MaxEntSolver;
///
/// let mut s = MaxEntSolver::new(2).unwrap();
/// s.add_constraint(0b01, 0.3).unwrap();
/// s.add_constraint(0b10, 0.4).unwrap();
/// let d = s.solve(200, 1e-9);
/// // Without joint knowledge, ME reduces to independence:
/// assert!((d.selectivity(0b11) - 0.12).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct MaxEntSolver {
    n: usize,
    /// `(mask, selectivity)`: P(∧ of predicates in mask) = selectivity.
    constraints: Vec<(u32, f64)>,
}

/// The fitted joint distribution over predicate atoms.
#[derive(Debug, Clone)]
pub struct MaxEntDistribution {
    n: usize,
    /// `atoms[b]` = probability that exactly the predicates in bitset `b`
    /// hold (and the rest fail).
    atoms: Vec<f64>,
}

impl MaxEntSolver {
    /// A solver over `n` predicates (`1 ≤ n ≤ 16`).
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 || n > 16 {
            return Err(RqpError::Invalid(format!(
                "maxent supports 1..=16 predicates, got {n}"
            )));
        }
        Ok(MaxEntSolver { n, constraints: Vec::new() })
    }

    /// Record that the conjunction of the predicates in `mask` has
    /// selectivity `sel`. `mask` must be a non-empty subset of `0..n` bits.
    pub fn add_constraint(&mut self, mask: u32, sel: f64) -> Result<&mut Self> {
        if mask == 0 || mask >= (1u32 << self.n) {
            return Err(RqpError::Invalid(format!(
                "constraint mask {mask:#b} out of range for n={}",
                self.n
            )));
        }
        if !(0.0..=1.0).contains(&sel) {
            return Err(RqpError::Invalid(format!("selectivity {sel} out of [0,1]")));
        }
        self.constraints.push((mask, sel.clamp(1e-12, 1.0 - 1e-12)));
        Ok(self)
    }

    /// Fit by iterative proportional fitting.
    ///
    /// Starts uniform (the zero-knowledge ME solution) and rescales atoms to
    /// satisfy each constraint in turn until the worst constraint violation
    /// falls below `tol` or `max_iters` sweeps elapse.
    pub fn solve(&self, max_iters: usize, tol: f64) -> MaxEntDistribution {
        let atoms_n = 1usize << self.n;
        let mut atoms = vec![1.0 / atoms_n as f64; atoms_n];
        for _ in 0..max_iters {
            let mut worst: f64 = 0.0;
            for &(mask, sel) in &self.constraints {
                let cur: f64 = atoms
                    .iter()
                    .enumerate()
                    .filter(|(b, _)| (*b as u32) & mask == mask)
                    .map(|(_, &p)| p)
                    .sum();
                worst = worst.max((cur - sel).abs());
                if cur <= 0.0 || cur >= 1.0 {
                    continue;
                }
                let up = sel / cur;
                let down = (1.0 - sel) / (1.0 - cur);
                for (b, p) in atoms.iter_mut().enumerate() {
                    if (b as u32) & mask == mask {
                        *p *= up;
                    } else {
                        *p *= down;
                    }
                }
            }
            if worst < tol {
                break;
            }
        }
        // Renormalize against drift.
        let total: f64 = atoms.iter().sum();
        if total > 0.0 {
            for p in &mut atoms {
                *p /= total;
            }
        }
        MaxEntDistribution { n: self.n, atoms }
    }
}

impl MaxEntDistribution {
    /// Number of predicates modelled.
    pub fn n(&self) -> usize {
        self.n
    }

    /// P(∧ of predicates in `mask`): sum over atoms containing `mask`.
    /// `mask == 0` returns 1.
    pub fn selectivity(&self, mask: u32) -> f64 {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(b, _)| (*b as u32) & mask == mask)
            .map(|(_, &p)| p)
            .sum()
    }

    /// P(∨ of predicates in `mask`) via inclusion of the all-fail atom set.
    pub fn any_selectivity(&self, mask: u32) -> f64 {
        1.0 - self
            .atoms
            .iter()
            .enumerate()
            .filter(|(b, _)| (*b as u32) & mask == 0)
            .map(|(_, &p)| p)
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_independence_without_multivariate_knowledge() {
        let mut s = MaxEntSolver::new(2).unwrap();
        s.add_constraint(0b01, 0.3).unwrap();
        s.add_constraint(0b10, 0.4).unwrap();
        let d = s.solve(200, 1e-9);
        assert!((d.selectivity(0b01) - 0.3).abs() < 1e-6);
        assert!((d.selectivity(0b10) - 0.4).abs() < 1e-6);
        assert!(
            (d.selectivity(0b11) - 0.12).abs() < 1e-4,
            "ME without correlation info = independence, got {}",
            d.selectivity(0b11)
        );
    }

    #[test]
    fn respects_full_correlation() {
        // p1 implies p2: s1 = 0.3, s2 = 0.4, s12 = 0.3 (not 0.12).
        //
        // The ME solution sits on the simplex boundary (the p1∧¬p2 atom is
        // forced to zero), where IPF converges only at O(1/k) — so we allow
        // estimator-grade tolerance rather than solver-grade.
        let mut s = MaxEntSolver::new(2).unwrap();
        s.add_constraint(0b01, 0.3).unwrap();
        s.add_constraint(0b10, 0.4).unwrap();
        s.add_constraint(0b11, 0.3).unwrap();
        let d = s.solve(5000, 1e-12);
        assert!((d.selectivity(0b11) - 0.3).abs() < 0.01, "got {}", d.selectivity(0b11));
        assert!((d.selectivity(0b01) - 0.3).abs() < 0.01, "got {}", d.selectivity(0b01));
    }

    #[test]
    fn three_predicates_with_pairwise_knowledge() {
        let mut s = MaxEntSolver::new(3).unwrap();
        s.add_constraint(0b001, 0.5).unwrap();
        s.add_constraint(0b010, 0.5).unwrap();
        s.add_constraint(0b100, 0.2).unwrap();
        s.add_constraint(0b011, 0.4).unwrap(); // p1,p2 strongly correlated
        let d = s.solve(1000, 1e-10);
        // Triple estimate should use the pairwise correlation: ≈ 0.4 * 0.2,
        // not the naive 0.5 * 0.5 * 0.2.
        let triple = d.selectivity(0b111);
        assert!(
            (triple - 0.08).abs() < 0.01,
            "expected ≈0.08 (correlated pair × independent third), got {triple}"
        );
        assert!((d.selectivity(0b011) - 0.4).abs() < 1e-4);
    }

    #[test]
    fn disjunction_selectivity() {
        let mut s = MaxEntSolver::new(2).unwrap();
        s.add_constraint(0b01, 0.3).unwrap();
        s.add_constraint(0b10, 0.4).unwrap();
        let d = s.solve(200, 1e-9);
        // P(a or b) = 0.3 + 0.4 - 0.12 under independence.
        assert!((d.any_selectivity(0b11) - 0.58).abs() < 1e-3);
        assert!((d.selectivity(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(MaxEntSolver::new(0).is_err());
        assert!(MaxEntSolver::new(17).is_err());
        let mut s = MaxEntSolver::new(2).unwrap();
        assert!(s.add_constraint(0, 0.5).is_err());
        assert!(s.add_constraint(0b100, 0.5).is_err());
        assert!(s.add_constraint(0b01, 1.5).is_err());
    }

    #[test]
    fn atoms_form_distribution() {
        let mut s = MaxEntSolver::new(3).unwrap();
        s.add_constraint(0b001, 0.7).unwrap();
        s.add_constraint(0b110, 0.2).unwrap();
        let d = s.solve(500, 1e-10);
        let sum: f64 = d.atoms.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(d.atoms.iter().all(|&p| p >= 0.0));
        assert_eq!(d.n(), 3);
    }
}
