//! Sampling-based selectivity estimation with uncertainty.
//!
//! Babcock & Chaudhuri's *Towards a Robust Query Optimizer* (SIGMOD 2005)
//! replaces point selectivity estimates with a *probability distribution*
//! obtained from a sample, and lets the optimizer cost plans at a chosen
//! percentile of that distribution. [`SamplingEstimator`] evaluates a
//! predicate on a fixed random sample of the table and exposes the Beta
//! posterior over the true selectivity (uniform prior: `Beta(k+1, n−k+1)`
//! after observing `k` of `n` matches).

use rand::Rng;
use rqp_common::{Expr, Result, Row, Schema};
use rqp_storage::Table;

/// Posterior over a selectivity after observing a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityPosterior {
    /// Matching sample rows.
    pub matches: usize,
    /// Sample size.
    pub sample_size: usize,
}

impl SelectivityPosterior {
    /// Posterior mean `(k+1)/(n+2)` (Laplace rule of succession).
    pub fn mean(&self) -> f64 {
        (self.matches as f64 + 1.0) / (self.sample_size as f64 + 2.0)
    }

    /// Posterior standard deviation of Beta(k+1, n−k+1).
    pub fn std_dev(&self) -> f64 {
        let a = self.matches as f64 + 1.0;
        let b = (self.sample_size - self.matches) as f64 + 1.0;
        let n = a + b;
        (a * b / (n * n * (n + 1.0))).sqrt()
    }

    /// Approximate `p`-quantile of the posterior.
    ///
    /// Uses a normal approximation clamped to `[0, 1]` plus exact handling of
    /// the degenerate all/none cases; accuracy is ample for percentile-based
    /// plan costing (the consumers compare plan costs, not tail probabilities).
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(1e-6, 1.0 - 1e-6);
        let z = normal_quantile(p);
        (self.mean() + z * self.std_dev()).clamp(0.0, 1.0)
    }

    /// Draw `k` deterministic "samples" of selectivity at evenly spaced
    /// quantiles (for expected-cost integration over the posterior).
    pub fn quadrature(&self, k: usize) -> Vec<f64> {
        (0..k)
            .map(|i| self.quantile((i as f64 + 0.5) / k as f64))
            .collect()
    }
}

/// Acklam-style rational approximation of the standard normal quantile.
fn normal_quantile(p: f64) -> f64 {
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// A fixed random sample of a table, re-usable across predicates.
#[derive(Debug, Clone)]
pub struct SamplingEstimator {
    schema: Schema,
    rows: Vec<Row>,
    table_rows: usize,
}

impl SamplingEstimator {
    /// Draw a sample of up to `sample_size` rows from `table` (without
    /// replacement), using the caller's RNG.
    pub fn build(table: &Table, sample_size: usize, rng: &mut impl Rng) -> Self {
        let n = table.nrows();
        let k = sample_size.min(n);
        let ids = rqp_common::rng::sample_distinct(rng, n, k);
        SamplingEstimator {
            schema: table.qualified_schema(),
            rows: ids.into_iter().map(|i| table.row(i)).collect(),
            table_rows: n,
        }
    }

    /// Size of the underlying table.
    pub fn table_rows(&self) -> usize {
        self.table_rows
    }

    /// Sample size actually held.
    pub fn sample_size(&self) -> usize {
        self.rows.len()
    }

    /// Evaluate `pred` over the sample, returning the posterior.
    pub fn posterior(&self, pred: &Expr) -> Result<SelectivityPosterior> {
        let bound = pred.bind(&self.schema)?;
        let matches = self.rows.iter().filter(|r| bound.eval_bool(r)).count();
        Ok(SelectivityPosterior { matches, sample_size: self.rows.len() })
    }

    /// Point estimate (posterior mean).
    pub fn selectivity(&self, pred: &Expr) -> Result<f64> {
        Ok(self.posterior(pred)?.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::rng::seeded;
    use rqp_common::{DataType, Value};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..10_000 {
            t.append(vec![Value::Int(i % 100)]);
        }
        t
    }

    #[test]
    fn sample_estimate_close_to_truth() {
        let t = table();
        let mut rng = seeded(11);
        let s = SamplingEstimator::build(&t, 1000, &mut rng);
        // true selectivity of k < 25 is 0.25
        let sel = s.selectivity(&col("t.k").lt(lit(25i64))).unwrap();
        assert!((sel - 0.25).abs() < 0.05, "got {sel}");
        assert_eq!(s.table_rows(), 10_000);
        assert_eq!(s.sample_size(), 1000);
    }

    #[test]
    fn posterior_quantiles_bracket_truth() {
        let t = table();
        let mut rng = seeded(5);
        let s = SamplingEstimator::build(&t, 500, &mut rng);
        let post = s.posterior(&col("k").lt(lit(50i64))).unwrap();
        let lo = post.quantile(0.05);
        let hi = post.quantile(0.95);
        assert!(lo < 0.5 && 0.5 < hi, "90% CI [{lo:.3}, {hi:.3}] should cover 0.5");
        assert!(lo < post.mean() && post.mean() < hi);
    }

    #[test]
    fn quantiles_monotone_and_bounded() {
        let post = SelectivityPosterior { matches: 3, sample_size: 100 };
        let q10 = post.quantile(0.1);
        let q50 = post.quantile(0.5);
        let q90 = post.quantile(0.9);
        assert!(q10 <= q50 && q50 <= q90);
        assert!(q10 >= 0.0 && q90 <= 1.0);
    }

    #[test]
    fn zero_and_full_matches() {
        let none = SelectivityPosterior { matches: 0, sample_size: 200 };
        assert!(none.mean() < 0.01);
        assert!(none.quantile(0.99) < 0.05);
        let all = SelectivityPosterior { matches: 200, sample_size: 200 };
        assert!(all.mean() > 0.99);
        assert!(all.quantile(0.01) > 0.95);
    }

    #[test]
    fn quadrature_spans_distribution() {
        let post = SelectivityPosterior { matches: 50, sample_size: 100 };
        let qs = post.quadrature(9);
        assert_eq!(qs.len(), 9);
        assert!(qs.windows(2).all(|w| w[0] <= w[1]));
        let mid = qs[4];
        assert!((mid - 0.5).abs() < 0.02);
    }

    #[test]
    fn normal_quantile_sane() {
        assert!((normal_quantile(0.5)).abs() < 1e-6);
        assert!((normal_quantile(0.975) - 1.96).abs() < 0.01);
        assert!((normal_quantile(0.025) + 1.96).abs() < 0.01);
    }

    #[test]
    fn sample_larger_than_table_clamps() {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..10 {
            t.append(vec![Value::Int(i)]);
        }
        let mut rng = seeded(1);
        let s = SamplingEstimator::build(&t, 1000, &mut rng);
        assert_eq!(s.sample_size(), 10);
        let sel = s.selectivity(&col("k").ge(lit(0i64))).unwrap();
        assert!(sel > 0.8);
    }
}
