//! # rqp-stats
//!
//! Statistics and cardinality estimation — the seminar's diagnosis is that
//! *"cardinality estimation is the Achilles' heel of most query optimizers"*;
//! this crate makes every estimation regime a first-class, swappable
//! component so experiments can inject, measure and correct estimation error:
//!
//! * [`histogram`] — equi-width and equi-depth histograms;
//! * [`sthist`] — **self-tuning histograms** (Aboulnaga & Chaudhuri, SIGMOD
//!   1999) refined by query feedback without scanning data;
//! * [`sample`] — sampling estimators with Beta-posterior uncertainty, the
//!   input to Babcock–Chaudhuri robust plan selection;
//! * [`maxent`] — **maximum-entropy consistent selectivity** (Markl et al.,
//!   VLDB J. 2007) combining overlapping multivariate knowledge without bias;
//! * [`qerror`] — the multiplicative **q-error** metric (Moerkotte, Neumann &
//!   Steidl, VLDB 2009);
//! * [`feedback`] — a **LEO-style feedback repository** (Stillger et al.,
//!   VLDB 2001) of observed actual/estimate adjustment factors;
//! * [`estimator`] — the [`estimator::CardEstimator`] trait plus concrete
//!   estimators: histogram+independence, oracle (true counts), *lying*
//!   (controlled error injection — the report's root cause, made a test
//!   input), feedback-corrected, and sampling.

#![warn(missing_docs)]

pub mod estimator;
pub mod feedback;
pub mod histogram;
pub mod maxent;
pub mod qerror;
pub mod sample;
pub mod sthist;

pub use estimator::{
    CardEstimator, ColumnStats, LyingEstimator, OracleEstimator, StatsEstimator, TableStats,
    TableStatsRegistry,
};
pub use feedback::{FeedbackEstimator, FeedbackRepo};
pub use histogram::{EquiDepthHistogram, EquiWidthHistogram, Histogram};
pub use maxent::MaxEntSolver;
pub use qerror::{q_error, QErrorSummary};
pub use sample::SamplingEstimator;
pub use sthist::SelfTuningHistogram;
