//! Distribution summaries and box plots.

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Geometric mean (requires positive values; 0 otherwise).
    pub geo_mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute from a sample (empty input → all-zero summary).
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary { n: 0, mean: 0.0, geo_mean: 0.0, std_dev: 0.0, min: 0.0, max: 0.0 };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let geo_mean = if xs.iter().all(|&x| x > 0.0) {
            (xs.iter().map(|x| x.ln()).sum::<f64>() / n).exp()
        } else {
            0.0
        };
        Summary {
            n: xs.len(),
            mean,
            geo_mean,
            std_dev: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Coefficient of variation (σ/μ); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// The `p`-quantile of a sample (linear interpolation).
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 1.0);
    let idx = p * (s.len() as f64 - 1.0);
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let w = idx - lo as f64;
        s[lo] * (1.0 - w) + s[hi] * w
    }
}

/// A five-number box plot with Tukey whiskers — the rendering of POP
/// Figure 1 ("the blue rectangles represent the mid-50% of the queries…
/// the red lines the range of the remaining outliers").
#[derive(Debug, Clone, PartialEq)]
pub struct BoxPlot {
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Lowest value above `q1 − 1.5·IQR`.
    pub whisker_lo: f64,
    /// Highest value below `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Values outside the whiskers.
    pub outliers: Vec<f64>,
}

impl BoxPlot {
    /// Compute from a sample.
    pub fn of(xs: &[f64]) -> BoxPlot {
        let q1 = quantile(xs, 0.25);
        let median = quantile(xs, 0.5);
        let q3 = quantile(xs, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = xs
            .iter()
            .copied()
            .filter(|&x| x >= lo_fence)
            .fold(f64::INFINITY, f64::min);
        let whisker_hi = xs
            .iter()
            .copied()
            .filter(|&x| x <= hi_fence)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut outliers: Vec<f64> = xs
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        outliers.sort_by(f64::total_cmp);
        BoxPlot { q1, median, q3, whisker_lo, whisker_hi, outliers }
    }

    /// One-line rendering: `lo ─[q1 │med│ q3]─ hi (k outliers up to max)`.
    pub fn render(&self) -> String {
        let tail = if self.outliers.is_empty() {
            String::new()
        } else {
            format!(
                " ({} outliers up to {:.1})",
                self.outliers.len(),
                self.outliers.last().expect("non-empty")
            )
        };
        format!(
            "{:.1} ─[{:.1} │{:.1}│ {:.1}]─ {:.1}{tail}",
            self.whisker_lo, self.q1, self.median, self.q3, self.whisker_hi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.min - 1.0).abs() < 1e-12);
        assert!((s.max - 4.0).abs() < 1e-12);
        assert!(s.cv() > 0.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.cv(), 0.0);
    }

    #[test]
    fn geo_mean_positive_only() {
        let s = Summary::of(&[1.0, 100.0]);
        assert!((s.geo_mean - 10.0).abs() < 1e-9);
        let z = Summary::of(&[0.0, 100.0]);
        assert_eq!(z.geo_mean, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn boxplot_identifies_outliers() {
        let mut xs: Vec<f64> = (0..20).map(|i| 10.0 + i as f64).collect();
        xs.push(1000.0);
        let b = BoxPlot::of(&xs);
        assert_eq!(b.outliers, vec![1000.0]);
        assert!(b.whisker_hi <= 29.0 + 1e-9);
        assert!(b.q1 < b.median && b.median < b.q3);
        let r = b.render();
        assert!(r.contains("outliers"), "{r}");
    }

    #[test]
    fn boxplot_without_outliers() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b = BoxPlot::of(&xs);
        assert!(b.outliers.is_empty());
        assert_eq!(b.whisker_lo, 0.0);
        assert_eq!(b.whisker_hi, 9.0);
    }
}
