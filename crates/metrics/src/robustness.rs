//! The seminar's robustness metrics, verbatim.
//!
//! From "Measuring the Robustness of Query Optimization: Towards a
//! Robustness Metric" (Sattler, Poess, Waas, Salem, Schoening, Paulley):
//!
//! * `P(q) = |O(q) − E(q)|` — performance of a query as the gap between
//!   measured (`E`) and optimal (`O`) execution time;
//! * `S(Q) = σ/μ` of the `P(qi)` over a parameterized query family —
//!   smoothness; robust systems have flat `P` curves;
//! * `C(Q) = (∏ |aᵢ−eᵢ|/aᵢ)^(1/n)` — geometric mean of relative cardinality
//!   errors at the top of each plan.
//!
//! From "Robust Query Optimization: Cardinality estimation for queries with
//! complex expressions" (Nica et al.):
//!
//! * `Metric1 = Σ_ops |est − act| / act` over the chosen plan's operators
//!   (and `Metric2` — the same sum over all enumerated plans' operators,
//!   which callers obtain by applying [`metric1`] to each plan's operator
//!   list and summing);
//! * `Metric3 = |RunTimeOpt − RunTimeBest| / RunTimeBest`.

/// `P(q) = |optimal − measured|`.
pub fn performance(optimal: f64, measured: f64) -> f64 {
    (optimal - measured).abs()
}

/// `S(Q)`: coefficient of variation of the per-query performance gaps.
///
/// Returns 0 for empty input or an all-zero gap vector (perfectly robust).
pub fn smoothness(performance_gaps: &[f64]) -> f64 {
    if performance_gaps.is_empty() {
        return 0.0;
    }
    let n = performance_gaps.len() as f64;
    let mean = performance_gaps.iter().sum::<f64>() / n;
    if mean.abs() < f64::MIN_POSITIVE {
        return 0.0;
    }
    let var = performance_gaps
        .iter()
        .map(|p| (p - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// `C(Q)`: geometric mean of relative top-level cardinality errors
/// `|a − e| / a` over a query set. Zero-error queries contribute a floor of
/// `1/a` (one row) so the geometric mean stays defined, mirroring the
/// q-error convention.
pub fn cardinality_error_geomean(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let log_sum: f64 = pairs
        .iter()
        .map(|&(est, act)| {
            let act = act.max(1.0);
            let rel = ((act - est).abs() / act).max(1.0 / act);
            rel.ln()
        })
        .sum();
    (log_sum / n).exp()
}

/// `Metric1`: sum over plan operators of `|est − act| / act` (actuals floored
/// at one row).
pub fn metric1(operators: &[(f64, f64)]) -> f64 {
    operators
        .iter()
        .map(|&(est, act)| (est - act).abs() / act.max(1.0))
        .sum()
}

/// `Metric3 = |RunTimeOpt − RunTimeBest| / RunTimeBest` where `RunTimeOpt`
/// is the best runtime among all enumerated plans and `RunTimeBest` the
/// runtime of the plan the optimizer chose.
pub fn metric3(runtime_opt: f64, runtime_best: f64) -> f64 {
    if runtime_best <= 0.0 {
        0.0
    } else {
        (runtime_opt - runtime_best).abs() / runtime_best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_gap() {
        assert_eq!(performance(100.0, 130.0), 30.0);
        assert_eq!(performance(130.0, 100.0), 30.0);
        assert_eq!(performance(5.0, 5.0), 0.0);
    }

    #[test]
    fn smoothness_flat_is_zero_variation() {
        assert_eq!(smoothness(&[10.0, 10.0, 10.0]), 0.0);
        assert_eq!(smoothness(&[]), 0.0);
        assert_eq!(smoothness(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn smoothness_detects_cliffs() {
        let smooth = smoothness(&[10.0, 11.0, 9.0, 10.0]);
        let cliff = smoothness(&[10.0, 10.0, 10.0, 500.0]);
        assert!(cliff > smooth * 5.0, "cliff {cliff} vs smooth {smooth}");
    }

    #[test]
    fn c_q_geometric_mean() {
        // errors 0.5 and 0.5 → geomean 0.5
        let c = cardinality_error_geomean(&[(50.0, 100.0), (150.0, 100.0)]);
        assert!((c - 0.5).abs() < 1e-9);
        // perfect estimates floor at 1/act
        let c = cardinality_error_geomean(&[(100.0, 100.0)]);
        assert!((c - 0.01).abs() < 1e-9);
        assert_eq!(cardinality_error_geomean(&[]), 0.0);
    }

    #[test]
    fn metric1_sums_relative_errors() {
        let m = metric1(&[(10.0, 100.0), (100.0, 100.0), (300.0, 100.0)]);
        assert!((m - (0.9 + 0.0 + 2.0)).abs() < 1e-9);
        // zero actuals floored
        let m = metric1(&[(5.0, 0.0)]);
        assert!((m - 5.0).abs() < 1e-9);
    }

    #[test]
    fn metric3_relative_gap() {
        assert_eq!(metric3(100.0, 100.0), 0.0);
        assert!((metric3(100.0, 150.0) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(metric3(1.0, 0.0), 0.0);
    }
}
