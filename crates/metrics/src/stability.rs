//! Plan stability accounting.
//!
//! The report's motivating anecdote: "insertion of a few new rows … triggers
//! an automatic update of statistics, which uses a different sample …, which
//! leads to an entirely different query execution plan, which might actually
//! perform much worse". [`PlanStability`] tracks a sequence of (plan
//! fingerprint, cost) observations per query across statistics refreshes and
//! reports flip counts and the regression distribution — experiment E21's
//! bookkeeping.

use std::collections::BTreeSet;

/// One observation of a query after some event (e.g. a stats refresh).
#[derive(Debug, Clone)]
pub struct PlanObservation {
    /// Plan identity.
    pub fingerprint: String,
    /// Execution cost observed.
    pub cost: f64,
}

/// Stability accounting over a sequence of observations of the same query.
#[derive(Debug, Clone, Default)]
pub struct PlanStability {
    observations: Vec<PlanObservation>,
}

impl PlanStability {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the plan and cost after the next event.
    pub fn record(&mut self, fingerprint: impl Into<String>, cost: f64) {
        self.observations.push(PlanObservation { fingerprint: fingerprint.into(), cost });
    }

    /// Number of events observed.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Number of adjacent plan changes.
    pub fn flips(&self) -> usize {
        self.observations
            .windows(2)
            .filter(|w| w[0].fingerprint != w[1].fingerprint)
            .count()
    }

    /// Number of distinct plans seen.
    pub fn distinct_plans(&self) -> usize {
        self.observations
            .iter()
            .map(|o| o.fingerprint.as_str())
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Cost ratios across adjacent flips (`after / before`); values ≫ 1 are
    /// the "automatic disasters".
    pub fn flip_regressions(&self) -> Vec<f64> {
        self.observations
            .windows(2)
            .filter(|w| w[0].fingerprint != w[1].fingerprint && w[0].cost > 0.0)
            .map(|w| w[1].cost / w[0].cost)
            .collect()
    }

    /// The worst flip regression (1.0 if no flips).
    pub fn worst_regression(&self) -> f64 {
        self.flip_regressions().into_iter().fold(1.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_sequence_has_no_flips() {
        let mut s = PlanStability::new();
        for _ in 0..5 {
            s.record("hj(a,b)", 100.0);
        }
        assert_eq!(s.flips(), 0);
        assert_eq!(s.distinct_plans(), 1);
        assert_eq!(s.worst_regression(), 1.0);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn flips_and_regressions_counted() {
        let mut s = PlanStability::new();
        s.record("a", 100.0);
        s.record("b", 400.0); // disaster: 4×
        s.record("b", 390.0);
        s.record("a", 100.0); // recovery flip: 0.26×
        assert_eq!(s.flips(), 2);
        assert_eq!(s.distinct_plans(), 2);
        let reg = s.flip_regressions();
        assert_eq!(reg.len(), 2);
        assert!((s.worst_regression() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tracker() {
        let s = PlanStability::new();
        assert!(s.is_empty());
        assert_eq!(s.flips(), 0);
        assert_eq!(s.distinct_plans(), 0);
        assert_eq!(s.worst_regression(), 1.0);
    }
}
