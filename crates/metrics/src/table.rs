//! Plain-text report tables for the experiment harness.

use std::fmt;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| (*s).to_owned()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity must match header");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable values.
    pub fn rowd(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i].saturating_sub(c.chars().count());
                write!(f, " {}{} |", c, " ".repeat(pad))?;
            }
            writeln!(f)
        };
        let sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        sep(f)?;
        write_row(f, &self.header)?;
        sep(f)?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        sep(f)
    }
}

/// Format a float compactly for reports.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 10_000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else if x.fract() == 0.0 && x.abs() < 1e9 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.contains("| alpha | 1     |"), "{s}");
        assert!(s.contains("| b     | 12345 |"), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn rowd_accepts_display_values() {
        let mut t = Table::new(&["x", "y"]);
        t.rowd(&[&42, &1.5]);
        assert!(t.to_string().contains("42"));
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(42.0), "42");
        assert_eq!(fnum(5.67891), "5.68");
        assert!(fnum(123456.0).contains('e'));
        assert!(fnum(0.0001).contains('e'));
    }
}
