//! # rqp-metrics
//!
//! The robustness metrics defined by the Dagstuhl 10381 break-out sessions,
//! implemented exactly as specified so experiments report the seminar's own
//! numbers:
//!
//! * [`summary`] — distribution summaries: quantiles, box plots (POP Figure
//!   1's rendering), mean/geometric mean, coefficient of variation;
//! * [`robustness`] — Sattler et al.'s **performance** `P(q) = |O(q) −
//!   E(q)|`, **smoothness** `S(Q)` (coefficient of variation over a query
//!   family), the **cardinality-error geometric mean** `C(Q)`, and Nica et
//!   al.'s **Metric1/Metric2** (per-operator estimation error sums) and
//!   **Metric3** (`|RunTimeOpt − RunTimeBest| / RunTimeBest`);
//! * [`variability`] — the end-to-end benchmark's split of **intrinsic**
//!   variability (the ideal plan's cost genuinely changes with the
//!   environment) from **extrinsic** variability (the system's divergence
//!   from the ideal plan) — only the latter counts against robustness;
//! * [`stability`] — plan-flip counting and regression accounting for the
//!   statistics-refresh ("automatic disaster") experiment;
//! * [`contour`] — ASCII cost-surface heat maps and sparklines ("Visualizing
//!   the robustness of query execution", Graefe/Kuno/Wiener CIDR 2009): the
//!   cliffs and plateaus robustness problems are made of, as pictures;
//! * [`table`] — plain-text table rendering for experiment reports.

#![warn(missing_docs)]

pub mod contour;
pub mod robustness;
pub mod stability;
pub mod summary;
pub mod table;
pub mod variability;

pub use contour::{sparkline, CostContour};
pub use robustness::{
    cardinality_error_geomean, metric1, metric3, performance, smoothness,
};
pub use stability::PlanStability;
pub use summary::{BoxPlot, Summary};
pub use table::Table as ReportTable;
pub use variability::VariabilityReport;
