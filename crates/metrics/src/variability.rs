//! Intrinsic vs extrinsic variability (Agrawal, Ailamaki, Bruno,
//! Giakoumakis, Haritsa, Idreos, Lehner, Polyzotis — "Measuring end to end
//! robustness for Query Processors").
//!
//! Given a query executed across a set of environments:
//!
//! * **intrinsic variability** is the variation of the *ideal* plan's cost —
//!   "the true complexity of the query in the new environment"; any system
//!   must pay it;
//! * **extrinsic variability** "stems from the inability of the system to
//!   model and adapt to changes" — the divergence between the cost of the
//!   plan the system actually ran and the ideal plan's cost, per
//!   environment. Robustness should only measure this.

use crate::summary::Summary;

/// Per-environment observation: the cost of the system's chosen plan and the
/// cost of the ideal plan for that environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvObservation {
    /// Label-free environment index.
    pub env: usize,
    /// Cost of the plan the system executed.
    pub chosen_cost: f64,
    /// Cost of the environment's ideal plan.
    pub ideal_cost: f64,
}

/// The decomposition.
#[derive(Debug, Clone)]
pub struct VariabilityReport {
    /// Observations, by environment.
    pub observations: Vec<EnvObservation>,
}

impl VariabilityReport {
    /// Build from `(chosen_cost, ideal_cost)` pairs in environment order.
    pub fn from_costs(pairs: &[(f64, f64)]) -> Self {
        VariabilityReport {
            observations: pairs
                .iter()
                .enumerate()
                .map(|(env, &(chosen_cost, ideal_cost))| EnvObservation {
                    env,
                    chosen_cost,
                    ideal_cost,
                })
                .collect(),
        }
    }

    /// Intrinsic variability: coefficient of variation of the ideal costs
    /// across environments.
    pub fn intrinsic(&self) -> f64 {
        Summary::of(
            &self
                .observations
                .iter()
                .map(|o| o.ideal_cost)
                .collect::<Vec<_>>(),
        )
        .cv()
    }

    /// Per-environment divergence `chosen / ideal` (≥ 1 when ideal is truly
    /// optimal).
    pub fn divergences(&self) -> Vec<f64> {
        self.observations
            .iter()
            .map(|o| {
                if o.ideal_cost <= 0.0 {
                    1.0
                } else {
                    o.chosen_cost / o.ideal_cost
                }
            })
            .collect()
    }

    /// Extrinsic variability: the mean divergence minus one (0 = the system
    /// tracked the ideal plan in every environment).
    pub fn extrinsic(&self) -> f64 {
        let d = self.divergences();
        if d.is_empty() {
            0.0
        } else {
            (d.iter().sum::<f64>() / d.len() as f64 - 1.0).max(0.0)
        }
    }

    /// Worst-environment divergence.
    pub fn worst_divergence(&self) -> f64 {
        self.divergences().into_iter().fold(1.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_adaptive_system_has_zero_extrinsic() {
        // Ideal cost varies 10× across environments (intrinsic), but the
        // system always matches it.
        let r = VariabilityReport::from_costs(&[(10.0, 10.0), (50.0, 50.0), (100.0, 100.0)]);
        assert!(r.intrinsic() > 0.3, "environments genuinely differ");
        assert_eq!(r.extrinsic(), 0.0);
        assert_eq!(r.worst_divergence(), 1.0);
    }

    #[test]
    fn rigid_system_shows_extrinsic_variability() {
        // Same intrinsic profile, but the system's static plan pays 1×, 3×,
        // 8× the ideal.
        let r = VariabilityReport::from_costs(&[(10.0, 10.0), (150.0, 50.0), (800.0, 100.0)]);
        assert!(r.extrinsic() > 2.0);
        assert!((r.worst_divergence() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn intrinsic_zero_when_environments_identical() {
        let r = VariabilityReport::from_costs(&[(12.0, 10.0), (11.0, 10.0)]);
        assert_eq!(r.intrinsic(), 0.0);
        assert!(r.extrinsic() > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let r = VariabilityReport::from_costs(&[]);
        assert_eq!(r.extrinsic(), 0.0);
        assert_eq!(r.worst_divergence(), 1.0);
        let r = VariabilityReport::from_costs(&[(5.0, 0.0)]);
        assert_eq!(r.divergences(), vec![1.0]);
    }
}
