//! Visualizing robustness (after Graefe, Kuno & Wiener, "Visualizing the
//! robustness of query execution", CIDR 2009 — seminar reading list).
//!
//! The paper's device: render performance over a parameter space as a
//! contour/heat map, because robustness problems are *shapes* — cliffs,
//! ridges, plateaus — that summary statistics hide. [`CostContour`] renders
//! a grid of costs as an ASCII heat map with logarithmic shading, plus a 1-D
//! [`sparkline`] for parameter sweeps (the E07 visual).

/// Shading ramp from cheap to expensive.
const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// A 2-D cost surface renderer.
#[derive(Debug, Clone)]
pub struct CostContour {
    /// `costs[y][x]`, rendered with y increasing upward.
    pub costs: Vec<Vec<f64>>,
}

impl CostContour {
    /// Wrap a cost grid (rows may not be empty).
    pub fn new(costs: Vec<Vec<f64>>) -> Self {
        assert!(
            !costs.is_empty() && costs.iter().all(|r| !r.is_empty()),
            "contour needs a non-empty grid"
        );
        CostContour { costs }
    }

    fn bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &self.costs {
            for &c in row {
                if c.is_finite() {
                    lo = lo.min(c);
                    hi = hi.max(c);
                }
            }
        }
        (lo.max(1e-12), hi.max(1e-12))
    }

    /// Shade one value on the log scale between the grid's min and max.
    fn shade(&self, v: f64) -> char {
        let (lo, hi) = self.bounds();
        if !v.is_finite() {
            return '?';
        }
        if hi <= lo {
            return RAMP[0];
        }
        let t = ((v.max(1e-12).ln() - lo.ln()) / (hi.ln() - lo.ln())).clamp(0.0, 1.0);
        RAMP[((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)]
    }

    /// Render the heat map (origin bottom-left), one character per cell,
    /// with a legend line.
    pub fn render(&self) -> String {
        let (lo, hi) = self.bounds();
        let mut out = String::new();
        for row in self.costs.iter().rev() {
            for &c in row {
                out.push(self.shade(c));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "legend: '{}' ≈ {:.1} … '{}' ≈ {:.1} (log scale)\n",
            RAMP[0],
            lo,
            RAMP[RAMP.len() - 1],
            hi
        ));
        out
    }

    /// The largest cost ratio between any two horizontally or vertically
    /// adjacent cells — a numeric "cliff detector" to pair with the picture.
    pub fn max_cliff(&self) -> f64 {
        let mut worst = 1.0f64;
        let h = self.costs.len();
        for y in 0..h {
            let w = self.costs[y].len();
            for x in 0..w {
                let c = self.costs[y][x].max(1e-12);
                if x + 1 < w {
                    let r = self.costs[y][x + 1].max(1e-12);
                    worst = worst.max((c / r).max(r / c));
                }
                if y + 1 < h && x < self.costs[y + 1].len() {
                    let d = self.costs[y + 1][x].max(1e-12);
                    worst = worst.max((c / d).max(d / c));
                }
            }
        }
        worst
    }
}

/// One-line sparkline for a 1-D sweep (log-shaded like the contour).
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let c = CostContour::new(vec![values.to_vec()]);
    values.iter().map(|&v| c.shade(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_surface_renders_uniform() {
        let c = CostContour::new(vec![vec![5.0; 4]; 3]);
        let r = c.render();
        let first_line = r.lines().next().unwrap();
        assert_eq!(first_line, "    ", "flat = lightest shade");
        assert!((c.max_cliff() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cliff_is_visible_and_measured() {
        // Left half cheap, right half 100× — the index-past-crossover shape.
        let grid: Vec<Vec<f64>> = (0..4)
            .map(|_| vec![10.0, 10.0, 1000.0, 1000.0])
            .collect();
        let c = CostContour::new(grid);
        let r = c.render();
        let line = r.lines().next().unwrap();
        assert!(line.starts_with("  "), "cheap side light: {line:?}");
        assert!(line.ends_with("@@"), "expensive side dark: {line:?}");
        assert!((c.max_cliff() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn origin_is_bottom_left() {
        // costs[0] is the bottom row; it must be rendered last.
        let c = CostContour::new(vec![vec![1.0], vec![1000.0]]);
        let rendered = c.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "@", "top row = costs[1]");
        assert_eq!(lines[1], " ", "bottom row = costs[0]");
    }

    #[test]
    fn sparkline_shapes() {
        let s = sparkline(&[1.0, 10.0, 100.0, 1000.0]);
        assert_eq!(s.chars().count(), 4);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[3], '@');
        assert!(sparkline(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty grid")]
    fn empty_grid_rejected() {
        CostContour::new(vec![]);
    }

    #[test]
    fn handles_non_finite_cells() {
        let c = CostContour::new(vec![vec![1.0, f64::INFINITY, 10.0]]);
        assert!(c.render().contains('?'));
    }
}
