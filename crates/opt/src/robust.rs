//! Robust plan selection (Babcock & Chaudhuri, SIGMOD 2005).
//!
//! Instead of costing plans at a single point estimate, the robust optimizer
//! costs every candidate across a set of *selectivity scenarios* (e.g. drawn
//! from a sampling posterior, or q-error-scaled perturbations) and chooses by
//! a conservative statistic: a high percentile of the cost distribution, or
//! its mean (least expected cost, Chu–Halpern–Seshadri). The "robustness
//! knob" is the percentile: 50% ≈ classic optimization, 90% buys insurance
//! against the estimate being wrong.

use crate::physical::PhysicalPlan;
use crate::planner::{plan as plan_query, PlannerConfig};
use crate::query::QuerySpec;
use crate::CostModel;
use rqp_common::{Result, RqpError};
use rqp_stats::{CardEstimator, LyingEstimator};
use rqp_storage::Catalog;

/// How to collapse a candidate's per-scenario cost vector into one score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RobustMode {
    /// Classic: cost under the first scenario only (the point estimate).
    Point,
    /// `p`-th percentile of the scenario costs, `p ∈ (0, 1]`.
    Percentile(f64),
    /// Mean scenario cost (least expected cost).
    LeastExpectedCost,
}

/// The outcome of robust plan selection.
pub struct RobustChoice {
    /// The chosen plan.
    pub plan: PhysicalPlan,
    /// Fingerprint of the plan classic point optimization would pick.
    pub point_fingerprint: String,
    /// Number of distinct candidate plans considered.
    pub candidate_count: usize,
    /// The chosen plan's cost under every scenario.
    pub scenario_costs: Vec<f64>,
    /// The point-optimal plan's cost under every scenario (for comparison).
    pub point_scenario_costs: Vec<f64>,
}

impl RobustChoice {
    /// Did the robust choice differ from the classic one?
    pub fn diverged(&self) -> bool {
        self.plan.fingerprint() != self.point_fingerprint
    }
}

/// Pick a plan for `spec` robustly across `scenarios`.
///
/// `scenarios[0]` is treated as the point estimate. Candidates are the
/// optimal plans under each scenario (deduplicated by fingerprint); each is
/// re-costed under every scenario via [`PhysicalPlan::reestimate`].
pub fn robust_plan(
    spec: &QuerySpec,
    catalog: &Catalog,
    scenarios: &[Box<dyn CardEstimator>],
    cfg: PlannerConfig,
    mode: RobustMode,
) -> Result<RobustChoice> {
    if scenarios.is_empty() {
        return Err(RqpError::Planning("robust_plan needs at least one scenario".into()));
    }
    if let RobustMode::Percentile(p) = mode {
        if !(0.0..=1.0).contains(&p) {
            return Err(RqpError::Invalid(format!("percentile {p} out of (0,1]")));
        }
    }
    let cm = CostModel { memory_rows: cfg.memory_rows, ..CostModel::default() };

    // Candidate generation: optimal plan per scenario.
    let mut candidates: Vec<PhysicalPlan> = Vec::new();
    for est in scenarios {
        let p = plan_query(spec, catalog, est.as_ref(), cfg)?;
        if !candidates.iter().any(|c| c.fingerprint() == p.fingerprint()) {
            candidates.push(p);
        }
    }
    let point_fingerprint = {
        let p = plan_query(spec, catalog, scenarios[0].as_ref(), cfg)?;
        p.fingerprint()
    };

    // Cost matrix: candidate × scenario.
    let costs: Vec<Vec<f64>> = candidates
        .iter()
        .map(|c| {
            scenarios
                .iter()
                .map(|e| c.reestimate(e.as_ref(), &cm).1)
                .collect()
        })
        .collect();

    let score = |v: &[f64]| -> f64 {
        match mode {
            RobustMode::Point => v[0],
            RobustMode::LeastExpectedCost => v.iter().sum::<f64>() / v.len() as f64,
            RobustMode::Percentile(p) => {
                let mut s = v.to_vec();
                s.sort_by(f64::total_cmp);
                let idx = ((p * (s.len() as f64 - 1.0)).round() as usize).min(s.len() - 1);
                s[idx]
            }
        }
    };

    let best_idx = (0..candidates.len())
        .min_by(|&a, &b| score(&costs[a]).total_cmp(&score(&costs[b])))
        .expect("candidates non-empty");
    let point_idx = candidates
        .iter()
        .position(|c| c.fingerprint() == point_fingerprint)
        .unwrap_or(0);

    Ok(RobustChoice {
        plan: candidates[best_idx].clone(),
        point_fingerprint,
        candidate_count: candidates.len(),
        scenario_costs: costs[best_idx].clone(),
        point_scenario_costs: costs[point_idx].clone(),
    })
}

/// Build scenario estimators by scaling one table's selectivity by each
/// factor (factor 1.0 first = the point estimate).
pub fn scaled_scenarios<E>(
    base: E,
    table: &str,
    factors: &[f64],
) -> Vec<Box<dyn CardEstimator>>
where
    E: CardEstimator + Clone + 'static,
{
    factors
        .iter()
        .map(|&f| {
            Box::new(LyingEstimator::new(Box::new(base.clone())).with_table_factor(table, f))
                as Box<dyn CardEstimator>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Schema, Value};
    use rqp_stats::{StatsEstimator, TableStatsRegistry};
    use rqp_storage::Table;
    use std::rc::Rc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("g", DataType::Int)]);
        let mut big = Table::new("big", schema.clone());
        for i in 0..20_000i64 {
            big.append(vec![Value::Int(i), Value::Int(i % 100)]);
        }
        c.add_table(big);
        let mut small = Table::new("small", schema);
        for i in 0..100i64 {
            small.append(vec![Value::Int(i), Value::Int(i)]);
        }
        c.add_table(small);
        c.create_index("ix_big_k", "big", "k").unwrap();
        c.create_index("ix_small_g", "small", "g").unwrap();
        c
    }

    fn est(c: &Catalog) -> StatsEstimator {
        StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(c, 32)))
    }

    fn spec() -> QuerySpec {
        QuerySpec::new()
            .join("big", "g", "small", "g")
            .filter("big", col("big.k").lt(lit(200i64)))
    }

    #[test]
    fn point_mode_matches_classic_planner() {
        let c = catalog();
        let scenarios = scaled_scenarios(est(&c), "big", &[1.0, 10.0, 100.0]);
        let choice =
            robust_plan(&spec(), &c, &scenarios, PlannerConfig::default(), RobustMode::Point)
                .unwrap();
        assert_eq!(choice.plan.fingerprint(), choice.point_fingerprint);
        assert!(!choice.diverged());
        assert_eq!(choice.scenario_costs.len(), 3);
    }

    #[test]
    fn percentile_mode_limits_worst_case() {
        let c = catalog();
        // Scenarios: estimate might be 1×, 20×, or 100× the point value.
        let scenarios = scaled_scenarios(est(&c), "big", &[1.0, 20.0, 100.0]);
        let robust = robust_plan(
            &spec(),
            &c,
            &scenarios,
            PlannerConfig::default(),
            RobustMode::Percentile(0.9),
        )
        .unwrap();
        // The robust plan's worst scenario cost must be ≤ the point plan's.
        let worst_robust = robust
            .scenario_costs
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let worst_point = robust
            .point_scenario_costs
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            worst_robust <= worst_point + 1e-9,
            "robust {worst_robust} vs point {worst_point}"
        );
        assert!(robust.candidate_count >= 1);
    }

    #[test]
    fn least_expected_cost_mode() {
        let c = catalog();
        let scenarios = scaled_scenarios(est(&c), "big", &[1.0, 50.0]);
        let choice = robust_plan(
            &spec(),
            &c,
            &scenarios,
            PlannerConfig::default(),
            RobustMode::LeastExpectedCost,
        )
        .unwrap();
        let mean_choice: f64 =
            choice.scenario_costs.iter().sum::<f64>() / choice.scenario_costs.len() as f64;
        let mean_point: f64 = choice.point_scenario_costs.iter().sum::<f64>()
            / choice.point_scenario_costs.len() as f64;
        assert!(mean_choice <= mean_point + 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        let c = catalog();
        assert!(robust_plan(
            &spec(),
            &c,
            &[],
            PlannerConfig::default(),
            RobustMode::Point
        )
        .is_err());
        let scenarios = scaled_scenarios(est(&c), "big", &[1.0]);
        assert!(robust_plan(
            &spec(),
            &c,
            &scenarios,
            PlannerConfig::default(),
            RobustMode::Percentile(1.5)
        )
        .is_err());
    }
}
