//! Physical plan trees.
//!
//! A [`PhysicalPlan`] carries, per node, the estimated output rows and
//! cumulative cost it was planned with. Three capabilities matter to the
//! robustness experiments:
//!
//! * [`PhysicalPlan::fingerprint`] — a structure-only identity (used to
//!   color plan diagrams and detect plan flips);
//! * [`PhysicalPlan::reestimate`] — re-derive rows/cost for the *same* plan
//!   shape under a *different* estimator (robust costing, plan diagrams,
//!   validity ranges all need to ask "what would this plan cost if the
//!   selectivities were X?");
//! * [`PhysicalPlan::build`] — compile to `rqp-exec` operators. Every
//!   operator carries a telemetry span, so actual cardinalities are
//!   observable (POP, LEO) through the per-node [`NodeMeter`]s without any
//!   wrapper layer.

use crate::cost::CostModel;
use crate::query::JoinEdge;
use rqp_common::{batch_enabled, Expr, Result, RqpError, Value};
use rqp_exec::{
    AggSpec, BatchFilterOp, BatchRowsOp, BatchScanOp, BoxBatchOp, BoxOp, CheckOp, ExecContext,
    FilterOp, GJoinOp, HashAggOp, HashJoinOp, IndexNlJoinOp, IndexScanOp, MergeJoinOp, PopSignal,
    ProjectOp, SortOp, SpanHandle, TableScanOp, TopNOp,
};
use rqp_stats::CardEstimator;
use rqp_storage::{Catalog, Table};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A physical plan node (with estimates attached).
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Sequential scan + optional filter.
    TableScan {
        /// Table name.
        table: String,
        /// Full local predicate applied at this node.
        filter: Option<Expr>,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
    /// Index range scan + residual filter.
    IndexScan {
        /// Table name.
        table: String,
        /// Index name in the catalog.
        index: String,
        /// Indexed column (unqualified).
        column: String,
        /// Inclusive lower bound.
        lo: Option<Value>,
        /// Inclusive upper bound.
        hi: Option<Value>,
        /// The predicate answered by the index range (for re-estimation).
        range_filter: Expr,
        /// Residual predicate applied after the index.
        residual: Option<Expr>,
        /// Estimated output rows (after residual).
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
    /// Composite-index scan: equality prefix + range on the next column.
    MultiIndexScan {
        /// Table name.
        table: String,
        /// Composite index name.
        index: String,
        /// Equality values for the leading indexed columns.
        prefix: Vec<Value>,
        /// Inclusive lower bound on the column after the prefix.
        lo: Option<Value>,
        /// Inclusive upper bound.
        hi: Option<Value>,
        /// The predicate the index answers (for re-estimation).
        range_filter: Expr,
        /// Residual predicate applied after the index.
        residual: Option<Expr>,
        /// Estimated output rows (after residual).
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
    /// Hash join (right child is the build side).
    HashJoin {
        /// Probe side.
        left: Box<PhysicalPlan>,
        /// Build side.
        right: Box<PhysicalPlan>,
        /// Join edges, oriented left→right.
        edges: Vec<JoinEdge>,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
    /// Sort-merge join (children sorted on demand).
    MergeJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join edges, oriented left→right.
        edges: Vec<JoinEdge>,
        /// Sort the left input first.
        sort_left: bool,
        /// Sort the right input first.
        sort_right: bool,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
    /// Generalized join (g-join).
    GJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join edges, oriented left→right.
        edges: Vec<JoinEdge>,
        /// Left input arrives sorted on the key.
        left_sorted: bool,
        /// Right input arrives sorted on the key.
        right_sorted: bool,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
    /// Index-nested-loop join into a base table.
    IndexNlJoin {
        /// Outer input.
        outer: Box<PhysicalPlan>,
        /// Inner table name.
        inner_table: String,
        /// Inner index name.
        inner_index: String,
        /// Edge oriented outer→inner.
        edge: JoinEdge,
        /// Inner local predicate applied as residual after the probe.
        inner_residual: Option<Expr>,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
    /// POP checkpoint (materializes, compares against the validity range).
    Check {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Checkpoint id.
        id: usize,
        /// Validity range on actual cardinality.
        validity: (f64, f64),
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Group-by columns (qualified).
        group_by: Vec<String>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
    /// Sort (ascending).
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort columns (qualified).
        keys: Vec<String>,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
    /// Top-N (ascending by keys).
    TopN {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort columns (qualified).
        keys: Vec<String>,
        /// Row limit.
        n: usize,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
    /// Column projection.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Output columns (qualified).
        columns: Vec<String>,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost.
        est_cost: f64,
    },
}

impl PhysicalPlan {
    /// Estimated output rows of this node.
    pub fn est_rows(&self) -> f64 {
        use PhysicalPlan::*;
        match self {
            TableScan { est_rows, .. }
            | IndexScan { est_rows, .. }
            | MultiIndexScan { est_rows, .. }
            | HashJoin { est_rows, .. }
            | MergeJoin { est_rows, .. }
            | GJoin { est_rows, .. }
            | IndexNlJoin { est_rows, .. }
            | Check { est_rows, .. }
            | Aggregate { est_rows, .. }
            | Sort { est_rows, .. }
            | TopN { est_rows, .. }
            | Project { est_rows, .. } => *est_rows,
        }
    }

    /// Estimated cumulative cost of this node.
    pub fn est_cost(&self) -> f64 {
        use PhysicalPlan::*;
        match self {
            TableScan { est_cost, .. }
            | IndexScan { est_cost, .. }
            | MultiIndexScan { est_cost, .. }
            | HashJoin { est_cost, .. }
            | MergeJoin { est_cost, .. }
            | GJoin { est_cost, .. }
            | IndexNlJoin { est_cost, .. }
            | Check { est_cost, .. }
            | Aggregate { est_cost, .. }
            | Sort { est_cost, .. }
            | TopN { est_cost, .. }
            | Project { est_cost, .. } => *est_cost,
        }
    }

    /// Structure-only identity: same fingerprint ⇔ same operators, same
    /// shape, same access paths (estimates excluded). Used to color plan
    /// diagrams and count plan flips.
    pub fn fingerprint(&self) -> String {
        use PhysicalPlan::*;
        match self {
            TableScan { table, .. } => format!("scan({table})"),
            IndexScan { table, index, .. } => format!("ixscan({table}:{index})"),
            MultiIndexScan { table, index, .. } => format!("mixscan({table}:{index})"),
            HashJoin { left, right, .. } => {
                format!("hj({},{})", left.fingerprint(), right.fingerprint())
            }
            MergeJoin { left, right, .. } => {
                format!("mj({},{})", left.fingerprint(), right.fingerprint())
            }
            GJoin { left, right, .. } => {
                format!("gj({},{})", left.fingerprint(), right.fingerprint())
            }
            IndexNlJoin { outer, inner_table, inner_index, .. } => {
                format!("inl({},{inner_table}:{inner_index})", outer.fingerprint())
            }
            Check { input, .. } => format!("check({})", input.fingerprint()),
            Aggregate { input, .. } => format!("agg({})", input.fingerprint()),
            Sort { input, .. } => format!("sort({})", input.fingerprint()),
            TopN { input, n, .. } => format!("top{n}({})", input.fingerprint()),
            Project { input, .. } => format!("proj({})", input.fingerprint()),
        }
    }

    /// Tables covered by this subtree, sorted.
    pub fn tables(&self) -> Vec<String> {
        use PhysicalPlan::*;
        let mut out = match self {
            TableScan { table, .. }
            | IndexScan { table, .. }
            | MultiIndexScan { table, .. } => vec![table.clone()],
            HashJoin { left, right, .. }
            | MergeJoin { left, right, .. }
            | GJoin { left, right, .. } => {
                let mut v = left.tables();
                v.extend(right.tables());
                v
            }
            IndexNlJoin { outer, inner_table, .. } => {
                let mut v = outer.tables();
                v.push(inner_table.clone());
                v
            }
            Check { input, .. }
            | Aggregate { input, .. }
            | Sort { input, .. }
            | TopN { input, .. }
            | Project { input, .. } => input.tables(),
        };
        out.sort();
        out
    }

    /// Re-derive `(rows, cumulative_cost)` for this plan shape under a
    /// different estimator (and cost model). The plan's stored estimates are
    /// untouched; a fresh annotated copy is returned alongside.
    pub fn reestimate(&self, est: &dyn CardEstimator, cm: &CostModel) -> (f64, f64) {
        use PhysicalPlan::*;
        match self {
            TableScan { table, filter, .. } => {
                let base = est.table_rows(table);
                let rows = match filter {
                    Some(f) => base * est.selectivity(table, f),
                    None => base,
                };
                let mut cost = cm.scan(base);
                if filter.is_some() {
                    cost += cm.filter(base);
                }
                (rows, cost)
            }
            IndexScan { table, range_filter, residual, .. } => {
                let base = est.table_rows(table);
                let matched = base * est.selectivity(table, range_filter);
                let rows = match residual {
                    Some(r) => matched * est.selectivity(table, r),
                    None => matched,
                };
                // Clustered-ness must come from the plan-time catalog; the
                // conservative (unclustered) assumption is used here since
                // reestimation has no catalog. Planner-built nodes embed the
                // distinction in est_cost; reestimate is used for *relative*
                // comparisons across scenarios where the same assumption
                // applies to every candidate.
                let mut cost = cm.index_scan(base, matched, false);
                if residual.is_some() {
                    cost += cm.filter(matched);
                }
                (rows, cost)
            }
            MultiIndexScan { table, range_filter, residual, .. } => {
                let base = est.table_rows(table);
                let matched = base * est.selectivity(table, range_filter);
                let rows = match residual {
                    Some(r) => matched * est.selectivity(table, r),
                    None => matched,
                };
                let mut cost = cm.index_scan(base, matched, false);
                if residual.is_some() {
                    cost += cm.filter(matched);
                }
                (rows, cost)
            }
            HashJoin { left, right, edges, .. } => {
                let (lr, lc) = left.reestimate(est, cm);
                let (rr, rc) = right.reestimate(est, cm);
                let rows = join_rows(lr, rr, edges, est);
                (rows, lc + rc + cm.hash_join(rr, lr, rows))
            }
            MergeJoin { left, right, edges, sort_left, sort_right, .. } => {
                let (lr, lc) = left.reestimate(est, cm);
                let (rr, rc) = right.reestimate(est, cm);
                let rows = join_rows(lr, rr, edges, est);
                let mut cost = lc + rc + cm.merge_join(lr, rr, rows);
                if *sort_left {
                    cost += cm.sort(lr);
                }
                if *sort_right {
                    cost += cm.sort(rr);
                }
                (rows, cost)
            }
            GJoin { left, right, edges, left_sorted, right_sorted, .. } => {
                let (lr, lc) = left.reestimate(est, cm);
                let (rr, rc) = right.reestimate(est, cm);
                let rows = join_rows(lr, rr, edges, est);
                (rows, lc + rc + cm.g_join(lr, rr, rows, *left_sorted, *right_sorted))
            }
            IndexNlJoin { outer, inner_table, edge, inner_residual, .. } => {
                let (or, oc) = outer.reestimate(est, cm);
                let inner_rows = est.table_rows(inner_table);
                let js = est.join_selectivity(
                    &edge.left_table,
                    &edge.left_col,
                    &edge.right_table,
                    &edge.right_col,
                );
                let matches_total = or * inner_rows * js;
                let rows = match inner_residual {
                    Some(p) => matches_total * est.selectivity(inner_table, p),
                    None => matches_total,
                };
                let mut cost = oc + cm.index_nl_join(or, inner_rows, matches_total, false);
                if inner_residual.is_some() {
                    cost += cm.filter(matches_total);
                }
                (rows, cost)
            }
            Check { input, .. } => {
                let (r, c) = input.reestimate(est, cm);
                (r, c + cm.materialize(r))
            }
            Aggregate { input, group_by, .. } => {
                let (r, c) = input.reestimate(est, cm);
                let groups = if group_by.is_empty() { 1.0 } else { r.sqrt().max(1.0) };
                (groups, c + cm.hash_agg(r, groups))
            }
            Sort { input, .. } => {
                let (r, c) = input.reestimate(est, cm);
                (r, c + cm.sort(r))
            }
            TopN { input, n, .. } => {
                let (r, c) = input.reestimate(est, cm);
                ((*n as f64).min(r), c + cm.top_n(r, *n as f64))
            }
            Project { input, .. } => {
                let (r, c) = input.reestimate(est, cm);
                (r, c + cm.materialize(r))
            }
        }
    }

    /// Compile to executable operators, metering every node.
    pub fn build(
        &self,
        catalog: &Catalog,
        ctx: &ExecContext,
        signal: Option<Rc<PopSignal>>,
    ) -> Result<BuiltPlan> {
        let mut meters = Vec::new();
        let root = self.build_node(catalog, ctx, &signal, &mut meters)?;
        Ok(BuiltPlan { root, meters })
    }

    fn build_node(
        &self,
        catalog: &Catalog,
        ctx: &ExecContext,
        signal: &Option<Rc<PopSignal>>,
        meters: &mut Vec<NodeMeter>,
    ) -> Result<BoxOp> {
        use PhysicalPlan::*;
        let subtree_start = meters.len();
        let op: BoxOp = match self {
            TableScan { table, filter, .. } => {
                let t = catalog.table(table)?;
                match batch_scan_pipeline(&t, filter, ctx) {
                    Some(op) => op,
                    None => {
                        let scan: BoxOp = Box::new(TableScanOp::new(t, ctx.clone()));
                        match filter {
                            Some(f) => Box::new(FilterOp::new(scan, f, ctx.clone())?),
                            None => scan,
                        }
                    }
                }
            }
            IndexScan { table, index, lo, hi, residual, .. } => {
                let t = catalog.table(table)?;
                let ix = catalog.index(index)?;
                let scan: BoxOp = Box::new(IndexScanOp::new(
                    ix,
                    t,
                    lo.clone(),
                    hi.clone(),
                    ctx.clone(),
                ));
                match residual {
                    Some(r) => Box::new(FilterOp::new(scan, r, ctx.clone())?),
                    None => scan,
                }
            }
            MultiIndexScan { table, index, prefix, lo, hi, residual, .. } => {
                let t = catalog.table(table)?;
                let ix = catalog.multi_index(index)?;
                let scan: BoxOp = Box::new(rqp_exec::MultiIndexScanOp::new(
                    ix,
                    t,
                    prefix.clone(),
                    lo.clone(),
                    hi.clone(),
                    ctx.clone(),
                ));
                match residual {
                    Some(r) => Box::new(FilterOp::new(scan, r, ctx.clone())?),
                    None => scan,
                }
            }
            HashJoin { left, right, edges, .. } => {
                let l = left.build_node(catalog, ctx, signal, meters)?;
                let r = right.build_node(catalog, ctx, signal, meters)?;
                let (lk, rk) = edge_keys(edges);
                let lk_refs: Vec<&str> = lk.iter().map(|s| s.as_str()).collect();
                let rk_refs: Vec<&str> = rk.iter().map(|s| s.as_str()).collect();
                Box::new(HashJoinOp::new(l, r, &lk_refs, &rk_refs, ctx.clone())?)
            }
            MergeJoin { left, right, edges, sort_left, sort_right, .. } => {
                let mut l = left.build_node(catalog, ctx, signal, meters)?;
                let mut r = right.build_node(catalog, ctx, signal, meters)?;
                let (lk, rk) = edge_keys(edges);
                if *sort_left {
                    let keys: Vec<&str> = lk.iter().map(|s| s.as_str()).collect();
                    l = Box::new(SortOp::asc(l, &keys, ctx.clone())?);
                }
                if *sort_right {
                    let keys: Vec<&str> = rk.iter().map(|s| s.as_str()).collect();
                    r = Box::new(SortOp::asc(r, &keys, ctx.clone())?);
                }
                let lk_refs: Vec<&str> = lk.iter().map(|s| s.as_str()).collect();
                let rk_refs: Vec<&str> = rk.iter().map(|s| s.as_str()).collect();
                Box::new(MergeJoinOp::new(l, r, &lk_refs, &rk_refs, ctx.clone())?)
            }
            GJoin { left, right, edges, left_sorted, right_sorted, .. } => {
                let l = left.build_node(catalog, ctx, signal, meters)?;
                let r = right.build_node(catalog, ctx, signal, meters)?;
                let (lk, rk) = edge_keys(edges);
                let lk_refs: Vec<&str> = lk.iter().map(|s| s.as_str()).collect();
                let rk_refs: Vec<&str> = rk.iter().map(|s| s.as_str()).collect();
                Box::new(GJoinOp::new(
                    l,
                    r,
                    &lk_refs,
                    &rk_refs,
                    *left_sorted,
                    *right_sorted,
                    None,
                    ctx.clone(),
                )?)
            }
            IndexNlJoin { outer, inner_table, inner_index, edge, inner_residual, .. } => {
                let o = outer.build_node(catalog, ctx, signal, meters)?;
                let ix = catalog.index(inner_index)?;
                let t = catalog.table(inner_table)?;
                let join: BoxOp = Box::new(IndexNlJoinOp::new(
                    o,
                    &edge.left_qualified(),
                    ix,
                    t,
                    ctx.clone(),
                )?);
                match inner_residual {
                    Some(p) => Box::new(FilterOp::new(join, p, ctx.clone())?),
                    None => join,
                }
            }
            Check { input, id, validity, est_rows, .. } => {
                let i = input.build_node(catalog, ctx, signal, meters)?;
                let sig = signal.as_ref().ok_or_else(|| {
                    RqpError::Planning("CHECK node requires a PopSignal".into())
                })?;
                Box::new(CheckOp::new(
                    i,
                    *id,
                    *est_rows,
                    *validity,
                    Rc::clone(sig),
                    ctx.clone(),
                ))
            }
            Aggregate { input, group_by, aggs, .. } => {
                let i = input.build_node(catalog, ctx, signal, meters)?;
                let gb: Vec<&str> = group_by.iter().map(|s| s.as_str()).collect();
                Box::new(HashAggOp::new(i, &gb, aggs, ctx.clone())?)
            }
            Sort { input, keys, .. } => {
                let i = input.build_node(catalog, ctx, signal, meters)?;
                let ks: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
                Box::new(SortOp::asc(i, &ks, ctx.clone())?)
            }
            TopN { input, keys, n, .. } => {
                let i = input.build_node(catalog, ctx, signal, meters)?;
                let ks: Vec<(&str, rqp_exec::sort::SortOrder)> = keys
                    .iter()
                    .map(|s| (s.as_str(), rqp_exec::sort::SortOrder::Asc))
                    .collect();
                Box::new(TopNOp::new(i, &ks, *n, ctx.clone())?)
            }
            Project { input, columns, .. } => {
                let i = input.build_node(catalog, ctx, signal, meters)?;
                let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
                Box::new(ProjectOp::columns(i, &cols, ctx.clone())?)
            }
        };
        let span = op
            .span()
            .expect("every rqp-exec operator carries a span")
            .clone();
        span.set_detail(&self.fingerprint());
        span.set_est_rows(self.est_rows());
        meters.push(NodeMeter {
            label: self.fingerprint(),
            est_rows: self.est_rows(),
            span,
            feedback_signature: self.feedback_signature(),
            subtree_start,
        });
        Ok(op)
    }

    /// LEO feedback signature for this node (scans and joins only).
    fn feedback_signature(&self) -> Option<String> {
        use PhysicalPlan::*;
        match self {
            TableScan { table, filter: Some(f), .. } => {
                Some(rqp_stats::FeedbackRepo::signature(table, f))
            }
            IndexScan { table, range_filter, residual, .. }
            | MultiIndexScan { table, range_filter, residual, .. } => {
                let full = match residual {
                    Some(r) => range_filter.clone().and(r.clone()),
                    None => range_filter.clone(),
                };
                Some(rqp_stats::FeedbackRepo::signature(table, &full))
            }
            HashJoin { edges, .. } | MergeJoin { edges, .. } | GJoin { edges, .. } => {
                edges.first().map(|e| {
                    format!(
                        "join|{}.{}={}.{}",
                        e.left_table, e.left_col, e.right_table, e.right_col
                    )
                })
            }
            IndexNlJoin { edge, .. } => Some(format!(
                "join|{}.{}={}.{}",
                edge.left_table, edge.left_col, edge.right_table, edge.right_col
            )),
            _ => None,
        }
    }

    fn fmt_tree(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        use PhysicalPlan::*;
        let pad = "  ".repeat(indent);
        let head = |name: &str| {
            format!(
                "{pad}{name} [rows≈{:.0} cost≈{:.1}]",
                self.est_rows(),
                self.est_cost()
            )
        };
        match self {
            TableScan { table, filter, .. } => {
                writeln!(
                    f,
                    "{} {}{}",
                    head("TableScan"),
                    table,
                    filter
                        .as_ref()
                        .map(|p| format!(" filter {p}"))
                        .unwrap_or_default()
                )
            }
            IndexScan { table, index, lo, hi, residual, .. } => {
                writeln!(
                    f,
                    "{} {table} via {index} [{:?}..{:?}]{}",
                    head("IndexScan"),
                    lo,
                    hi,
                    residual
                        .as_ref()
                        .map(|p| format!(" residual {p}"))
                        .unwrap_or_default()
                )
            }
            MultiIndexScan { table, index, prefix, lo, hi, residual, .. } => {
                writeln!(
                    f,
                    "{} {table} via {index} prefix {prefix:?} [{:?}..{:?}]{}",
                    head("MultiIndexScan"),
                    lo,
                    hi,
                    residual
                        .as_ref()
                        .map(|p| format!(" residual {p}"))
                        .unwrap_or_default()
                )
            }
            HashJoin { left, right, edges, .. } => {
                writeln!(f, "{} on {}", head("HashJoin"), fmt_edges(edges))?;
                left.fmt_tree(f, indent + 1)?;
                right.fmt_tree(f, indent + 1)
            }
            MergeJoin { left, right, edges, .. } => {
                writeln!(f, "{} on {}", head("MergeJoin"), fmt_edges(edges))?;
                left.fmt_tree(f, indent + 1)?;
                right.fmt_tree(f, indent + 1)
            }
            GJoin { left, right, edges, .. } => {
                writeln!(f, "{} on {}", head("GJoin"), fmt_edges(edges))?;
                left.fmt_tree(f, indent + 1)?;
                right.fmt_tree(f, indent + 1)
            }
            IndexNlJoin { outer, inner_table, inner_index, edge, .. } => {
                writeln!(
                    f,
                    "{} probe {inner_table}:{inner_index} on {}",
                    head("IndexNLJoin"),
                    fmt_edges(std::slice::from_ref(edge))
                )?;
                outer.fmt_tree(f, indent + 1)
            }
            Check { input, id, validity, .. } => {
                writeln!(f, "{} #{id} valid [{:.0},{:.0}]", head("CHECK"), validity.0, validity.1)?;
                input.fmt_tree(f, indent + 1)
            }
            Aggregate { input, group_by, .. } => {
                writeln!(f, "{} by {:?}", head("HashAgg"), group_by)?;
                input.fmt_tree(f, indent + 1)
            }
            Sort { input, keys, .. } => {
                writeln!(f, "{} by {:?}", head("Sort"), keys)?;
                input.fmt_tree(f, indent + 1)
            }
            TopN { input, keys, n, .. } => {
                writeln!(f, "{} {n} by {:?}", head("TopN"), keys)?;
                input.fmt_tree(f, indent + 1)
            }
            Project { input, columns, .. } => {
                writeln!(f, "{} {:?}", head("Project"), columns)?;
                input.fmt_tree(f, indent + 1)
            }
        }
    }
}

fn fmt_edges(edges: &[JoinEdge]) -> String {
    edges
        .iter()
        .map(|e| format!("{}={}", e.left_qualified(), e.right_qualified()))
        .collect::<Vec<_>>()
        .join(" AND ")
}

/// Batch-gated scan pipeline: when `RQP_BATCH` is on, build the
/// scan(+filter) batch twins behind a [`BatchRowsOp`] row adapter. Returns
/// `None` — falling back to the scalar construction — when batching is off
/// or the predicate does not compile to a batch filter, so binding errors
/// and unsupported expressions surface identically with the switch on.
fn batch_scan_pipeline(t: &Arc<Table>, filter: &Option<Expr>, ctx: &ExecContext) -> Option<BoxOp> {
    if !batch_enabled() {
        return None;
    }
    // Check compilability before opening any spans, so the common fallback
    // (a predicate with no batch form) leaves no orphan operator in the trace.
    if let Some(f) = filter {
        rqp_common::SimplePred::from_expr(f)?;
    }
    let scan: BoxBatchOp = Box::new(BatchScanOp::new(Arc::clone(t), ctx.clone()));
    let inner: BoxBatchOp = match filter {
        Some(f) => Box::new(BatchFilterOp::new(scan, f, ctx.clone()).ok()?),
        None => scan,
    };
    Some(BatchRowsOp::boxed(inner, ctx.clone()))
}

/// Qualified key column lists for join construction.
fn edge_keys(edges: &[JoinEdge]) -> (Vec<String>, Vec<String>) {
    let lk = edges.iter().map(|e| e.left_qualified()).collect();
    let rk = edges.iter().map(|e| e.right_qualified()).collect();
    (lk, rk)
}

/// Estimated join output: |L| × |R| × ∏ edge selectivities.
pub(crate) fn join_rows(lr: f64, rr: f64, edges: &[JoinEdge], est: &dyn CardEstimator) -> f64 {
    let sel: f64 = edges
        .iter()
        .map(|e| {
            est.join_selectivity(&e.left_table, &e.left_col, &e.right_table, &e.right_col)
        })
        .product();
    lr * rr * sel
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_tree(f, 0)
    }
}

/// Actual-cardinality meter for one plan node.
pub struct NodeMeter {
    /// Node fingerprint (human-readable).
    pub label: String,
    /// The estimate the plan carried.
    pub est_rows: f64,
    /// Telemetry span of the node's top operator: live actuals, timings,
    /// memory grants and spills.
    pub span: SpanHandle,
    /// LEO feedback key for this node, when applicable.
    pub feedback_signature: Option<String>,
    /// Index of the first meter belonging to this node's subtree (meters are
    /// pushed in post-order; the subtree of meter `i` is `subtree_start..i`).
    pub subtree_start: usize,
}

impl NodeMeter {
    /// Rows this node has actually produced so far.
    pub fn actual_rows(&self) -> usize {
        self.span.rows() as usize
    }
}

/// A compiled plan: root operator plus per-node meters.
pub struct BuiltPlan {
    /// Root operator (pull from this).
    pub root: BoxOp,
    /// Meters in build (post-)order; the last is the root.
    pub meters: Vec<NodeMeter>,
}

impl BuiltPlan {
    /// Drain the plan, returning all rows.
    pub fn run(&mut self) -> Vec<rqp_common::Row> {
        rqp_exec::collect(self.root.as_mut())
    }

    /// Indices of meter `i`'s *direct* children (post-order recovery).
    pub fn children_of(&self, i: usize) -> Vec<usize> {
        let start = self.meters[i].subtree_start;
        let mut out = Vec::new();
        let mut j = i;
        while j > start {
            let child = j - 1;
            out.push(child);
            j = self.meters[child].subtree_start;
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Schema, Value};
    use rqp_stats::{StatsEstimator, TableStatsRegistry};
    use rqp_storage::Table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("g", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..1000i64 {
            t.append(vec![Value::Int(i), Value::Int(i % 10)]);
        }
        c.add_table(t);
        let schema = Schema::from_pairs(&[("g", DataType::Int), ("w", DataType::Int)]);
        let mut u = Table::new("u", schema);
        for i in 0..100i64 {
            u.append(vec![Value::Int(i % 10), Value::Int(i)]);
        }
        c.add_table(u);
        c.create_index("ix_t_k", "t", "k").unwrap();
        c
    }

    fn scan(table: &str, filter: Option<Expr>) -> PhysicalPlan {
        PhysicalPlan::TableScan { table: table.into(), filter, est_rows: 0.0, est_cost: 0.0 }
    }

    #[test]
    fn build_and_run_scan_filter() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        let plan = scan("t", Some(col("t.k").lt(lit(100i64))));
        let mut built = plan.build(&c, &ctx, None).unwrap();
        let rows = built.run();
        assert_eq!(rows.len(), 100);
        assert_eq!(built.meters.len(), 1);
        assert_eq!(built.meters[0].actual_rows(), 100);
    }

    #[test]
    fn build_hash_join_plan() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("t", Some(col("t.k").lt(lit(50i64))))),
            right: Box::new(scan("u", None)),
            edges: vec![JoinEdge::new("t", "g", "u", "g")],
            est_rows: 500.0,
            est_cost: 0.0,
        };
        let mut built = plan.build(&c, &ctx, None).unwrap();
        let rows = built.run();
        // 50 t-rows × 10 matching u-rows each
        assert_eq!(rows.len(), 500);
        assert_eq!(built.meters.len(), 3);
        // meters in post-order: t-scan, u-scan, join
        assert_eq!(built.meters[2].actual_rows(), 500);
    }

    #[test]
    fn merge_join_with_sorts_matches_hash_join() {
        let c = catalog();
        let mk_children = || {
            (
                Box::new(scan("t", Some(col("t.k").lt(lit(50i64))))),
                Box::new(scan("u", None)),
            )
        };
        let edges = vec![JoinEdge::new("t", "g", "u", "g")];
        let (l, r) = mk_children();
        let mj = PhysicalPlan::MergeJoin {
            left: l,
            right: r,
            edges: edges.clone(),
            sort_left: true,
            sort_right: true,
            est_rows: 0.0,
            est_cost: 0.0,
        };
        let ctx = ExecContext::unbounded();
        let n_mj = mj.build(&c, &ctx, None).unwrap().run().len();
        assert_eq!(n_mj, 500);
    }

    #[test]
    fn index_scan_plan() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        let plan = PhysicalPlan::IndexScan {
            table: "t".into(),
            index: "ix_t_k".into(),
            column: "k".into(),
            lo: Some(Value::Int(10)),
            hi: Some(Value::Int(19)),
            range_filter: col("t.k").between(10i64, 19i64),
            residual: Some(col("t.g").eq(lit(5i64))),
            est_rows: 1.0,
            est_cost: 0.0,
        };
        let mut built = plan.build(&c, &ctx, None).unwrap();
        let rows = built.run();
        assert_eq!(rows.len(), 1); // k=15 only
        assert_eq!(rows[0][0], Value::Int(15));
    }

    #[test]
    fn inl_join_plan() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        let plan = PhysicalPlan::IndexNlJoin {
            outer: Box::new(scan("u", Some(col("u.w").lt(lit(5i64))))),
            inner_table: "t".into(),
            inner_index: "ix_t_k".into(),
            edge: JoinEdge::new("u", "w", "t", "k"),
            inner_residual: None,
            est_rows: 5.0,
            est_cost: 0.0,
        };
        let mut built = plan.build(&c, &ctx, None).unwrap();
        let rows = built.run();
        assert_eq!(rows.len(), 5, "w∈0..5 each matches one t.k");
    }

    #[test]
    fn aggregate_and_sort_pipeline() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        let plan = PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::Aggregate {
                input: Box::new(scan("t", None)),
                group_by: vec!["t.g".into()],
                aggs: vec![AggSpec::count_star("n")],
                est_rows: 10.0,
                est_cost: 0.0,
            }),
            keys: vec!["n".into()],
            est_rows: 10.0,
            est_cost: 0.0,
        };
        let mut built = plan.build(&c, &ctx, None).unwrap();
        let rows = built.run();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r[1] == Value::Int(100)));
    }

    #[test]
    fn fingerprints_ignore_estimates() {
        let a = scan("t", Some(col("t.k").lt(lit(10i64))));
        let mut b = scan("t", Some(col("t.k").lt(lit(900i64))));
        if let PhysicalPlan::TableScan { est_rows, .. } = &mut b {
            *est_rows = 900.0;
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn reestimate_under_oracle() {
        let c = Rc::new(catalog());
        let oracle = rqp_stats::OracleEstimator::new(Rc::clone(&c));
        let cm = CostModel::default();
        let plan = scan("t", Some(col("t.k").lt(lit(100i64))));
        let (rows, cost) = plan.reestimate(&oracle, &cm);
        assert!((rows - 100.0).abs() < 1e-6);
        assert!(cost > 0.0);
        // Join reestimation.
        let j = PhysicalPlan::HashJoin {
            left: Box::new(scan("t", None)),
            right: Box::new(scan("u", None)),
            edges: vec![JoinEdge::new("t", "g", "u", "g")],
            est_rows: 0.0,
            est_cost: 0.0,
        };
        let (rows, _) = j.reestimate(&oracle, &cm);
        assert!((rows - 10_000.0).abs() < 1.0, "1000×100×0.1, got {rows}");
    }

    #[test]
    fn reestimate_with_stats_registry() {
        let c = catalog();
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&c, 16));
        let est = StatsEstimator::new(reg);
        let cm = CostModel::default();
        let plan = scan("t", Some(col("t.k").between(0i64, 249i64)));
        let (rows, _) = plan.reestimate(&est, &cm);
        assert!((rows - 250.0).abs() < 30.0, "got {rows}");
    }

    #[test]
    fn check_node_requires_signal() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        let plan = PhysicalPlan::Check {
            input: Box::new(scan("t", None)),
            id: 0,
            validity: (0.0, 1e9),
            est_rows: 1000.0,
            est_cost: 0.0,
        };
        assert!(plan.build(&c, &ctx, None).is_err());
        let sig = PopSignal::new();
        let mut built = plan.build(&c, &ctx, Some(sig)).unwrap();
        assert_eq!(built.run().len(), 1000);
    }

    #[test]
    fn meter_children_recovered_in_post_order() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        // join(scan(t), join-ish right): a 3-meter tree — t-scan, u-scan, join.
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("t", Some(col("t.k").lt(lit(50i64))))),
            right: Box::new(scan("u", None)),
            edges: vec![JoinEdge::new("t", "g", "u", "g")],
            est_rows: 500.0,
            est_cost: 0.0,
        };
        let built = plan.build(&c, &ctx, None).unwrap();
        assert_eq!(built.meters.len(), 3);
        // Root is last; its children are the two scans, in build order.
        let kids = built.children_of(2);
        assert_eq!(kids, vec![0, 1]);
        assert!(built.meters[0].label.contains("scan(t)"));
        assert!(built.meters[1].label.contains("scan(u)"));
        // Leaves have no children.
        assert!(built.children_of(0).is_empty());
        assert!(built.children_of(1).is_empty());
    }

    #[test]
    fn meter_children_in_nested_plans() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        // agg(join(scan, scan)): meters = [t, u, join, agg].
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(scan("t", None)),
                right: Box::new(scan("u", None)),
                edges: vec![JoinEdge::new("t", "g", "u", "g")],
                est_rows: 0.0,
                est_cost: 0.0,
            }),
            group_by: vec!["t.g".into()],
            aggs: vec![AggSpec::count_star("n")],
            est_rows: 10.0,
            est_cost: 0.0,
        };
        let built = plan.build(&c, &ctx, None).unwrap();
        assert_eq!(built.meters.len(), 4);
        assert_eq!(built.children_of(3), vec![2], "agg's child is the join");
        assert_eq!(built.children_of(2), vec![0, 1]);
    }

    #[test]
    fn display_renders_tree() {
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("t", None)),
            right: Box::new(scan("u", None)),
            edges: vec![JoinEdge::new("t", "g", "u", "g")],
            est_rows: 10.0,
            est_cost: 5.0,
        };
        let s = plan.to_string();
        assert!(s.contains("HashJoin") && s.contains("TableScan"), "{s}");
        assert_eq!(plan.tables(), vec!["t".to_string(), "u".to_string()]);
    }
}
