//! Rio: proactive re-optimization (Babu, Bizarro & DeWitt, SIGMOD 2005).
//!
//! Rio classifies each uncertain estimate into one of six *uncertainty
//! levels* derived from how the estimate was computed (exact value → no
//! uncertainty; stale histogram under correlation → very high). The level
//! maps to a **bounding box** around the point estimate; the optimizer plans
//! at the box's corners, and:
//!
//! * if all corners pick the same plan → that plan is **robust** inside the
//!   box, no runtime machinery needed;
//! * otherwise the corner plans form a **switchable set**; Rio prefers plans
//!   that remain near-optimal across the box, accepting a small premium at
//!   the point estimate in exchange for insurance at the corners.

use crate::physical::PhysicalPlan;
use crate::planner::{plan as plan_query, PlannerConfig};
use crate::query::QuerySpec;
use crate::CostModel;
use rqp_common::{Result, RqpError};
use rqp_stats::{CardEstimator, LyingEstimator};
use rqp_storage::Catalog;

/// Rio's uncertainty taxonomy (derivation-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UncertaintyLevel {
    /// Exact knowledge (e.g. key lookup on a unique column).
    None,
    /// Fresh single-column statistics, no correlation involved.
    Low,
    /// Stale statistics or minor extrapolation.
    Moderate,
    /// Independence assumption across predicates.
    High,
    /// Correlation known to exist but unmodelled.
    VeryHigh,
    /// Guess (no statistics at all, complex expressions).
    Extreme,
}

impl UncertaintyLevel {
    /// The bounding-box half-width as a multiplicative factor: the true
    /// cardinality is assumed within `[est / f, est * f]`.
    pub fn box_factor(&self) -> f64 {
        match self {
            UncertaintyLevel::None => 1.0,
            UncertaintyLevel::Low => 1.5,
            UncertaintyLevel::Moderate => 3.0,
            UncertaintyLevel::High => 8.0,
            UncertaintyLevel::VeryHigh => 25.0,
            UncertaintyLevel::Extreme => 100.0,
        }
    }

    /// All levels, in increasing order.
    pub fn all() -> [UncertaintyLevel; 6] {
        [
            UncertaintyLevel::None,
            UncertaintyLevel::Low,
            UncertaintyLevel::Moderate,
            UncertaintyLevel::High,
            UncertaintyLevel::VeryHigh,
            UncertaintyLevel::Extreme,
        ]
    }
}

/// Rio's verdict for a query under a given uncertainty box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RioRobustness {
    /// Same plan optimal at every corner: provably robust inside the box.
    Robust,
    /// Corner plans differ: a switchable set is needed.
    Switchable,
}

/// The analysis result.
pub struct RioAnalysis {
    /// Verdict.
    pub robustness: RioRobustness,
    /// The plan Rio recommends executing.
    pub chosen: PhysicalPlan,
    /// Distinct corner-plan fingerprints (1 ⇒ robust).
    pub corner_fingerprints: Vec<String>,
    /// Chosen plan's cost at (low corner, point, high corner).
    pub chosen_corner_costs: (f64, f64, f64),
    /// Point-optimal plan's cost at the same three points.
    pub point_corner_costs: (f64, f64, f64),
}

impl RioAnalysis {
    /// Analyze `spec` with the estimate of `table`'s cardinality carrying
    /// `level` uncertainty.
    pub fn analyze<E>(
        spec: &QuerySpec,
        catalog: &Catalog,
        base: E,
        cfg: PlannerConfig,
        table: &str,
        level: UncertaintyLevel,
    ) -> Result<Self>
    where
        E: CardEstimator + Clone + 'static,
    {
        let f = level.box_factor();
        let cm = CostModel { memory_rows: cfg.memory_rows, ..CostModel::default() };
        let corners = [1.0 / f, 1.0, f];
        let scenario = |factor: f64| -> Box<dyn CardEstimator> {
            Box::new(LyingEstimator::new(Box::new(base.clone())).with_table_factor(table, factor))
        };

        // Plan at each corner.
        let mut corner_plans = Vec::with_capacity(3);
        for &c in &corners {
            corner_plans.push(plan_query(spec, catalog, scenario(c).as_ref(), cfg)?);
        }
        let mut corner_fingerprints: Vec<String> =
            corner_plans.iter().map(|p| p.fingerprint()).collect();
        corner_fingerprints.sort();
        corner_fingerprints.dedup();

        let point_plan = corner_plans[1].clone();
        let costs_at = |p: &PhysicalPlan| -> (f64, f64, f64) {
            (
                p.reestimate(scenario(corners[0]).as_ref(), &cm).1,
                p.reestimate(scenario(corners[1]).as_ref(), &cm).1,
                p.reestimate(scenario(corners[2]).as_ref(), &cm).1,
            )
        };

        if corner_fingerprints.len() == 1 {
            let costs = costs_at(&point_plan);
            return Ok(RioAnalysis {
                robustness: RioRobustness::Robust,
                chosen: point_plan.clone(),
                corner_fingerprints,
                chosen_corner_costs: costs,
                point_corner_costs: costs,
            });
        }

        // Switchable: pick the corner plan minimizing the worst corner cost.
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in corner_plans.iter().enumerate() {
            let (a, b, c) = costs_at(p);
            let worst = a.max(b).max(c);
            if best.map(|(_, w)| worst < w).unwrap_or(true) {
                best = Some((i, worst));
            }
        }
        let (idx, _) = best.ok_or_else(|| RqpError::Planning("no corner plans".into()))?;
        let chosen = corner_plans[idx].clone();
        Ok(RioAnalysis {
            robustness: RioRobustness::Switchable,
            chosen_corner_costs: costs_at(&chosen),
            point_corner_costs: costs_at(&point_plan),
            chosen,
            corner_fingerprints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Schema, Value};
    use rqp_stats::{StatsEstimator, TableStatsRegistry};
    use rqp_storage::Table;
    use std::rc::Rc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("g", DataType::Int)]);
        let mut r = Table::new("r", schema.clone());
        for i in 0..20_000i64 {
            r.append(vec![Value::Int(i), Value::Int(i % 200)]);
        }
        c.add_table(r);
        let mut s = Table::new("s", schema);
        for i in 0..2_000i64 {
            s.append(vec![Value::Int(i), Value::Int(i % 200)]);
        }
        c.add_table(s);
        c.create_index("ix_s_g", "s", "g").unwrap();
        c
    }

    fn est(c: &Catalog) -> StatsEstimator {
        StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(c, 16)))
    }

    #[test]
    fn box_factors_monotone() {
        let all = UncertaintyLevel::all();
        for w in all.windows(2) {
            assert!(w[0].box_factor() <= w[1].box_factor());
        }
        assert_eq!(UncertaintyLevel::None.box_factor(), 1.0);
    }

    #[test]
    fn zero_uncertainty_is_robust() {
        let c = catalog();
        let spec = QuerySpec::new()
            .join("r", "g", "s", "g")
            .filter("r", col("r.k").lt(lit(500i64)));
        let a = RioAnalysis::analyze(
            &spec,
            &c,
            est(&c),
            PlannerConfig::default(),
            "r",
            UncertaintyLevel::None,
        )
        .unwrap();
        assert_eq!(a.robustness, RioRobustness::Robust);
        assert_eq!(a.corner_fingerprints.len(), 1);
    }

    #[test]
    fn extreme_uncertainty_on_cliff_query_is_switchable() {
        let c = catalog();
        // Selective filter: at 1× INL wins, at ×100 a hash join wins.
        let spec = QuerySpec::new()
            .join("r", "g", "s", "g")
            .filter("r", col("r.k").lt(lit(50i64)));
        let a = RioAnalysis::analyze(
            &spec,
            &c,
            est(&c),
            PlannerConfig::default(),
            "r",
            UncertaintyLevel::Extreme,
        )
        .unwrap();
        assert_eq!(a.robustness, RioRobustness::Switchable);
        assert!(a.corner_fingerprints.len() >= 2);
        // The chosen plan's worst corner must beat the point plan's worst.
        let worst = |t: (f64, f64, f64)| t.0.max(t.1).max(t.2);
        assert!(worst(a.chosen_corner_costs) <= worst(a.point_corner_costs) + 1e-9);
    }

    #[test]
    fn switchable_choice_accepts_bounded_point_premium() {
        let c = catalog();
        let spec = QuerySpec::new()
            .join("r", "g", "s", "g")
            .filter("r", col("r.k").lt(lit(50i64)));
        let a = RioAnalysis::analyze(
            &spec,
            &c,
            est(&c),
            PlannerConfig::default(),
            "r",
            UncertaintyLevel::VeryHigh,
        )
        .unwrap();
        if a.robustness == RioRobustness::Switchable {
            // The robust choice may cost more at the point estimate — but
            // the premium is what buys the corner insurance. Record both.
            assert!(a.chosen_corner_costs.1 > 0.0 && a.point_corner_costs.1 > 0.0);
        }
    }
}
