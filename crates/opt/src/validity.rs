//! Validity ranges for POP checkpoints (Markl et al., SIGMOD 2004).
//!
//! The validity range of a plan with respect to one input's cardinality is
//! the interval within which the plan remains (near-)optimal. POP plants a
//! CHECK with this interval at the corresponding materialization point; an
//! actual cardinality escaping the interval triggers re-optimization.
//!
//! Exact ranges require parametric reasoning over the plan space; like the
//! paper, we compute them numerically: sweep a scaling factor over the
//! table's filtered cardinality (log-spaced), re-plan at each point, and
//! find the maximal contiguous interval around factor 1.0 where the chosen
//! plan's cost stays within `(1 + slack)` of the re-planned optimum.

use crate::physical::PhysicalPlan;
use crate::planner::{plan as plan_query, PlannerConfig};
use crate::query::QuerySpec;
use crate::CostModel;
use rqp_common::Result;
use rqp_stats::{CardEstimator, LyingEstimator};
use rqp_storage::Catalog;

/// Compute the validity range (in output *rows* of `table`'s filtered scan)
/// for `plan` with respect to `table`'s cardinality.
///
/// Returns `(lo_rows, hi_rows)`. `slack` is the tolerated cost degradation
/// (e.g. 0.2); `steps` factors are probed on each side per decade across
/// `decades` orders of magnitude.
#[allow(clippy::too_many_arguments)]
pub fn validity_range<E>(
    spec: &QuerySpec,
    catalog: &Catalog,
    base: E,
    cfg: PlannerConfig,
    plan: &PhysicalPlan,
    table: &str,
    slack: f64,
    decades: u32,
    steps_per_decade: u32,
) -> Result<(f64, f64)>
where
    E: CardEstimator + Clone + 'static,
{
    let cm = CostModel { memory_rows: cfg.memory_rows, ..CostModel::default() };
    let est_rows_at = |factor: f64| -> f64 {
        let e = LyingEstimator::new(Box::new(base.clone())).with_table_factor(table, factor);
        let pred = spec.local_pred(table);
        e.filtered_rows(table, &pred)
    };

    let valid_at = |factor: f64| -> Result<bool> {
        let e = LyingEstimator::new(Box::new(base.clone())).with_table_factor(table, factor);
        let chosen_cost = plan.reestimate(&e, &cm).1;
        let optimal = plan_query(spec, catalog, &e, cfg)?;
        let optimal_cost = optimal.reestimate(&e, &cm).1;
        Ok(chosen_cost <= optimal_cost * (1.0 + slack) + 1e-9)
    };

    // Sweep up from 1.0.
    let steps = (decades * steps_per_decade) as i32;
    let step_factor = 10f64.powf(1.0 / steps_per_decade as f64);
    let mut hi_factor = 1.0;
    for i in 1..=steps {
        let f = step_factor.powi(i);
        if valid_at(f)? {
            hi_factor = f;
        } else {
            break;
        }
    }
    let mut lo_factor = 1.0;
    for i in 1..=steps {
        let f = step_factor.powi(-i);
        if valid_at(f)? {
            lo_factor = f;
        } else {
            break;
        }
    }
    Ok((est_rows_at(lo_factor), est_rows_at(hi_factor)))
}

/// Simple threshold validity range: `[est/theta, est*theta]`. This is the
/// pragmatic check most systems implement; POP's evaluation uses it when
/// exact ranges are too expensive. Used as the default by the POP driver.
pub fn threshold_range(est_rows: f64, theta: f64) -> (f64, f64) {
    assert!(theta >= 1.0, "theta must be ≥ 1");
    ((est_rows / theta).max(0.0), est_rows * theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Schema, Value};
    use rqp_stats::{StatsEstimator, TableStatsRegistry};
    use rqp_storage::Table;
    use std::rc::Rc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("g", DataType::Int)]);
        let mut r = Table::new("r", schema.clone());
        for i in 0..10_000i64 {
            r.append(vec![Value::Int(i), Value::Int(i % 100)]);
        }
        c.add_table(r);
        let mut s = Table::new("s", schema);
        for i in 0..1_000i64 {
            s.append(vec![Value::Int(i), Value::Int(i % 100)]);
        }
        c.add_table(s);
        c.create_index("ix_s_g", "s", "g").unwrap();
        c
    }

    #[test]
    fn threshold_range_brackets_estimate() {
        let (lo, hi) = threshold_range(100.0, 4.0);
        assert_eq!(lo, 25.0);
        assert_eq!(hi, 400.0);
        assert!(lo <= 100.0 && 100.0 <= hi);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn threshold_range_rejects_theta_below_one() {
        threshold_range(10.0, 0.5);
    }

    #[test]
    fn validity_range_contains_estimate() {
        let c = catalog();
        let est = StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(&c, 16)));
        let spec = QuerySpec::new()
            .join("r", "g", "s", "g")
            .filter("r", col("r.k").lt(lit(100i64)));
        let plan = plan_query(&spec, &c, &est, PlannerConfig::default()).unwrap();
        let est_rows = est.filtered_rows("r", &spec.local_pred("r"));
        let (lo, hi) = validity_range(
            &spec,
            &c,
            est.clone(),
            PlannerConfig::default(),
            &plan,
            "r",
            0.2,
            3,
            4,
        )
        .unwrap();
        assert!(lo <= est_rows && est_rows <= hi, "[{lo},{hi}] ∋ {est_rows}");
        assert!(lo < hi);
    }

    #[test]
    fn validity_range_is_bounded_when_plans_flip() {
        let c = catalog();
        let est = StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(&c, 16)));
        // Very selective filter: the optimal plan at 1× (INL into s) should
        // stop being optimal when r's cardinality is inflated 100–1000×.
        let spec = QuerySpec::new()
            .join("r", "g", "s", "g")
            .filter("r", col("r.k").lt(lit(20i64)));
        let plan = plan_query(&spec, &c, &est, PlannerConfig::default()).unwrap();
        let (lo, hi) = validity_range(
            &spec,
            &c,
            est.clone(),
            PlannerConfig::default(),
            &plan,
            "r",
            0.2,
            4,
            4,
        )
        .unwrap();
        let est_rows = est.filtered_rows("r", &spec.local_pred("r"));
        // Upper bound must not be the full sweep limit (10^4×): the plan
        // flips somewhere.
        assert!(
            hi < est_rows * 9_000.0,
            "expected a finite validity ceiling, got {hi} (est {est_rows})"
        );
        assert!(lo > 0.0);
    }
}
