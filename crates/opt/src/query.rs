//! The conjunctive-query descriptor consumed by the planner.

use rqp_common::{Expr, Result, RqpError};
use rqp_exec::AggSpec;
use std::collections::HashMap;

/// One equi-join edge between two tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Left table name.
    pub left_table: String,
    /// Left join column (unqualified).
    pub left_col: String,
    /// Right table name.
    pub right_table: String,
    /// Right join column (unqualified).
    pub right_col: String,
}

impl JoinEdge {
    /// Create an edge `left_table.left_col = right_table.right_col`.
    pub fn new(
        left_table: impl Into<String>,
        left_col: impl Into<String>,
        right_table: impl Into<String>,
        right_col: impl Into<String>,
    ) -> Self {
        JoinEdge {
            left_table: left_table.into(),
            left_col: left_col.into(),
            right_table: right_table.into(),
            right_col: right_col.into(),
        }
    }

    /// Qualified left column (`"t.c"`). A column that already carries a
    /// qualifier (temp tables materialized from intermediates keep their
    /// original qualified field names) is returned verbatim.
    pub fn left_qualified(&self) -> String {
        if self.left_col.contains('.') {
            self.left_col.clone()
        } else {
            format!("{}.{}", self.left_table, self.left_col)
        }
    }

    /// Qualified right column.
    pub fn right_qualified(&self) -> String {
        if self.right_col.contains('.') {
            self.right_col.clone()
        } else {
            format!("{}.{}", self.right_table, self.right_col)
        }
    }

    /// Does this edge connect `a` and `b` (in either direction)?
    pub fn connects(&self, a: &str, b: &str) -> bool {
        (self.left_table == a && self.right_table == b)
            || (self.left_table == b && self.right_table == a)
    }

    /// The edge oriented so that `left_table == table`, if it touches it.
    pub fn oriented_from(&self, table: &str) -> Option<JoinEdge> {
        if self.left_table == table {
            Some(self.clone())
        } else if self.right_table == table {
            Some(JoinEdge {
                left_table: self.right_table.clone(),
                left_col: self.right_col.clone(),
                right_table: self.left_table.clone(),
                right_col: self.left_col.clone(),
            })
        } else {
            None
        }
    }
}

/// A (select-project-join-aggregate) query over base tables.
///
/// Built with the fluent API:
///
/// ```
/// use rqp_opt::QuerySpec;
/// use rqp_common::expr::{col, lit};
///
/// let q = QuerySpec::new()
///     .table("orders")
///     .table("customer")
///     .join("orders", "custkey", "customer", "custkey")
///     .filter("orders", col("orders.total").gt(lit(100.0)))
///     .project(&["customer.name", "orders.total"]);
/// assert_eq!(q.tables.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QuerySpec {
    /// Base tables, in declaration order.
    pub tables: Vec<String>,
    /// Local predicate per table (conjunction).
    pub local_preds: HashMap<String, Expr>,
    /// Equi-join edges.
    pub joins: Vec<JoinEdge>,
    /// Output columns (qualified); `None` keeps everything.
    pub projections: Option<Vec<String>>,
    /// GROUP BY columns (qualified).
    pub group_by: Vec<String>,
    /// Aggregates (empty = no aggregation).
    pub aggs: Vec<AggSpec>,
    /// ORDER BY columns (qualified, ascending).
    pub order_by: Vec<String>,
    /// LIMIT.
    pub limit: Option<usize>,
}

impl QuerySpec {
    /// Empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a base table.
    pub fn table(mut self, name: impl Into<String>) -> Self {
        self.tables.push(name.into());
        self
    }

    /// Add an equi-join edge (tables are added implicitly if missing).
    pub fn join(
        mut self,
        left_table: &str,
        left_col: &str,
        right_table: &str,
        right_col: &str,
    ) -> Self {
        for t in [left_table, right_table] {
            if !self.tables.iter().any(|x| x == t) {
                self.tables.push(t.to_owned());
            }
        }
        self.joins
            .push(JoinEdge::new(left_table, left_col, right_table, right_col));
        self
    }

    /// AND a predicate onto a table's local filter.
    pub fn filter(mut self, table: &str, pred: Expr) -> Self {
        let entry = self
            .local_preds
            .remove(table)
            .map(|e| e.and(pred.clone()))
            .unwrap_or(pred);
        self.local_preds.insert(table.to_owned(), entry);
        self
    }

    /// Project to the named (qualified) columns.
    pub fn project(mut self, cols: &[&str]) -> Self {
        self.projections = Some(cols.iter().map(|c| (*c).to_owned()).collect());
        self
    }

    /// Group by columns with aggregates.
    pub fn aggregate(mut self, group_by: &[&str], aggs: Vec<AggSpec>) -> Self {
        self.group_by = group_by.iter().map(|c| (*c).to_owned()).collect();
        self.aggs = aggs;
        self
    }

    /// Order ascending by columns.
    pub fn order(mut self, cols: &[&str]) -> Self {
        self.order_by = cols.iter().map(|c| (*c).to_owned()).collect();
        self
    }

    /// Keep only the first `n` rows.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Local predicate of `table` (TRUE if none).
    pub fn local_pred(&self, table: &str) -> Expr {
        self.local_preds
            .get(table)
            .cloned()
            .unwrap_or_else(Expr::true_)
    }

    /// All edges between the table sets `a` and `b`.
    pub fn edges_between<'a>(
        &'a self,
        a: &'a [String],
        b: &'a [String],
    ) -> impl Iterator<Item = &'a JoinEdge> {
        self.joins.iter().filter(move |e| {
            (a.contains(&e.left_table) && b.contains(&e.right_table))
                || (b.contains(&e.left_table) && a.contains(&e.right_table))
        })
    }

    /// Validate basic well-formedness: tables non-empty, unique, joins refer
    /// to declared tables, join graph connected.
    pub fn validate(&self) -> Result<()> {
        if self.tables.is_empty() {
            return Err(RqpError::Planning("query references no tables".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for t in &self.tables {
            if !seen.insert(t) {
                return Err(RqpError::Planning(format!("duplicate table {t}")));
            }
        }
        for e in &self.joins {
            for t in [&e.left_table, &e.right_table] {
                if !self.tables.contains(t) {
                    return Err(RqpError::Planning(format!(
                        "join references undeclared table {t}"
                    )));
                }
            }
        }
        // Connectivity (no Cartesian products planned).
        if self.tables.len() > 1 {
            let mut reached = std::collections::HashSet::new();
            reached.insert(self.tables[0].clone());
            let mut changed = true;
            while changed {
                changed = false;
                for e in &self.joins {
                    let l_in = reached.contains(&e.left_table);
                    let r_in = reached.contains(&e.right_table);
                    if l_in != r_in {
                        reached.insert(if l_in {
                            e.right_table.clone()
                        } else {
                            e.left_table.clone()
                        });
                        changed = true;
                    }
                }
            }
            if reached.len() != self.tables.len() {
                return Err(RqpError::Planning(
                    "join graph is disconnected (Cartesian product not supported)".into(),
                ));
            }
        }
        Ok(())
    }

    /// A deterministic text key identifying this query's *shape*: tables,
    /// predicates (rendered through the expression pretty-printer), join
    /// edges, projection/grouping/ordering and limit. Two specs that would
    /// plan identically produce the same key — the lookup key of a query
    /// service's plan cache. Predicates are emitted in sorted table order so
    /// the `HashMap` iteration order can never leak into the key.
    pub fn cache_key(&self) -> String {
        use std::fmt::Write as _;
        let mut key = String::new();
        let _ = write!(key, "t[{}]", self.tables.join(","));
        let mut preds: Vec<(&String, &Expr)> = self.local_preds.iter().collect();
        preds.sort_by_key(|(t, _)| (*t).clone());
        for (t, p) in preds {
            let _ = write!(key, ";p[{t}:{p}]");
        }
        for e in &self.joins {
            let _ = write!(
                key,
                ";j[{}.{}={}.{}]",
                e.left_table, e.left_col, e.right_table, e.right_col
            );
        }
        if let Some(proj) = &self.projections {
            let _ = write!(key, ";sel[{}]", proj.join(","));
        }
        if !self.group_by.is_empty() {
            let _ = write!(key, ";g[{}]", self.group_by.join(","));
        }
        for a in &self.aggs {
            let _ = write!(
                key,
                ";a[{:?}({}) as {}]",
                a.func,
                a.col.as_deref().unwrap_or("*"),
                a.alias
            );
        }
        if !self.order_by.is_empty() {
            let _ = write!(key, ";o[{}]", self.order_by.join(","));
        }
        if let Some(n) = self.limit {
            let _ = write!(key, ";l[{n}]");
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};

    #[test]
    fn cache_key_is_order_independent_and_discriminating() {
        let q1 = QuerySpec::new()
            .table("a")
            .table("b")
            .join("a", "x", "b", "x")
            .filter("a", col("a.v").lt(lit(10)))
            .filter("b", col("b.w").lt(lit(5)))
            .limit(7);
        // Same query with the predicates registered in the opposite order:
        // the key must not depend on HashMap iteration order.
        let q2 = QuerySpec::new()
            .table("a")
            .table("b")
            .join("a", "x", "b", "x")
            .filter("b", col("b.w").lt(lit(5)))
            .filter("a", col("a.v").lt(lit(10)))
            .limit(7);
        assert_eq!(q1.cache_key(), q2.cache_key());
        // A changed literal changes the key — parameter values are part of
        // the shape, not sniffed out.
        let q3 = QuerySpec::new()
            .table("a")
            .table("b")
            .join("a", "x", "b", "x")
            .filter("a", col("a.v").lt(lit(11)))
            .filter("b", col("b.w").lt(lit(5)))
            .limit(7);
        assert_ne!(q1.cache_key(), q3.cache_key());
    }

    #[test]
    fn builder_accumulates() {
        let q = QuerySpec::new()
            .join("a", "x", "b", "x")
            .join("b", "y", "c", "y")
            .filter("a", col("a.v").lt(lit(5i64)))
            .filter("a", col("a.w").gt(lit(0i64)))
            .project(&["a.v"])
            .limit(10);
        assert_eq!(q.tables, vec!["a", "b", "c"]);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.local_pred("a").conjuncts().len(), 2);
        assert_eq!(q.local_pred("b"), Expr::true_());
        assert_eq!(q.limit, Some(10));
        q.validate().unwrap();
    }

    #[test]
    fn edge_orientation() {
        let e = JoinEdge::new("a", "x", "b", "y");
        assert!(e.connects("a", "b") && e.connects("b", "a"));
        assert!(!e.connects("a", "c"));
        let o = e.oriented_from("b").unwrap();
        assert_eq!(o.left_table, "b");
        assert_eq!(o.left_col, "y");
        assert_eq!(o.right_qualified(), "a.x");
        assert!(e.oriented_from("z").is_none());
    }

    #[test]
    fn validation_catches_errors() {
        assert!(QuerySpec::new().validate().is_err());
        let dup = QuerySpec::new().table("a").table("a");
        assert!(dup.validate().is_err());
        let disconnected = QuerySpec::new().table("a").table("b");
        assert!(disconnected.validate().is_err());
        let mut bad_join = QuerySpec::new().table("a").table("b");
        bad_join.joins.push(JoinEdge::new("a", "x", "zz", "y"));
        assert!(bad_join.validate().is_err());
    }

    #[test]
    fn edges_between_sets() {
        let q = QuerySpec::new()
            .join("a", "x", "b", "x")
            .join("b", "y", "c", "y")
            .join("a", "z", "c", "z");
        let left = vec!["a".to_string()];
        let right = vec!["b".to_string(), "c".to_string()];
        let edges: Vec<_> = q.edges_between(&left, &right).collect();
        assert_eq!(edges.len(), 2);
    }
}
