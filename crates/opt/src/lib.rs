//! # rqp-opt
//!
//! The cost-based query optimizer, plus every *plan-robustness* technique the
//! Dagstuhl report catalogues:
//!
//! * [`query`] — the conjunctive-query descriptor ([`query::QuerySpec`]) the
//!   planner consumes;
//! * [`cost`] — the optimizer's cost model, deliberately kept commensurable
//!   with the executor's cost-clock charges so that *estimation error, not
//!   cost-model error*, is the experimental variable;
//! * [`physical`] — physical plan trees, re-estimation of a fixed plan under
//!   a different estimator, and compilation to `rqp-exec` operators;
//! * [`planner`] — dynamic-programming join enumeration (left-deep or bushy)
//!   with access-path selection;
//! * [`robust`] — **Babcock–Chaudhuri** robust plan selection: cost candidate
//!   plans across selectivity scenarios and pick by percentile or least
//!   expected cost instead of the optimistic point estimate;
//! * [`plandiagram`] — **plan diagrams** over a 2-D selectivity grid and
//!   **anorexic reduction** (Harish, Darera & Haritsa): swallow plans into a
//!   ≤ (1+λ) cost-degradation cover;
//! * [`validity`] — **validity ranges** for POP checkpoints: the cardinality
//!   interval within which the chosen plan stays near-optimal;
//! * [`rio`] — **Rio** bounding boxes (Babu, Bizarro, DeWitt): uncertainty-
//!   scaled corner checks that classify a plan as robust or switchable;
//! * [`parametric`] — a parametric plan cache (PQO-lite): reuse plans across
//!   parameter values that land in the same selectivity bucket.

#![warn(missing_docs)]

pub mod cost;
pub mod parametric;
pub mod physical;
pub mod plandiagram;
pub mod planner;
pub mod query;
pub mod rio;
pub mod robust;
pub mod validity;

pub use cost::{CostModel, ExecMode};
pub use parametric::{ParametricPlanCache, PqoOutcome};
pub use physical::{BuiltPlan, NodeMeter, PhysicalPlan};
pub use plandiagram::{AnorexicReduction, PlanDiagram};
pub use planner::{plan, AccessPath, Planner, PlannerConfig};
pub use query::{JoinEdge, QuerySpec};
pub use rio::{RioAnalysis, RioRobustness, UncertaintyLevel};
pub use robust::{robust_plan, RobustChoice, RobustMode};
pub use validity::validity_range;
