//! Dynamic-programming plan enumeration.
//!
//! A System-R style DPsize enumerator over connected table subsets, with
//! per-table access-path selection (scan vs index range scan) and a
//! configurable join repertoire (hash / sort-merge / index-nested-loop /
//! g-join). Left-deep by default; bushy on request. Subset cardinalities are
//! derived once per subset (base filtered sizes × edge selectivities) so
//! every join algorithm is costed against the same cardinality — mirroring
//! real optimizers, and ensuring the experiments isolate *estimation* error.

use crate::cost::CostModel;
use crate::physical::PhysicalPlan;
use crate::query::{JoinEdge, QuerySpec};
use rqp_common::{CmpOp, Expr, Result, RqpError, SimplePred, Value};
use rqp_stats::CardEstimator;
use rqp_storage::Catalog;
use std::collections::HashMap;

/// Which join algorithms the planner may pick.
#[derive(Debug, Clone, Copy)]
pub struct JoinAlgos {
    /// Hash join.
    pub hash: bool,
    /// Sort-merge join.
    pub merge: bool,
    /// Index-nested-loop join.
    pub inl: bool,
    /// Generalized join.
    pub gjoin: bool,
}

impl Default for JoinAlgos {
    fn default() -> Self {
        JoinAlgos { hash: true, merge: true, inl: true, gjoin: false }
    }
}

impl JoinAlgos {
    /// Only the generalized join (the "one join algorithm" engine of E18).
    pub fn gjoin_only() -> Self {
        JoinAlgos { hash: false, merge: false, inl: false, gjoin: true }
    }
}

/// Planner configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Allow bushy trees (otherwise left-deep).
    pub bushy: bool,
    /// Memory budget for spill prediction.
    pub memory_rows: f64,
    /// Join repertoire.
    pub join_algos: JoinAlgos,
    /// Refuse queries with more tables than this (DP is exponential).
    pub max_tables: usize,
    /// Above this many tables, fall back from exhaustive DP to greedy
    /// operator ordering — the "heuristic guidance and termination" escape
    /// hatch the seminar's optimization session discusses (Neumann's query
    /// simplification is the production version).
    pub greedy_above: usize,
    /// Consider index access paths.
    pub use_indexes: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            bushy: false,
            memory_rows: f64::INFINITY,
            join_algos: JoinAlgos::default(),
            max_tables: 30,
            greedy_above: 10,
            use_indexes: true,
        }
    }
}

/// The access path chosen for a base table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Full scan.
    Scan,
    /// Index range scan.
    Index,
}

/// The DP planner.
pub struct Planner<'a> {
    catalog: &'a Catalog,
    est: &'a dyn CardEstimator,
    cm: CostModel,
    cfg: PlannerConfig,
}

/// One-shot convenience: plan `spec` against `catalog` with `est`.
pub fn plan(
    spec: &QuerySpec,
    catalog: &Catalog,
    est: &dyn CardEstimator,
    cfg: PlannerConfig,
) -> Result<PhysicalPlan> {
    Planner::new(catalog, est, cfg).plan(spec)
}

#[derive(Clone)]
struct Cand {
    plan: PhysicalPlan,
    cost: f64,
}

impl<'a> Planner<'a> {
    /// New planner.
    pub fn new(catalog: &'a Catalog, est: &'a dyn CardEstimator, cfg: PlannerConfig) -> Self {
        let cm = CostModel { memory_rows: cfg.memory_rows, ..CostModel::default() };
        Planner { catalog, est, cm, cfg }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cm
    }

    /// Produce the cheapest plan for `spec`.
    pub fn plan(&self, spec: &QuerySpec) -> Result<PhysicalPlan> {
        spec.validate()?;
        let n = spec.tables.len();
        if n > self.cfg.max_tables {
            return Err(RqpError::Planning(format!(
                "query joins {n} tables, planner limit is {}",
                self.cfg.max_tables
            )));
        }
        if n > self.cfg.greedy_above.min(30) {
            return self.plan_greedy(spec);
        }
        // Base filtered cardinalities and access paths.
        let mut best: HashMap<u32, Cand> = HashMap::new();
        let mut subset_rows: HashMap<u32, f64> = HashMap::new();
        for (i, t) in spec.tables.iter().enumerate() {
            let cand = self.best_access_path(t, spec)?;
            let mask = 1u32 << i;
            subset_rows.insert(mask, cand.plan.est_rows());
            best.insert(mask, cand);
        }

        // DPsize.
        for size in 2..=n {
            for s in 1u32..(1 << n) {
                if (s.count_ones() as usize) != size {
                    continue;
                }
                // Subset cardinality (same for all plans of this subset).
                let rows_s = self.subset_cardinality(s, spec, &subset_rows);
                let mut best_cand: Option<Cand> = None;
                // Enumerate partitions A ∪ B = S.
                let mut a = (s - 1) & s;
                while a > 0 {
                    let b = s & !a;
                    if b != 0 {
                        let left_deep_ok = self.cfg.bushy || b.count_ones() == 1;
                        if left_deep_ok {
                            if let (Some(ca), Some(cb)) = (best.get(&a), best.get(&b)) {
                                let a_tables = tables_of(a, &spec.tables);
                                let b_tables = tables_of(b, &spec.tables);
                                let edges: Vec<JoinEdge> = spec
                                    .edges_between(&a_tables, &b_tables)
                                    .map(|e| orient_edge(e, &a_tables))
                                    .collect();
                                if !edges.is_empty() {
                                    for cand in self.join_candidates(
                                        ca, cb, &edges, rows_s, b, spec,
                                    ) {
                                        if best_cand
                                            .as_ref()
                                            .map(|bc| cand.cost < bc.cost)
                                            .unwrap_or(true)
                                        {
                                            best_cand = Some(cand);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    a = (a - 1) & s;
                }
                if let Some(c) = best_cand {
                    subset_rows.insert(s, rows_s);
                    best.insert(s, c);
                }
            }
        }

        let full: u32 = (1 << n) - 1;
        let join_plan = best
            .remove(&full)
            .ok_or_else(|| RqpError::Planning("no plan found for full join".into()))?;
        Ok(self.finish(join_plan, spec))
    }

    /// Greedy operator ordering (GOO): repeatedly join the connected pair of
    /// components with the smallest estimated output. O(n³) instead of
    /// exponential — the termination heuristic for many-table queries.
    fn plan_greedy(&self, spec: &QuerySpec) -> Result<PhysicalPlan> {
        // Each component: (set of tables, candidate plan).
        let mut components: Vec<(Vec<String>, Cand)> = Vec::new();
        for t in &spec.tables {
            let cand = self.best_access_path(t, spec)?;
            components.push((vec![t.clone()], cand));
        }
        while components.len() > 1 {
            // Find the connected pair with the smallest join output.
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..components.len() {
                for j in i + 1..components.len() {
                    let edges: Vec<JoinEdge> = spec
                        .edges_between(&components[i].0, &components[j].0)
                        .map(|e| orient_edge(e, &components[i].0))
                        .collect();
                    if edges.is_empty() {
                        continue;
                    }
                    let (ri, rj) =
                        (components[i].1.plan.est_rows(), components[j].1.plan.est_rows());
                    let sel: f64 = edges
                        .iter()
                        .map(|e| {
                            self.est.join_selectivity(
                                &e.left_table,
                                &e.left_col,
                                &e.right_table,
                                &e.right_col,
                            )
                        })
                        .product();
                    let rows = ri * rj * sel;
                    if best.map(|(_, _, r)| rows < r).unwrap_or(true) {
                        best = Some((i, j, rows));
                    }
                }
            }
            let (i, j, rows_out) = best.ok_or_else(|| {
                RqpError::Planning("greedy planner: join graph disconnected".into())
            })?;
            // Merge j into i with the cheapest join algorithm for the pair.
            let (tables_j, cand_j) = components.remove(j);
            let (tables_i, cand_i) = components.remove(i);
            let edges: Vec<JoinEdge> = spec
                .edges_between(&tables_i, &tables_j)
                .map(|e| orient_edge(e, &tables_i))
                .collect();
            // Reuse the DP's candidate generator; b_mask = 0 disables INL
            // (single-table detection), acceptable for the heuristic path.
            let cands = self.join_candidates(&cand_i, &cand_j, &edges, rows_out, 0, spec);
            let joined = cands
                .into_iter()
                .min_by(|a, b| a.cost.total_cmp(&b.cost))
                .ok_or_else(|| RqpError::Planning("greedy planner: no join candidate".into()))?;
            let mut tables = tables_i;
            tables.extend(tables_j);
            components.push((tables, joined));
        }
        let (_, cand) = components.pop().expect("one component remains");
        Ok(self.finish(cand, spec))
    }

    /// Attach aggregation / ordering / limit / projection.
    fn finish(&self, cand: Cand, spec: &QuerySpec) -> PhysicalPlan {
        let mut plan = cand.plan;
        let mut cost = cand.cost;
        let mut rows = plan.est_rows();
        if !spec.aggs.is_empty() || !spec.group_by.is_empty() {
            let groups = if spec.group_by.is_empty() { 1.0 } else { rows.sqrt().max(1.0) };
            cost += self.cm.hash_agg(rows, groups);
            rows = groups;
            plan = PhysicalPlan::Aggregate {
                input: Box::new(plan),
                group_by: spec.group_by.clone(),
                aggs: spec.aggs.clone(),
                est_rows: rows,
                est_cost: cost,
            };
        }
        if !spec.order_by.is_empty() {
            match spec.limit {
                Some(k) => {
                    cost += self.cm.top_n(rows, k as f64);
                    rows = rows.min(k as f64);
                    plan = PhysicalPlan::TopN {
                        input: Box::new(plan),
                        keys: spec.order_by.clone(),
                        n: k,
                        est_rows: rows,
                        est_cost: cost,
                    };
                }
                None => {
                    cost += self.cm.sort(rows);
                    plan = PhysicalPlan::Sort {
                        input: Box::new(plan),
                        keys: spec.order_by.clone(),
                        est_rows: rows,
                        est_cost: cost,
                    };
                }
            }
        } else if let Some(k) = spec.limit {
            // LIMIT without ORDER BY: TopN on nothing would need keys; just
            // truncate via TopN on the first projected/first column is wrong —
            // emulate with TopN over no keys is unsupported, so leave the
            // limit to the caller. (Deterministic engine: callers truncate.)
            let _ = k;
        }
        if let Some(cols) = &spec.projections {
            cost += self.cm.materialize(rows);
            plan = PhysicalPlan::Project {
                input: Box::new(plan),
                columns: cols.clone(),
                est_rows: rows,
                est_cost: cost,
            };
        }
        plan
    }

    fn subset_cardinality(&self, s: u32, spec: &QuerySpec, base: &HashMap<u32, f64>) -> f64 {
        let mut rows = 1.0;
        for (i, _) in spec.tables.iter().enumerate() {
            let m = 1u32 << i;
            if s & m != 0 {
                rows *= base.get(&m).copied().unwrap_or(1.0);
            }
        }
        for e in &spec.joins {
            let li = spec.tables.iter().position(|t| *t == e.left_table);
            let ri = spec.tables.iter().position(|t| *t == e.right_table);
            if let (Some(li), Some(ri)) = (li, ri) {
                if s & (1 << li) != 0 && s & (1 << ri) != 0 {
                    rows *= self.est.join_selectivity(
                        &e.left_table,
                        &e.left_col,
                        &e.right_table,
                        &e.right_col,
                    );
                }
            }
        }
        rows.max(0.0)
    }

    fn join_candidates(
        &self,
        ca: &Cand,
        cb: &Cand,
        edges: &[JoinEdge],
        rows_out: f64,
        b_mask: u32,
        spec: &QuerySpec,
    ) -> Vec<Cand> {
        let mut out = Vec::new();
        let (ra, rb) = (ca.plan.est_rows(), cb.plan.est_rows());
        let base_cost = ca.cost + cb.cost;
        let algos = self.cfg.join_algos;
        if algos.hash {
            // Build on the smaller side (B here); the DP also sees the
            // mirrored partition, so both orientations are explored.
            let cost = base_cost + self.cm.hash_join(rb, ra, rows_out);
            out.push(Cand {
                plan: PhysicalPlan::HashJoin {
                    left: Box::new(ca.plan.clone()),
                    right: Box::new(cb.plan.clone()),
                    edges: edges.to_vec(),
                    est_rows: rows_out,
                    est_cost: cost,
                },
                cost,
            });
        }
        if algos.merge {
            let cost = base_cost
                + self.cm.sort(ra)
                + self.cm.sort(rb)
                + self.cm.merge_join(ra, rb, rows_out);
            out.push(Cand {
                plan: PhysicalPlan::MergeJoin {
                    left: Box::new(ca.plan.clone()),
                    right: Box::new(cb.plan.clone()),
                    edges: edges.to_vec(),
                    sort_left: true,
                    sort_right: true,
                    est_rows: rows_out,
                    est_cost: cost,
                },
                cost,
            });
        }
        if algos.gjoin {
            let cost = base_cost + self.cm.g_join(ra, rb, rows_out, false, false);
            out.push(Cand {
                plan: PhysicalPlan::GJoin {
                    left: Box::new(ca.plan.clone()),
                    right: Box::new(cb.plan.clone()),
                    edges: edges.to_vec(),
                    left_sorted: false,
                    right_sorted: false,
                    est_rows: rows_out,
                    est_cost: cost,
                },
                cost,
            });
        }
        if algos.inl && b_mask.count_ones() == 1 {
            // B is a single base table: probing its index replaces B's access
            // path entirely (cb's cost is not paid).
            let bi = b_mask.trailing_zeros() as usize;
            let b_table = &spec.tables[bi];
            for e in edges {
                if &e.right_table != b_table {
                    continue;
                }
                if let Some(ix) = self.catalog.index_on(b_table, &e.right_col) {
                    let inner_rows = self.est.table_rows(b_table);
                    let js = self.est.join_selectivity(
                        &e.left_table,
                        &e.left_col,
                        &e.right_table,
                        &e.right_col,
                    );
                    let matches_total = ra * inner_rows * js;
                    let b_pred = spec.local_preds.get(b_table);
                    let mut cost = ca.cost
                        + self.cm.index_nl_join(
                            ra,
                            inner_rows,
                            matches_total,
                            ix.clustered(),
                        );
                    let mut rows = matches_total;
                    if let Some(p) = b_pred {
                        cost += self.cm.filter(matches_total);
                        rows *= self.est.selectivity(b_table, p);
                    }
                    // Residual edges beyond the probe edge: applied by the
                    // probe output check — approximate with edge selectivity
                    // (the executor enforces the first edge only; extra
                    // edges become residual filters).
                    let residual_edges: Vec<&JoinEdge> =
                        edges.iter().filter(|x| *x != e).collect();
                    if !residual_edges.is_empty() {
                        continue; // keep the executor semantics exact
                    }
                    out.push(Cand {
                        plan: PhysicalPlan::IndexNlJoin {
                            outer: Box::new(ca.plan.clone()),
                            inner_table: b_table.clone(),
                            inner_index: ix.name().to_owned(),
                            edge: e.clone(),
                            inner_residual: b_pred.cloned(),
                            est_rows: rows,
                            est_cost: cost,
                        },
                        cost,
                    });
                }
            }
        }
        out
    }

    /// Best access path for one base table.
    fn best_access_path(&self, table: &str, spec: &QuerySpec) -> Result<Cand> {
        let t = self.catalog.table(table)?;
        let base = self.est.table_rows(table);
        let pred = spec.local_preds.get(table);
        let rows = match pred {
            Some(p) => base * self.est.selectivity(table, p),
            None => base,
        };
        let mut cost = self.cm.scan(base);
        if pred.is_some() {
            cost += self.cm.filter(base);
        }
        let mut best = Cand {
            plan: PhysicalPlan::TableScan {
                table: table.to_owned(),
                filter: pred.cloned(),
                est_rows: rows,
                est_cost: cost,
            },
            cost,
        };
        if !self.cfg.use_indexes {
            return Ok(best);
        }
        let Some(p) = pred else { return Ok(best) };
        // Try every indexed column mentioned in the predicate.
        let conjuncts = p.conjuncts();
        let mut tried: std::collections::HashSet<String> = std::collections::HashSet::new();
        for c in &conjuncts {
            let Some(sp) = SimplePred::from_expr(c) else { continue };
            let col = unqualify(sp.column()).to_owned();
            if !tried.insert(col.clone()) {
                continue;
            }
            let Some(ix) = self.catalog.index_on(table, &col) else { continue };
            let (lo, hi, used, residual) = split_range(&conjuncts, &col);
            if used.is_empty() {
                continue;
            }
            let range_filter = Expr::conjoin(used);
            let matched = base * self.est.selectivity(table, &range_filter);
            let mut c_cost = self.cm.index_scan(base, matched, ix.clustered());
            let mut c_rows = matched;
            let residual_expr = if residual.is_empty() {
                None
            } else {
                let r = Expr::conjoin(residual);
                c_cost += self.cm.filter(matched);
                c_rows = matched * self.est.selectivity(table, &r);
                Some(r)
            };
            if c_cost < best.cost {
                best = Cand {
                    plan: PhysicalPlan::IndexScan {
                        table: table.to_owned(),
                        index: ix.name().to_owned(),
                        column: col.clone(),
                        lo,
                        hi,
                        range_filter,
                        residual: residual_expr,
                        est_rows: c_rows,
                        est_cost: c_cost,
                    },
                    cost: c_cost,
                };
            }
        }
        // Composite indexes: equality prefix + range on the next column.
        for mix in self.catalog.multi_indexes_on(table) {
            let mut remaining: Vec<Expr> = conjuncts.clone();
            let mut prefix: Vec<Value> = Vec::new();
            let mut used: Vec<Expr> = Vec::new();
            for col_name in mix.columns() {
                let found = remaining.iter().position(|c| {
                    matches!(
                        SimplePred::from_expr(c),
                        Some(SimplePred::Cmp { op: CmpOp::Eq, ref col, ref value })
                            if unqualify(col) == col_name && !value.is_null()
                    )
                });
                match found {
                    Some(i) => {
                        let c = remaining.remove(i);
                        if let Some(SimplePred::Cmp { value, .. }) = SimplePred::from_expr(&c)
                        {
                            prefix.push(value);
                        }
                        used.push(c);
                    }
                    None => break,
                }
            }
            // Range on the column after the equality prefix.
            let (lo, hi, range_used, residual) = if prefix.len() < mix.columns().len() {
                split_range(&remaining, &mix.columns()[prefix.len()])
            } else {
                (None, None, Vec::new(), remaining.clone())
            };
            if used.is_empty() && range_used.is_empty() {
                continue;
            }
            let mut all_used = used;
            all_used.extend(range_used);
            let range_filter = Expr::conjoin(all_used);
            let matched = base * self.est.selectivity(table, &range_filter);
            let mut c_cost = self.cm.index_scan(base, matched, false);
            let mut c_rows = matched;
            let residual_expr = if residual.is_empty() {
                None
            } else {
                let r = Expr::conjoin(residual);
                c_cost += self.cm.filter(matched);
                c_rows = matched * self.est.selectivity(table, &r);
                Some(r)
            };
            if c_cost < best.cost {
                best = Cand {
                    plan: PhysicalPlan::MultiIndexScan {
                        table: table.to_owned(),
                        index: mix.name().to_owned(),
                        prefix,
                        lo,
                        hi,
                        range_filter,
                        residual: residual_expr,
                        est_rows: c_rows,
                        est_cost: c_cost,
                    },
                    cost: c_cost,
                };
            }
        }
        let _ = t;
        Ok(best)
    }
}

fn unqualify(col: &str) -> &str {
    col.rsplit_once('.').map(|(_, c)| c).unwrap_or(col)
}

fn tables_of(mask: u32, tables: &[String]) -> Vec<String> {
    tables
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, t)| t.clone())
        .collect()
}

fn orient_edge(e: &JoinEdge, left_tables: &[String]) -> JoinEdge {
    if left_tables.contains(&e.left_table) {
        e.clone()
    } else {
        e.oriented_from(&e.right_table).expect("edge touches right table")
    }
}

/// Split conjuncts into an index range on `col` (`lo`, `hi`, used conjuncts)
/// plus residual conjuncts. Strict bounds stay inclusive in the range and are
/// re-checked in the residual (correctness over tightness).
fn split_range(
    conjuncts: &[Expr],
    col: &str,
) -> (Option<Value>, Option<Value>, Vec<Expr>, Vec<Expr>) {
    let mut lo: Option<Value> = None;
    let mut hi: Option<Value> = None;
    let mut used = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        let sp = SimplePred::from_expr(c);
        let on_col = sp
            .as_ref()
            .map(|s| unqualify(s.column()) == col)
            .unwrap_or(false);
        if !on_col {
            residual.push(c.clone());
            continue;
        }
        match sp.expect("checked above") {
            SimplePred::Cmp { op, value, .. } => match op {
                CmpOp::Eq => {
                    tighten_lo(&mut lo, &value);
                    tighten_hi(&mut hi, &value);
                    used.push(c.clone());
                }
                CmpOp::Le => {
                    tighten_hi(&mut hi, &value);
                    used.push(c.clone());
                }
                CmpOp::Ge => {
                    tighten_lo(&mut lo, &value);
                    used.push(c.clone());
                }
                CmpOp::Lt => {
                    tighten_hi(&mut hi, &value);
                    used.push(c.clone());
                    residual.push(c.clone()); // strictness re-checked
                }
                CmpOp::Gt => {
                    tighten_lo(&mut lo, &value);
                    used.push(c.clone());
                    residual.push(c.clone());
                }
                CmpOp::Ne => residual.push(c.clone()),
            },
            SimplePred::Range { lo: l, hi: h, .. } => {
                tighten_lo(&mut lo, &l);
                tighten_hi(&mut hi, &h);
                used.push(c.clone());
            }
            SimplePred::InList { .. } => residual.push(c.clone()),
        }
    }
    (lo, hi, used, residual)
}

fn tighten_lo(lo: &mut Option<Value>, v: &Value) {
    if lo.as_ref().map(|x| v > x).unwrap_or(true) {
        *lo = Some(v.clone());
    }
}

fn tighten_hi(hi: &mut Option<Value>, v: &Value) {
    if hi.as_ref().map(|x| v < x).unwrap_or(true) {
        *hi = Some(v.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Schema, Value};
    use rqp_exec::ExecContext;
    use rqp_stats::{OracleEstimator, StatsEstimator, TableStatsRegistry};
    use rqp_storage::Table;
    use std::rc::Rc;

    /// Three-table star: fact(1000) → dim1(100), dim2(10).
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("d1", DataType::Int),
            ("d2", DataType::Int),
            ("v", DataType::Int),
        ]);
        let mut fact = Table::new("fact", schema);
        for i in 0..1000i64 {
            fact.append(vec![
                Value::Int(i),
                Value::Int(i % 100),
                Value::Int(i % 10),
                Value::Int(i % 50),
            ]);
        }
        c.add_table(fact);
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("a", DataType::Int)]);
        let mut d1 = Table::new("dim1", schema.clone());
        for i in 0..100i64 {
            d1.append(vec![Value::Int(i), Value::Int(i % 4)]);
        }
        c.add_table(d1);
        let mut d2 = Table::new("dim2", schema);
        for i in 0..10i64 {
            d2.append(vec![Value::Int(i), Value::Int(i % 2)]);
        }
        c.add_table(d2);
        c.create_index("ix_fact_id", "fact", "id").unwrap();
        c.create_index("ix_dim1_k", "dim1", "k").unwrap();
        c
    }

    fn stats_est(c: &Catalog) -> StatsEstimator {
        StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(c, 32)))
    }

    fn star_spec() -> QuerySpec {
        QuerySpec::new()
            .join("fact", "d1", "dim1", "k")
            .join("fact", "d2", "dim2", "k")
            .filter("fact", col("fact.v").lt(lit(5i64)))
    }

    #[test]
    fn plans_and_executes_star_join() {
        let c = catalog();
        let est = stats_est(&c);
        let plan = plan(&star_spec(), &c, &est, PlannerConfig::default()).unwrap();
        let ctx = ExecContext::unbounded();
        let mut built = plan.build(&c, &ctx, None).unwrap();
        let rows = built.run();
        // fact.v < 5 → v ∈ 0..5 → 100 fact rows; each matches 1 dim1 + 1 dim2.
        assert_eq!(rows.len(), 100);
    }

    #[test]
    fn plan_result_invariant_to_table_declaration_order() {
        let c = catalog();
        let est = stats_est(&c);
        let spec_a = star_spec();
        let spec_b = QuerySpec::new()
            .table("dim2")
            .table("dim1")
            .join("fact", "d1", "dim1", "k")
            .join("fact", "d2", "dim2", "k")
            .filter("fact", col("fact.v").lt(lit(5i64)));
        let ctx = ExecContext::unbounded();
        let pa = plan(&spec_a, &c, &est, PlannerConfig::default()).unwrap();
        let pb = plan(&spec_b, &c, &est, PlannerConfig::default()).unwrap();
        let na = pa.build(&c, &ctx, None).unwrap().run().len();
        let nb = pb.build(&c, &ctx, None).unwrap().run().len();
        assert_eq!(na, nb);
    }

    #[test]
    fn picks_index_scan_for_selective_predicate() {
        let c = catalog();
        let est = stats_est(&c);
        let spec = QuerySpec::new()
            .table("fact")
            .filter("fact", col("fact.id").between(10i64, 19i64));
        let p = plan(&spec, &c, &est, PlannerConfig::default()).unwrap();
        assert!(
            p.fingerprint().contains("ixscan"),
            "selective range should use the index: {}",
            p.fingerprint()
        );
        let ctx = ExecContext::unbounded();
        assert_eq!(p.build(&c, &ctx, None).unwrap().run().len(), 10);
    }

    #[test]
    fn picks_table_scan_for_wide_predicate() {
        let c = catalog();
        let est = stats_est(&c);
        let spec = QuerySpec::new()
            .table("fact")
            .filter("fact", col("fact.id").ge(lit(0i64)));
        let p = plan(&spec, &c, &est, PlannerConfig::default()).unwrap();
        // Clustered index is also fine (≤ scan); but never an unclustered
        // blowup. Either scan or ixscan acceptable — check it runs complete.
        let ctx = ExecContext::unbounded();
        assert_eq!(p.build(&c, &ctx, None).unwrap().run().len(), 1000);
    }

    #[test]
    fn strict_bounds_are_enforced() {
        let c = catalog();
        let est = stats_est(&c);
        let spec = QuerySpec::new()
            .table("fact")
            .filter("fact", col("fact.id").gt(lit(10i64)).and(col("fact.id").lt(lit(20i64))));
        let p = plan(&spec, &c, &est, PlannerConfig::default()).unwrap();
        let ctx = ExecContext::unbounded();
        let rows = p.build(&c, &ctx, None).unwrap().run();
        assert_eq!(rows.len(), 9, "strict bounds: 11..=19");
    }

    #[test]
    fn oracle_vs_stats_same_result_rows() {
        let c = Rc::new(catalog());
        let oracle = OracleEstimator::new(Rc::clone(&c));
        let stats = stats_est(&c);
        let ctx = ExecContext::unbounded();
        let po = plan(&star_spec(), &c, &oracle, PlannerConfig::default()).unwrap();
        let ps = plan(&star_spec(), &c, &stats, PlannerConfig::default()).unwrap();
        assert_eq!(
            po.build(&c, &ctx, None).unwrap().run().len(),
            ps.build(&c, &ctx, None).unwrap().run().len(),
            "plan choice must never change the answer"
        );
    }

    #[test]
    fn bushy_at_least_as_good_as_left_deep() {
        let c = catalog();
        let est = stats_est(&c);
        let ld = plan(&star_spec(), &c, &est, PlannerConfig::default()).unwrap();
        let bushy = plan(
            &star_spec(),
            &c,
            &est,
            PlannerConfig { bushy: true, ..Default::default() },
        )
        .unwrap();
        assert!(bushy.est_cost() <= ld.est_cost() + 1e-9);
    }

    #[test]
    fn gjoin_only_repertoire() {
        let c = catalog();
        let est = stats_est(&c);
        let cfg = PlannerConfig { join_algos: JoinAlgos::gjoin_only(), ..Default::default() };
        let p = plan(&star_spec(), &c, &est, cfg).unwrap();
        assert!(p.fingerprint().contains("gj("), "{}", p.fingerprint());
        let ctx = ExecContext::unbounded();
        assert_eq!(p.build(&c, &ctx, None).unwrap().run().len(), 100);
    }

    #[test]
    fn aggregation_pipeline_plans() {
        let c = catalog();
        let est = stats_est(&c);
        let spec = star_spec()
            .aggregate(
                &["dim2.a"],
                vec![rqp_exec::AggSpec::count_star("n")],
            )
            .order(&["n"]);
        let p = plan(&spec, &c, &est, PlannerConfig::default()).unwrap();
        let ctx = ExecContext::unbounded();
        let rows = p.build(&c, &ctx, None).unwrap().run();
        assert_eq!(rows.len(), 2, "dim2.a ∈ {{0,1}}");
        let total: i64 = rows.iter().map(|r| r[1].as_int().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn rejects_oversized_and_disconnected() {
        let c = catalog();
        let est = stats_est(&c);
        let cfg = PlannerConfig { max_tables: 2, ..Default::default() };
        assert!(plan(&star_spec(), &c, &est, cfg).is_err());
        let disconnected = QuerySpec::new().table("fact").table("dim1");
        assert!(plan(&disconnected, &c, &est, PlannerConfig::default()).is_err());
    }

    #[test]
    fn composite_index_serves_eq_plus_range() {
        // The break-out's example: an index on (A, B, C) should be used for
        // "A = 4 AND B BETWEEN 7 AND 11".
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("cc", DataType::Int),
        ]);
        let mut t = Table::new("t", schema);
        for i in 0..20_000i64 {
            t.append(vec![Value::Int(i % 50), Value::Int(i % 20), Value::Int(i)]);
        }
        c.add_table(t);
        c.create_multi_index("ix_abc", "t", &["a", "b", "cc"]).unwrap();
        let est = StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(&c, 32)));
        let spec = QuerySpec::new().table("t").filter(
            "t",
            col("t.a").eq(lit(4i64)).and(col("t.b").between(7i64, 11i64)),
        );
        let p = plan(&spec, &c, &est, PlannerConfig::default()).unwrap();
        assert!(
            p.fingerprint().contains("mixscan"),
            "composite index expected: {}",
            p.fingerprint()
        );
        let ctx = ExecContext::unbounded();
        let rows = p.build(&c, &ctx, None).unwrap().run();
        let truth = (0..20_000i64)
            .filter(|i| i % 50 == 4 && (7..=11).contains(&(i % 20)))
            .count();
        assert_eq!(rows.len(), truth);
    }

    #[test]
    fn composite_index_needs_a_leading_prefix() {
        // A predicate only on the second column cannot use (a, b) as an
        // equality-prefix path; the planner must fall back to a scan.
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..5000i64 {
            t.append(vec![Value::Int(i % 50), Value::Int(i % 20)]);
        }
        c.add_table(t);
        c.create_multi_index("ix_ab", "t", &["a", "b"]).unwrap();
        let est = StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(&c, 16)));
        let spec = QuerySpec::new()
            .table("t")
            .filter("t", col("t.b").eq(lit(3i64)));
        let p = plan(&spec, &c, &est, PlannerConfig::default()).unwrap();
        assert!(p.fingerprint().contains("scan(t)"), "{}", p.fingerprint());
        let ctx = ExecContext::unbounded();
        assert_eq!(p.build(&c, &ctx, None).unwrap().run().len(), 250);
    }

    #[test]
    fn greedy_fallback_handles_many_tables() {
        // A 15-table chain: DP would need 2^15 subsets; the greedy path
        // handles it and still produces a correct, executable plan.
        let mut c = Catalog::new();
        let n_tables = 15usize;
        for t in 0..n_tables {
            let schema = Schema::from_pairs(&[("k", DataType::Int)]);
            let mut table = Table::new(format!("t{t}"), schema);
            for i in 0..50i64 {
                table.append(vec![Value::Int(i)]);
            }
            c.add_table(table);
        }
        let mut spec = QuerySpec::new();
        for t in 0..n_tables - 1 {
            spec = spec.join(&format!("t{t}"), "k", &format!("t{}", t + 1), "k");
        }
        spec = spec.filter("t0", col("t0.k").lt(lit(5i64)));
        let est = stats_est(&c);
        let p = plan(&spec, &c, &est, PlannerConfig::default()).unwrap();
        let ctx = ExecContext::unbounded();
        let rows = p.build(&c, &ctx, None).unwrap().run();
        // 5 surviving keys, each matching exactly once per table.
        assert_eq!(rows.len(), 5);
        // And the hard cap still guards.
        let cfg = PlannerConfig { max_tables: 10, ..Default::default() };
        assert!(plan(&spec, &c, &est, cfg).is_err());
    }

    #[test]
    fn greedy_matches_dp_on_small_queries() {
        let c = catalog();
        let est = stats_est(&c);
        let dp = plan(&star_spec(), &c, &est, PlannerConfig::default()).unwrap();
        let greedy = plan(
            &star_spec(),
            &c,
            &est,
            PlannerConfig { greedy_above: 1, ..Default::default() },
        )
        .unwrap();
        let ctx = ExecContext::unbounded();
        assert_eq!(
            dp.build(&c, &ctx, None).unwrap().run().len(),
            greedy.build(&c, &ctx, None).unwrap().run().len()
        );
        // Greedy can never beat exhaustive DP on estimated cost.
        assert!(greedy.est_cost() >= dp.est_cost() - 1e-9);
    }

    #[test]
    fn inl_considered_when_index_exists() {
        let c = catalog();
        let est = stats_est(&c);
        // Highly selective fact filter → tiny outer → INL into dim1 is ideal.
        let spec = QuerySpec::new()
            .join("fact", "d1", "dim1", "k")
            .filter("fact", col("fact.id").between(0i64, 4i64));
        let p = plan(&spec, &c, &est, PlannerConfig::default()).unwrap();
        let ctx = ExecContext::unbounded();
        let rows = p.build(&c, &ctx, None).unwrap().run();
        assert_eq!(rows.len(), 5);
    }
}
