//! Parametric plan caching (PQO-lite).
//!
//! Queries with parameter markers are re-executed with many parameter
//! values; re-optimizing each invocation is wasted work when nearby
//! parameters share an optimal plan, but blindly reusing one cached plan is
//! the classic parameter-sniffing hazard the seminar's "late binding"
//! session dissects. The cache here buckets parameters by the *estimated
//! selectivity* of the parameterized predicate (log-scale buckets) and keeps
//! one plan per bucket — the progressive-parametric middle ground.

use crate::physical::PhysicalPlan;
use rqp_common::Result;
use std::collections::HashMap;

/// Whether a lookup was served from cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqoOutcome {
    /// Plan reused from the cache.
    Hit,
    /// Plan newly optimized and inserted.
    Miss,
}

/// A per-query-template plan cache bucketed by selectivity.
#[derive(Default)]
pub struct ParametricPlanCache {
    plans: HashMap<(String, i32), PhysicalPlan>,
    hits: usize,
    misses: usize,
    /// Buckets per decade of selectivity.
    resolution: f64,
}

impl ParametricPlanCache {
    /// Cache with `buckets_per_decade` selectivity resolution (2 is a good
    /// default: buckets at ×√10 spacing).
    pub fn new(buckets_per_decade: f64) -> Self {
        ParametricPlanCache {
            plans: HashMap::new(),
            hits: 0,
            misses: 0,
            resolution: buckets_per_decade.max(0.1),
        }
    }

    fn bucket(&self, selectivity: f64) -> i32 {
        let s = selectivity.clamp(1e-12, 1.0);
        (s.log10() * self.resolution).floor() as i32
    }

    /// Get the cached plan for `(template, selectivity)` or compute one with
    /// `optimize` and cache it.
    pub fn get_or_plan(
        &mut self,
        template: &str,
        selectivity: f64,
        optimize: impl FnOnce() -> Result<PhysicalPlan>,
    ) -> Result<(PhysicalPlan, PqoOutcome)> {
        let key = (template.to_owned(), self.bucket(selectivity));
        if let Some(p) = self.plans.get(&key) {
            self.hits += 1;
            return Ok((p.clone(), PqoOutcome::Hit));
        }
        let p = optimize()?;
        self.plans.insert(key, p.clone());
        self.misses += 1;
        Ok((p, PqoOutcome::Miss))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses (optimizations) so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True if no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Drop all cached plans (e.g. after a statistics refresh).
    pub fn invalidate(&mut self) {
        self.plans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_plan(rows: f64) -> PhysicalPlan {
        PhysicalPlan::TableScan {
            table: "t".into(),
            filter: None,
            est_rows: rows,
            est_cost: rows,
        }
    }

    #[test]
    fn same_bucket_hits() {
        let mut cache = ParametricPlanCache::new(2.0);
        let (_, o1) = cache
            .get_or_plan("q1", 0.010, || Ok(dummy_plan(10.0)))
            .unwrap();
        assert_eq!(o1, PqoOutcome::Miss);
        let (p, o2) = cache
            .get_or_plan("q1", 0.012, || Ok(dummy_plan(999.0)))
            .unwrap();
        assert_eq!(o2, PqoOutcome::Hit);
        assert_eq!(p.est_rows(), 10.0, "cached plan reused, not re-optimized");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distant_selectivities_miss() {
        let mut cache = ParametricPlanCache::new(2.0);
        cache.get_or_plan("q1", 0.001, || Ok(dummy_plan(1.0))).unwrap();
        let (_, o) = cache
            .get_or_plan("q1", 0.5, || Ok(dummy_plan(2.0)))
            .unwrap();
        assert_eq!(o, PqoOutcome::Miss);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn templates_are_isolated() {
        let mut cache = ParametricPlanCache::new(2.0);
        cache.get_or_plan("q1", 0.01, || Ok(dummy_plan(1.0))).unwrap();
        let (_, o) = cache
            .get_or_plan("q2", 0.01, || Ok(dummy_plan(2.0)))
            .unwrap();
        assert_eq!(o, PqoOutcome::Miss);
    }

    #[test]
    fn invalidate_clears() {
        let mut cache = ParametricPlanCache::new(2.0);
        cache.get_or_plan("q1", 0.01, || Ok(dummy_plan(1.0))).unwrap();
        assert!(!cache.is_empty());
        cache.invalidate();
        assert!(cache.is_empty());
        let (_, o) = cache
            .get_or_plan("q1", 0.01, || Ok(dummy_plan(1.0)))
            .unwrap();
        assert_eq!(o, PqoOutcome::Miss);
    }

    #[test]
    fn extreme_selectivities_dont_panic() {
        let mut cache = ParametricPlanCache::new(2.0);
        for s in [0.0, 1e-30, 1.0, 2.0, f64::NAN] {
            let r = cache.get_or_plan("q", s, || Ok(dummy_plan(1.0)));
            assert!(r.is_ok());
        }
    }
}
