//! The optimizer's cost model.
//!
//! Formulas mirror the executor's cost-clock charges operator by operator, so
//! that with *correct* cardinalities the estimated cost equals the charged
//! cost (up to page-rounding). That calibration is deliberate: the seminar's
//! break-outs separate "cardinality model" from "cost model" errors, and this
//! testbed pins the cost model so experiments isolate the cardinality model —
//! the component everyone agrees dominates ("cardinality estimation has the
//! biggest impact, which far eclipses any other decision", Lohman).

use rqp_common::{CostModelParams, DEFAULT_BATCH_ROWS};

/// How a plan fragment executes: row-at-a-time Volcano iterators, or the
/// batch-at-a-time columnar twins behind `RQP_BATCH`.
///
/// The two modes charge **identical** clock units (the batch operators'
/// charge-parity contract), so `ExecMode` never changes a charged-cost
/// estimate. What differs is *interpretation overhead* — virtual `next()`
/// dispatch and per-row `Vec<Value>` materialization — which the batch path
/// pays once per [`DEFAULT_BATCH_ROWS`]-row batch instead of once per row.
/// [`CostModel::pipeline_time`] models that difference for plan selection
/// and for predicting the `a09_batch_speedup` measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Row-at-a-time `Operator::next()` pipeline.
    Scalar,
    /// Columnar `ColumnBatch` pipeline (dictionary-encoded strings).
    Batch,
}

/// Cost model parameterized like the executor's clock, plus the memory
/// budget used for spill prediction.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Clock parameters (weights per cost category).
    pub params: CostModelParams,
    /// Workspace budget in rows (mirrors the memory governor).
    pub memory_rows: f64,
    /// Modeled interpretation overhead of one operator boundary crossing
    /// (virtual dispatch + row materialization), in `cpu_tuple` units. Not
    /// charged by the clock — it prices real time, not modeled work — so it
    /// never appears in the charged-cost formulas below.
    pub dispatch_overhead: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            params: CostModelParams::default(),
            memory_rows: f64::INFINITY,
            dispatch_overhead: 4.0,
        }
    }
}

impl CostModel {
    /// Model with a bounded workspace.
    pub fn with_memory(memory_rows: f64) -> Self {
        CostModel { memory_rows, ..CostModel::default() }
    }

    fn pages(&self, rows: f64) -> f64 {
        (rows / self.params.rows_per_page).ceil().max(0.0)
    }

    /// Effective memory grant (mirrors `MemoryGovernor::grant`).
    fn grant(&self, want: f64) -> f64 {
        want.min(self.memory_rows).max(100.0)
    }

    /// Sequential scan of `rows`.
    pub fn scan(&self, rows: f64) -> f64 {
        self.pages(rows) * self.params.seq_page + rows * self.params.cpu_tuple
    }

    /// Filter applied to `rows` input tuples.
    pub fn filter(&self, rows: f64) -> f64 {
        rows * self.params.cpu_compare
    }

    /// Index scan returning `matched` of `entries` rows.
    pub fn index_scan(&self, entries: f64, matched: f64, clustered: bool) -> f64 {
        let descent = entries.max(2.0).log2() * self.params.cpu_compare;
        let fetch = if clustered {
            self.pages(matched) * self.params.seq_page
        } else {
            matched * self.params.rand_page
        };
        descent + fetch + matched * self.params.cpu_tuple
    }

    /// Hash join: build `build` rows, probe `probe` rows, emit `out`.
    pub fn hash_join(&self, build: f64, probe: f64, out: f64) -> f64 {
        let mut cost = build * self.params.hash_build
            + probe * self.params.hash_probe
            + out * self.params.cpu_tuple;
        let grant = self.grant(build);
        if build > grant {
            let frac = 1.0 - grant / build;
            cost += self.pages(build * frac) * self.params.spill_page;
            cost += self.pages(probe * frac) * self.params.spill_page;
        }
        cost
    }

    /// Merge join over sorted inputs of `l` and `r` rows emitting `out`.
    pub fn merge_join(&self, l: f64, r: f64, out: f64) -> f64 {
        (l + r) * self.params.cpu_compare + out * self.params.cpu_tuple
    }

    /// Full sort of `n` rows (run generation + spill beyond the grant).
    pub fn sort(&self, n: f64) -> f64 {
        if n <= 1.0 {
            return 0.0;
        }
        let mut cost = n * n.log2() * self.params.cpu_compare + n * self.params.cpu_tuple;
        let grant = self.grant(n);
        if n > grant {
            cost += self.pages(n - grant) * self.params.spill_page;
            let runs = (n / grant).ceil().max(2.0);
            cost += n * runs.log2() * self.params.cpu_compare;
        }
        cost
    }

    /// Index-nested-loop join: `outer` probes into an index of `entries`
    /// rows, matching `matches_total` rows overall.
    pub fn index_nl_join(
        &self,
        outer: f64,
        entries: f64,
        matches_total: f64,
        clustered: bool,
    ) -> f64 {
        let descents = outer * entries.max(2.0).log2() * self.params.cpu_compare;
        let fetch = if clustered {
            // ≤ one random page per matching probe (batched per key).
            outer.min(matches_total) * self.params.rand_page
        } else {
            matches_total * self.params.rand_page
        };
        descents + fetch + matches_total * self.params.cpu_tuple
    }

    /// Block-nested-loop join.
    pub fn bnl_join(&self, l: f64, r: f64, out: f64) -> f64 {
        r * self.params.cpu_tuple
            + l * r * self.params.cpu_compare
            + out * self.params.cpu_tuple
    }

    /// Generalized join: run generation for unsorted inputs, then merge.
    pub fn g_join(&self, l: f64, r: f64, out: f64, l_sorted: bool, r_sorted: bool) -> f64 {
        let prep = |n: f64, sorted: bool| -> f64 {
            if n <= 1.0 {
                return 0.0;
            }
            if sorted {
                n * self.params.cpu_compare
            } else {
                self.sort(n)
            }
        };
        prep(l, l_sorted) + prep(r, r_sorted) + self.merge_join(l, r, out)
    }

    /// Hash aggregation of `n` input rows into `groups` output rows.
    pub fn hash_agg(&self, n: f64, groups: f64) -> f64 {
        n * self.params.hash_build + groups * self.params.cpu_tuple
    }

    /// Materialization of `n` rows (CHECK operators, temp results).
    pub fn materialize(&self, n: f64) -> f64 {
        n * self.params.cpu_tuple
    }

    /// Top-N over `n` rows.
    pub fn top_n(&self, n: f64, limit: f64) -> f64 {
        n * (limit.max(2.0).log2() + 1.0) * self.params.cpu_compare
    }

    // ----- batch vs scalar time model -------------------------------------

    /// Interpretation overhead (in `cpu_tuple` units) of pushing `rows` rows
    /// through `operators` pipeline stages in the given mode. Scalar pays one
    /// boundary crossing per row per stage; batch pays one per
    /// [`DEFAULT_BATCH_ROWS`]-row batch per stage, plus one `cpu_tuple` of
    /// residual per-row work (the typed inner loop body) so the batch path
    /// never models as free.
    pub fn interpretation_overhead(&self, rows: f64, operators: f64, mode: ExecMode) -> f64 {
        let per_stage = match mode {
            ExecMode::Scalar => rows * self.dispatch_overhead,
            ExecMode::Batch => {
                (rows / DEFAULT_BATCH_ROWS as f64).ceil() * self.dispatch_overhead + rows
            }
        };
        per_stage * operators * self.params.cpu_tuple
    }

    /// Predicted elapsed time of a pipeline: the charged work (identical in
    /// both modes by the batch operators' charge-parity contract) plus the
    /// mode's interpretation overhead. Use for plan selection between a
    /// scalar plan and its batch twin; never for charged-cost accounting.
    pub fn pipeline_time(&self, charged: f64, rows: f64, operators: f64, mode: ExecMode) -> f64 {
        charged + self.interpretation_overhead(rows, operators, mode)
    }

    /// Predicted scalar/batch elapsed-time ratio for a pipeline whose charged
    /// work is `charged` — the modeled analogue of the `a09_batch_speedup`
    /// measurement. Greater than 1.0 whenever interpretation overhead is a
    /// visible fraction of the work, approaching 1.0 as charged work
    /// dominates (I/O-bound pipelines gain little from batching).
    pub fn predicted_batch_speedup(&self, charged: f64, rows: f64, operators: f64) -> f64 {
        let scalar = self.pipeline_time(charged, rows, operators, ExecMode::Scalar);
        let batch = self.pipeline_time(charged, rows, operators, ExecMode::Batch);
        if batch <= 0.0 {
            return 1.0;
        }
        scalar / batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_matches_executor_formula() {
        let m = CostModel::default();
        // 1000 rows = 10 pages * 1.0 + 1000 * 0.005
        assert!((m.scan(1000.0) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn unclustered_index_beats_scan_only_at_low_selectivity() {
        let m = CostModel::default();
        let entries = 100_000.0;
        let scan = m.scan(entries);
        let cheap = m.index_scan(entries, 100.0, false);
        let expensive = m.index_scan(entries, 50_000.0, false);
        assert!(cheap < scan, "low selectivity: index wins");
        assert!(expensive > scan, "high selectivity: scan wins");
    }

    #[test]
    fn clustered_index_always_at_most_scan() {
        let m = CostModel::default();
        for matched in [10.0, 1000.0, 100_000.0] {
            assert!(m.index_scan(100_000.0, matched, true) <= m.scan(100_000.0) + 1.0);
        }
    }

    #[test]
    fn hash_join_spill_increases_cost() {
        let bounded = CostModel::with_memory(1_000.0);
        let unbounded = CostModel::default();
        let small = bounded.hash_join(500.0, 10_000.0, 10_000.0);
        assert!(
            (small - unbounded.hash_join(500.0, 10_000.0, 10_000.0)).abs() < 1e-9,
            "fits in memory: same cost"
        );
        let big_bounded = bounded.hash_join(50_000.0, 10_000.0, 10_000.0);
        let big_unbounded = unbounded.hash_join(50_000.0, 10_000.0, 10_000.0);
        assert!(big_bounded > big_unbounded);
    }

    #[test]
    fn gjoin_tracks_best_of_both_worlds() {
        let m = CostModel::default();
        let (l, r, out) = (10_000.0, 10_000.0, 10_000.0);
        let g_sorted = m.g_join(l, r, out, true, true);
        let merge = m.merge_join(l, r, out);
        // g-join adds one verification pass of comparisons over merge join.
        assert!((g_sorted - merge) / merge < 0.5, "sorted: ≈ merge join");
        let g_unsorted = m.g_join(l, r, out, false, false);
        let hash = m.hash_join(l, r, out);
        assert!(
            g_unsorted < hash * 6.0,
            "unsorted: within a small factor of hash ({g_unsorted} vs {hash})"
        );
    }

    #[test]
    fn sort_spills_beyond_memory() {
        let m = CostModel::with_memory(1_000.0);
        let fits = m.sort(900.0);
        let spills = m.sort(50_000.0);
        assert!(spills > fits);
        let unbounded = CostModel::default();
        assert!(spills > unbounded.sort(50_000.0));
    }

    #[test]
    fn degenerate_inputs() {
        let m = CostModel::default();
        assert_eq!(m.sort(0.0), 0.0);
        assert_eq!(m.sort(1.0), 0.0);
        assert!(m.scan(0.0) >= 0.0);
        assert!(m.hash_join(0.0, 0.0, 0.0) == 0.0);
    }

    #[test]
    fn exec_mode_never_changes_charged_cost() {
        // The charge-parity contract: batch twins charge identical clock
        // units, so ExecMode only enters via the overhead term.
        let m = CostModel::default();
        let charged = m.scan(100_000.0) + m.filter(100_000.0);
        let scalar = m.pipeline_time(charged, 100_000.0, 2.0, ExecMode::Scalar);
        let batch = m.pipeline_time(charged, 100_000.0, 2.0, ExecMode::Batch);
        assert!((scalar - charged) >= 0.0 && (batch - charged) >= 0.0);
        assert!(
            m.interpretation_overhead(100_000.0, 2.0, ExecMode::Batch)
                < m.interpretation_overhead(100_000.0, 2.0, ExecMode::Scalar),
            "batch amortizes boundary crossings"
        );
    }

    #[test]
    fn predicted_speedup_exceeds_one_and_grows_with_stages() {
        let m = CostModel::default();
        let charged = m.scan(1_000_000.0);
        let two = m.predicted_batch_speedup(charged, 1_000_000.0, 2.0);
        let four = m.predicted_batch_speedup(charged, 1_000_000.0, 4.0);
        assert!(two > 1.0, "batching must predict a win, got {two}");
        assert!(four >= two, "deeper pipelines amortize more dispatch");
        // Cap: the win can't exceed the modeled dispatch ratio.
        assert!(four < m.dispatch_overhead, "got {four}");
    }

    #[test]
    fn io_bound_pipelines_gain_little() {
        let m = CostModel::default();
        // Charged work dwarfing CPU: the predicted speedup approaches 1.
        let s = m.predicted_batch_speedup(1e12, 1_000.0, 2.0);
        assert!((s - 1.0).abs() < 1e-6, "got {s}");
        // Degenerate: empty pipeline predicts no change.
        assert_eq!(m.predicted_batch_speedup(0.0, 0.0, 0.0), 1.0);
    }
}
