//! Plan diagrams and anorexic reduction
//! (Reddy & Haritsa, VLDB 2005; Harish, Darera & Haritsa, PVLDB 2008).
//!
//! A **plan diagram** colors a 2-D selectivity grid by the plan the optimizer
//! picks at each point; production optimizers produce dozens of plans over
//! such grids, most covering slivers of the space. **Anorexic reduction**
//! swallows plans into neighbours whose cost at every swallowed point stays
//! within `(1 + λ)` of the original — the Harish et al. result is that λ =
//! 20% collapses diagrams to ~10 plans or fewer, and the retained plans are
//! intrinsically more robust to selectivity estimation error. Experiment E10
//! reproduces the reduction-vs-λ curve.

use crate::physical::PhysicalPlan;
use crate::planner::{plan as plan_query, PlannerConfig};
use crate::query::QuerySpec;
use crate::CostModel;
use rqp_common::{Expr, Result, RqpError};
use rqp_stats::CardEstimator;
use rqp_storage::Catalog;
use std::collections::HashMap;

/// Overrides the *local-predicate selectivity* of chosen tables, leaving
/// everything else to the inner estimator. This is how the diagram axes
/// become exogenous knobs.
pub struct SelectivityOverrideEstimator<'a> {
    inner: &'a dyn CardEstimator,
    overrides: HashMap<String, f64>,
}

impl<'a> SelectivityOverrideEstimator<'a> {
    /// Wrap `inner`, pinning each `(table, selectivity)` pair.
    pub fn new(inner: &'a dyn CardEstimator, overrides: &[(&str, f64)]) -> Self {
        SelectivityOverrideEstimator {
            inner,
            overrides: overrides
                .iter()
                .map(|(t, s)| ((*t).to_owned(), s.clamp(0.0, 1.0)))
                .collect(),
        }
    }
}

impl CardEstimator for SelectivityOverrideEstimator<'_> {
    fn table_rows(&self, table: &str) -> f64 {
        self.inner.table_rows(table)
    }

    fn selectivity(&self, table: &str, pred: &Expr) -> f64 {
        match self.overrides.get(table) {
            Some(&s) => s,
            None => self.inner.selectivity(table, pred),
        }
    }

    fn join_selectivity(&self, lt: &str, lc: &str, rt: &str, rc: &str) -> f64 {
        self.inner.join_selectivity(lt, lc, rt, rc)
    }
}

/// A 2-D plan diagram over selectivity axes `(x_table, y_table)`.
pub struct PlanDiagram {
    /// Axis selectivity values (same for x and y by construction).
    pub grid: Vec<f64>,
    /// `assignment[y][x]` = index into `plans`.
    pub assignment: Vec<Vec<usize>>,
    /// Distinct plans, by first appearance.
    pub plans: Vec<PhysicalPlan>,
    /// `costs[plan][y][x]` = plan's estimated cost at that grid point.
    pub costs: Vec<Vec<Vec<f64>>>,
}

impl PlanDiagram {
    /// Generate a diagram for `spec`, varying the local-predicate
    /// selectivities of `x_table` and `y_table` over `grid` (each in (0,1]).
    pub fn generate(
        spec: &QuerySpec,
        catalog: &Catalog,
        base: &dyn CardEstimator,
        cfg: PlannerConfig,
        x_table: &str,
        y_table: &str,
        grid: &[f64],
    ) -> Result<Self> {
        if grid.is_empty() {
            return Err(RqpError::Invalid("empty selectivity grid".into()));
        }
        let cm = CostModel { memory_rows: cfg.memory_rows, ..CostModel::default() };
        let mut plans: Vec<PhysicalPlan> = Vec::new();
        let mut finger_to_id: HashMap<String, usize> = HashMap::new();
        let mut assignment = vec![vec![0usize; grid.len()]; grid.len()];
        for (yi, &sy) in grid.iter().enumerate() {
            for (xi, &sx) in grid.iter().enumerate() {
                let est =
                    SelectivityOverrideEstimator::new(base, &[(x_table, sx), (y_table, sy)]);
                let p = plan_query(spec, catalog, &est, cfg)?;
                let fp = p.fingerprint();
                let id = *finger_to_id.entry(fp).or_insert_with(|| {
                    plans.push(p);
                    plans.len() - 1
                });
                assignment[yi][xi] = id;
            }
        }
        // Cost matrix: every plan at every point.
        let mut costs = vec![vec![vec![0.0; grid.len()]; grid.len()]; plans.len()];
        for (pid, p) in plans.iter().enumerate() {
            for (yi, &sy) in grid.iter().enumerate() {
                for (xi, &sx) in grid.iter().enumerate() {
                    let est = SelectivityOverrideEstimator::new(
                        base,
                        &[(x_table, sx), (y_table, sy)],
                    );
                    costs[pid][yi][xi] = p.reestimate(&est, &cm).1;
                }
            }
        }
        Ok(PlanDiagram { grid: grid.to_vec(), assignment, plans, costs })
    }

    /// Number of distinct plans in the diagram.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// Area (grid-point count) of each plan.
    pub fn areas(&self) -> Vec<usize> {
        let mut areas = vec![0usize; self.plans.len()];
        for row in &self.assignment {
            for &id in row {
                areas[id] += 1;
            }
        }
        areas
    }

    /// ASCII rendering: one letter per plan.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in self.assignment.iter().rev() {
            for &id in row {
                let c = (b'A' + (id % 26) as u8) as char;
                out.push(c);
            }
            out.push('\n');
        }
        out
    }
}

/// The result of anorexic reduction.
pub struct AnorexicReduction {
    /// New assignment (indices into the original diagram's `plans`).
    pub assignment: Vec<Vec<usize>>,
    /// Plans retained.
    pub retained: Vec<usize>,
    /// Worst cost inflation introduced at any reassigned point.
    pub max_inflation: f64,
}

impl AnorexicReduction {
    /// Swallow plans greedily: smallest-area plans first, each absorbed by
    /// the retained plan that covers all its points within `(1 + lambda)`
    /// of the point-optimal cost, if any.
    pub fn reduce(diagram: &PlanDiagram, lambda: f64) -> Self {
        let n = diagram.plans.len();
        let mut order: Vec<usize> = (0..n).collect();
        let areas = diagram.areas();
        order.sort_by_key(|&p| areas[p]);

        let mut replacement: Vec<usize> = (0..n).collect();
        let mut retained: Vec<bool> = vec![true; n];
        let g = diagram.grid.len();

        // Points owned by each plan.
        let mut points: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for yi in 0..g {
            for xi in 0..g {
                points[diagram.assignment[yi][xi]].push((yi, xi));
            }
        }

        let mut max_inflation: f64 = 1.0;
        for &victim in &order {
            if points[victim].is_empty() {
                continue;
            }
            // Try every other retained plan as the swallower, preferring the
            // one with the least worst-case inflation.
            let mut best: Option<(usize, f64)> = None;
            #[allow(clippy::needless_range_loop)]
            for cand in 0..n {
                if cand == victim || !retained[cand] {
                    continue;
                }
                let mut worst: f64 = 1.0;
                let mut ok = true;
                for &(yi, xi) in &points[victim] {
                    let opt = diagram.costs[victim][yi][xi];
                    let alt = diagram.costs[cand][yi][xi];
                    if opt <= 0.0 {
                        ok = false;
                        break;
                    }
                    let infl = alt / opt;
                    if infl > 1.0 + lambda {
                        ok = false;
                        break;
                    }
                    worst = worst.max(infl);
                }
                if ok && best.map(|(_, w)| worst < w).unwrap_or(true) {
                    best = Some((cand, worst));
                }
            }
            if let Some((cand, worst)) = best {
                // Move victim's points to cand.
                let moved = std::mem::take(&mut points[victim]);
                points[cand].extend(moved);
                retained[victim] = false;
                replacement[victim] = cand;
                max_inflation = max_inflation.max(worst);
            }
        }

        // Resolve chains (a swallowed by b swallowed by c).
        let resolve = |mut p: usize| -> usize {
            let mut seen = 0;
            while replacement[p] != p && seen < n {
                p = replacement[p];
                seen += 1;
            }
            p
        };
        let mut assignment = diagram.assignment.clone();
        for row in &mut assignment {
            for id in row.iter_mut() {
                *id = resolve(*id);
            }
        }
        let retained_ids: Vec<usize> =
            (0..n).filter(|&p| retained[p] && areas[p] > 0 || {
                // keep plans that ended up owning points after chains
                assignment.iter().flatten().any(|&id| id == p)
            }).collect();
        AnorexicReduction { assignment, retained: retained_ids, max_inflation }
    }

    /// Number of plans after reduction.
    pub fn plan_count(&self) -> usize {
        let mut ids: Vec<usize> = self.assignment.iter().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Schema, Value};
    use rqp_stats::{StatsEstimator, TableStatsRegistry};
    use rqp_storage::Table;
    use std::rc::Rc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, n) in [("r", 10_000i64), ("s", 2_000i64)] {
            let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
            let mut t = Table::new(name, schema);
            for i in 0..n {
                t.append(vec![Value::Int(i % 500), Value::Int(i)]);
            }
            c.add_table(t);
        }
        c.create_index("ix_r_v", "r", "v").unwrap();
        c.create_index("ix_s_v", "s", "v").unwrap();
        c.create_index("ix_s_k", "s", "k").unwrap();
        c
    }

    fn spec() -> QuerySpec {
        QuerySpec::new()
            .join("r", "k", "s", "k")
            .filter("r", col("r.v").lt(lit(100i64)))
            .filter("s", col("s.v").lt(lit(100i64)))
    }

    fn grid() -> Vec<f64> {
        (1..=8).map(|i| (i as f64 / 8.0).powi(3).max(1e-4)).collect()
    }

    #[test]
    fn diagram_has_multiple_plans() {
        let c = catalog();
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&c, 16));
        let est = StatsEstimator::new(reg);
        let d = PlanDiagram::generate(
            &spec(),
            &c,
            &est,
            PlannerConfig::default(),
            "r",
            "s",
            &grid(),
        )
        .unwrap();
        assert!(
            d.plan_count() >= 2,
            "selectivity extremes should flip plans, got {}\n{}",
            d.plan_count(),
            d.render()
        );
        assert_eq!(d.areas().iter().sum::<usize>(), grid().len() * grid().len());
    }

    #[test]
    fn override_estimator_pins_selectivity() {
        let c = catalog();
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&c, 16));
        let est = StatsEstimator::new(reg);
        let over = SelectivityOverrideEstimator::new(&est, &[("r", 0.42)]);
        let sel = over.selectivity("r", &col("r.v").lt(lit(1i64)));
        assert!((sel - 0.42).abs() < 1e-12);
        // Non-overridden table passes through.
        let sel_s = over.selectivity("s", &col("s.v").lt(lit(100i64)));
        assert!(sel_s < 0.2);
    }

    #[test]
    fn anorexic_reduction_shrinks_plan_count() {
        let c = catalog();
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&c, 16));
        let est = StatsEstimator::new(reg);
        let d = PlanDiagram::generate(
            &spec(),
            &c,
            &est,
            PlannerConfig::default(),
            "r",
            "s",
            &grid(),
        )
        .unwrap();
        let before = d.plan_count();
        let red = AnorexicReduction::reduce(&d, 0.2);
        let after = red.plan_count();
        assert!(after <= before);
        assert!(red.max_inflation <= 1.2 + 1e-9, "λ bound respected");
        // λ=0 cannot increase cost at all: only exact-cost swallows.
        let red0 = AnorexicReduction::reduce(&d, 0.0);
        assert!(red0.max_inflation <= 1.0 + 1e-9);
        // Monotone: larger λ swallows at least as much.
        let red_big = AnorexicReduction::reduce(&d, 2.0);
        assert!(red_big.plan_count() <= after);
    }

    #[test]
    fn reduction_preserves_cover() {
        let c = catalog();
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&c, 16));
        let est = StatsEstimator::new(reg);
        let d = PlanDiagram::generate(
            &spec(),
            &c,
            &est,
            PlannerConfig::default(),
            "r",
            "s",
            &grid(),
        )
        .unwrap();
        let red = AnorexicReduction::reduce(&d, 0.5);
        let g = d.grid.len();
        for yi in 0..g {
            for xi in 0..g {
                let new_id = red.assignment[yi][xi];
                let old_id = d.assignment[yi][xi];
                let infl = d.costs[new_id][yi][xi] / d.costs[old_id][yi][xi];
                assert!(infl <= 1.5 + 1e-9, "cover violated: {infl}");
            }
        }
    }

    #[test]
    fn rejects_empty_grid() {
        let c = catalog();
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&c, 16));
        let est = StatsEstimator::new(reg);
        assert!(PlanDiagram::generate(
            &spec(),
            &c,
            &est,
            PlannerConfig::default(),
            "r",
            "s",
            &[]
        )
        .is_err());
    }
}
