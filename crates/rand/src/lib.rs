//! Hermetic in-tree stand-in for the crates.io `rand` crate.
//!
//! The rqp workspace must build and test with **no network access** (the
//! tier-1 verify gate runs in sealed containers), so the external `rand`
//! dependency is replaced by this minimal, API-compatible shim. It provides
//! exactly the subset rqp uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — deterministic
//!   seeding (every stochastic choice in the testbed flows from an explicit
//!   seed);
//! * [`Rng::gen`] / [`Rng::gen_range`] over the integer/float ranges the
//!   workload generators draw from;
//! * [`distributions::Distribution`] — implemented by samplers such as
//!   `rqp_common::rng::Zipf`.
//!
//! The generator is **xoshiro256\*\*** seeded through SplitMix64 — small,
//! fast, and statistically strong far beyond what a cost-model testbed
//! needs. Streams differ from the real `rand`'s ChaCha-based `StdRng`, so
//! absolute experiment outputs shifted when this shim was introduced; all
//! assertions in the repo are statistical or self-consistent, not tied to a
//! particular stream.
//!
//! Integer `gen_range` uses multiply-shift range reduction (Lemire); the
//! modulo bias of the naive approach is avoided.

#![warn(missing_docs)]

/// The raw entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (the only constructor rqp uses).
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution
    /// (uniform bits for integers, uniform `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty, matching the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        standard_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `[0, 1)` from 53 random mantissa bits.
#[inline]
fn standard_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire multiply-shift reduction of a 64-bit draw onto `0..span`,
/// with rejection to remove bias.
#[inline]
fn uniform_below(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone: the lowest `threshold` multiples wrap unevenly.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(&mut &mut *rng, span) as $wide)
                    as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_below(&mut &mut *rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = standard_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Distributions: the [`Distribution`] trait and the [`Standard`] instance.
pub mod distributions {
    use super::{standard_f64, Rng};

    /// A sampling distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution per type: full-width uniform
    /// integers, uniform `[0, 1)` floats, fair-coin bools.
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            standard_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            standard_f64(rng.next_u64()) as f32
        }
    }
}

/// Named generators (only [`StdRng`](rngs::StdRng) is provided).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256\*\* seeded via
    /// SplitMix64. Not the ChaCha `StdRng` of the real `rand`; rqp only
    /// requires determinism and statistical quality, not stream
    /// compatibility.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the 256-bit state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** (Blackman & Vigna).
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            seen[(v + 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values hit in 1000 draws");
        for _ in 0..1000 {
            let v = r.gen_range(3usize..=7);
            assert!((3..=7).contains(&v));
        }
        let v = r.gen_range(4i64..5);
        assert_eq!(v, 4, "singleton half-open range");
        let v = r.gen_range(9i64..=9);
        assert_eq!(v, 9, "singleton inclusive range");
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut r = StdRng::seed_from_u64(2);
        let mut lo_half = 0usize;
        for _ in 0..2000 {
            let v: f64 = r.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&v));
            if v < 3.0 {
                lo_half += 1;
            }
        }
        assert!((700..1300).contains(&lo_half), "roughly uniform halves: {lo_half}");
    }

    #[test]
    fn gen_standard_types() {
        let mut r = StdRng::seed_from_u64(3);
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
        let _: u32 = r.gen();
        let _: bool = r.gen();
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 over 10k: {hits}");
    }

    #[test]
    fn uniform_int_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(6);
        let _: i64 = r.gen_range(5i64..5);
    }
}
