//! The high-level `Database` facade.

use rqp_adaptive::pop::{no_lies, run_with_pop, PopConfig};
use rqp_adaptive::run_with_feedback;
use rqp_common::{Result, Row, RqpError};
use rqp_exec::ExecContext;
use rqp_opt::robust::{robust_plan, RobustMode};
use rqp_opt::{plan as plan_query, PhysicalPlan, PlannerConfig, QuerySpec};
use rqp_stats::{
    CardEstimator, FeedbackEstimator, FeedbackRepo, LyingEstimator, StatsEstimator,
    TableStatsRegistry,
};
use rqp_storage::{Catalog, Table};
use std::cell::RefCell;
use std::rc::Rc;

/// How a query should be optimized and executed.
#[derive(Debug, Clone, Copy)]
pub enum ExecutionMode {
    /// Classic compile-time optimization, run to completion.
    Static,
    /// Babcock–Chaudhuri robust plan choice at the given cost percentile,
    /// hedging against per-table estimation error of the given factor.
    Robust {
        /// Cost percentile to minimize (e.g. 0.9).
        percentile: f64,
        /// Assumed possible estimation-error factor.
        error_factor: f64,
    },
    /// Progressive optimization: CHECK operators + mid-query re-optimization.
    Pop {
        /// Validity-range threshold θ.
        theta: f64,
        /// Re-optimization budget.
        max_reopts: usize,
    },
    /// Execute with LEO feedback: estimates corrected by (and actuals
    /// recorded into) the database's feedback repository.
    Leo,
}

impl ExecutionMode {
    /// POP with default parameters.
    pub fn pop() -> Self {
        let d = PopConfig::default();
        ExecutionMode::Pop { theta: d.theta, max_reopts: d.max_reopts }
    }

    /// Robust with default parameters (90th percentile, 20× error box).
    pub fn robust() -> Self {
        ExecutionMode::Robust { percentile: 0.9, error_factor: 20.0 }
    }
}

/// Result of executing a query.
#[derive(Debug)]
pub struct QueryResult {
    /// The rows.
    pub rows: Vec<Row>,
    /// Cost-clock units charged.
    pub cost: f64,
    /// Fingerprint of the (final) plan executed.
    pub plan: String,
    /// Mid-query re-optimizations (POP only; 0 otherwise).
    pub reoptimizations: usize,
}

/// A catalog plus statistics, feedback state and configuration — the
/// top-level entry point.
pub struct Database {
    catalog: Catalog,
    registry: Rc<TableStatsRegistry>,
    feedback: Rc<RefCell<FeedbackRepo>>,
    /// Planner configuration used for every query.
    pub planner_config: PlannerConfig,
    /// Histogram buckets used by [`Database::analyze`].
    pub stat_buckets: usize,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::from_catalog(Catalog::new())
    }

    /// Wrap an existing catalog. Call [`Database::analyze`] before planning.
    pub fn from_catalog(catalog: Catalog) -> Self {
        Database {
            catalog,
            registry: Rc::new(TableStatsRegistry::new()),
            feedback: Rc::new(RefCell::new(FeedbackRepo::new(0.8))),
            planner_config: PlannerConfig::default(),
            stat_buckets: 32,
        }
    }

    /// Register a table (replacing any previous table of the same name).
    pub fn add_table(&mut self, table: Table) {
        self.catalog.add_table(table);
    }

    /// Create a B-tree index.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        table: &str,
        column: &str,
    ) -> Result<()> {
        self.catalog.create_index(name, table, column)
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (snapshots held by running queries are
    /// copy-on-write protected).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Gather statistics for every table (like SQL `ANALYZE`).
    pub fn analyze(&mut self) {
        self.registry =
            Rc::new(TableStatsRegistry::analyze_catalog(&self.catalog, self.stat_buckets));
    }

    /// The statistics registry.
    pub fn registry(&self) -> &TableStatsRegistry {
        &self.registry
    }

    /// The LEO feedback repository.
    pub fn feedback(&self) -> Rc<RefCell<FeedbackRepo>> {
        Rc::clone(&self.feedback)
    }

    /// The histogram+independence estimator over the current statistics.
    pub fn estimator(&self) -> StatsEstimator {
        StatsEstimator::new(Rc::clone(&self.registry))
    }

    /// Optimize a query (static mode) and return the plan.
    pub fn plan(&self, spec: &QuerySpec) -> Result<PhysicalPlan> {
        let est = self.estimator();
        plan_query(spec, &self.catalog, &est, self.planner_config)
    }

    /// EXPLAIN: the chosen plan rendered as a tree.
    pub fn explain(&self, spec: &QuerySpec) -> Result<String> {
        Ok(self.plan(spec)?.to_string())
    }

    /// Execute with classic static optimization.
    pub fn execute(&self, spec: &QuerySpec) -> Result<QueryResult> {
        self.execute_mode(spec, ExecutionMode::Static)
    }

    /// Execute under the given mode.
    pub fn execute_mode(&self, spec: &QuerySpec, mode: ExecutionMode) -> Result<QueryResult> {
        match mode {
            ExecutionMode::Static => {
                let plan = self.plan(spec)?;
                let ctx = ExecContext::with_memory(self.planner_config.memory_rows);
                let fingerprint = plan.fingerprint();
                let rows = plan.build(&self.catalog, &ctx, None)?.run();
                Ok(QueryResult {
                    rows,
                    cost: ctx.clock.now(),
                    plan: fingerprint,
                    reoptimizations: 0,
                })
            }
            ExecutionMode::Robust { percentile, error_factor } => {
                if error_factor < 1.0 {
                    return Err(RqpError::Invalid("error_factor must be ≥ 1".into()));
                }
                // Scenarios: the point estimate plus over/under scenarios
                // for every table in the query.
                let base = self.estimator();
                let mut scenarios: Vec<Box<dyn CardEstimator>> =
                    vec![Box::new(base.clone())];
                for t in &spec.tables {
                    for f in [1.0 / error_factor, error_factor] {
                        scenarios.push(Box::new(
                            LyingEstimator::new(Box::new(base.clone()))
                                .with_table_factor(t, f),
                        ));
                    }
                }
                let choice = robust_plan(
                    spec,
                    &self.catalog,
                    &scenarios,
                    self.planner_config,
                    RobustMode::Percentile(percentile),
                )?;
                let ctx = ExecContext::with_memory(self.planner_config.memory_rows);
                let fingerprint = choice.plan.fingerprint();
                let rows = choice.plan.build(&self.catalog, &ctx, None)?.run();
                Ok(QueryResult {
                    rows,
                    cost: ctx.clock.now(),
                    plan: fingerprint,
                    reoptimizations: 0,
                })
            }
            ExecutionMode::Pop { theta, max_reopts } => {
                let ctx = ExecContext::with_memory(self.planner_config.memory_rows);
                let report = run_with_pop(
                    spec,
                    &self.catalog,
                    &self.registry,
                    &no_lies,
                    self.planner_config,
                    PopConfig { theta, max_reopts },
                    &ctx,
                )?;
                Ok(QueryResult {
                    plan: report
                        .rounds
                        .last()
                        .map(|r| r.plan_fingerprint.clone())
                        .unwrap_or_default(),
                    reoptimizations: report.reoptimizations(),
                    cost: report.total_cost,
                    rows: report.rows,
                })
            }
            ExecutionMode::Leo => {
                let est = FeedbackEstimator::new(
                    Box::new(self.estimator()),
                    Rc::clone(&self.feedback),
                );
                let ctx = ExecContext::with_memory(self.planner_config.memory_rows);
                let report = run_with_feedback(
                    spec,
                    &self.catalog,
                    &est,
                    &self.feedback,
                    self.planner_config,
                    &ctx,
                )?;
                Ok(QueryResult {
                    plan: report.plan_fingerprint.clone(),
                    cost: report.cost,
                    rows: report.rows,
                    reoptimizations: 0,
                })
            }
        }
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("g", DataType::Int)]);
        let mut t = Table::new("t", schema.clone());
        for i in 0..1000i64 {
            t.append(vec![Value::Int(i), Value::Int(i % 10)]);
        }
        db.add_table(t);
        let mut u = Table::new("u", schema);
        for i in 0..50i64 {
            u.append(vec![Value::Int(i), Value::Int(i % 10)]);
        }
        db.add_table(u);
        db.create_index("ix_t_k", "t", "k").unwrap();
        db.analyze();
        db
    }

    fn join_spec() -> QuerySpec {
        QuerySpec::new()
            .join("t", "g", "u", "g")
            .filter("t", col("t.k").lt(lit(100i64)))
    }

    #[test]
    fn static_execution() {
        let db = db();
        let r = db.execute(&join_spec()).unwrap();
        assert_eq!(r.rows.len(), 500, "100 t-rows × 5 matching u-rows");
        assert!(r.cost > 0.0);
        assert!(!r.plan.is_empty());
        assert_eq!(r.reoptimizations, 0);
    }

    #[test]
    fn all_modes_agree_on_results() {
        let db = db();
        let baseline = db.execute(&join_spec()).unwrap().rows.len();
        for mode in [ExecutionMode::robust(), ExecutionMode::pop(), ExecutionMode::Leo] {
            let r = db.execute_mode(&join_spec(), mode).unwrap();
            assert_eq!(r.rows.len(), baseline, "mode {mode:?} changed the answer");
        }
    }

    #[test]
    fn explain_renders() {
        let db = db();
        let s = db.explain(&join_spec()).unwrap();
        assert!(s.contains("Scan") || s.contains("Join"), "{s}");
    }

    #[test]
    fn leo_populates_feedback() {
        let db = db();
        assert!(db.feedback().borrow().is_empty());
        db.execute_mode(&join_spec(), ExecutionMode::Leo).unwrap();
        assert!(!db.feedback().borrow().is_empty());
    }

    #[test]
    fn robust_rejects_bad_factor() {
        let db = db();
        let r = db.execute_mode(
            &join_spec(),
            ExecutionMode::Robust { percentile: 0.9, error_factor: 0.5 },
        );
        assert!(r.is_err());
    }

    #[test]
    fn analyze_refreshes_statistics() {
        let mut db = db();
        let rows_before = db.estimator().table_rows("t");
        for i in 0..500i64 {
            db.catalog_mut()
                .table_mut("t")
                .unwrap()
                .append(vec![Value::Int(1000 + i), Value::Int(i % 10)]);
        }
        assert_eq!(db.estimator().table_rows("t"), rows_before, "stale until ANALYZE");
        db.analyze();
        assert_eq!(db.estimator().table_rows("t"), 1500.0);
    }
}
