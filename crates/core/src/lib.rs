//! # rqp — a robust query processing testbed
//!
//! `rqp` reproduces, as one coherent system, the landscape mapped by
//! Dagstuhl seminar 10381 *Robust Query Processing* (Graefe, Kuno, König,
//! Markl, Sattler — 2011): a relational engine substrate, every major
//! robustness mechanism the seminar surveys, and the robustness *metrics and
//! benchmarks* its break-out sessions define.
//!
//! ## Layers
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`common`] | `rqp-common` | values, schemas, expressions, cost clock |
//! | [`storage`] | `rqp-storage` | tables, B-trees, **database cracking**, **adaptive merging**, shared scans |
//! | [`stats`] | `rqp-stats` | histograms, self-tuning histograms, sampling posteriors, **maximum-entropy selectivity**, q-error, **LEO feedback** |
//! | [`exec`] | `rqp-exec` | Volcano operators: joins (hash/merge/INL/BNL/**g-join**/symmetric), sort, aggregation, **eddies**, **A-Greedy**, **POP CHECK** |
//! | [`opt`] | `rqp-opt` | DP optimizer, **robust (percentile) plan choice**, **plan diagrams + anorexic reduction**, **validity ranges**, **Rio boxes**, parametric cache |
//! | [`adaptive`] | `rqp-adaptive` | **POP** and **LEO** drivers, the adaptivity loop |
//! | [`physical`] | `rqp-physical` | index advisor (classic and **Risk/Generality**), drift evaluation, stats-refresh disasters |
//! | [`workload`] | `rqp-workload` | TPC-H-like / star / OLTP generators, black-hat traps, tractor pull, FMT/FPT, workload manager |
//! | [`server`] | `rqp-server` | concurrent query service: sessions, MPL admission, cross-query memory brokering, plan cache, cooperative cancellation, standing subscriptions |
//! | [`stream`] | `rqp-stream` | incremental view maintenance: delta circuits over streaming inserts/deletes, retractable aggregates |
//! | [`metrics`] | `rqp-metrics` | S(Q), C(Q), Metric1/3, intrinsic/extrinsic variability, plan stability, box plots |
//! | [`telemetry`] | `rqp-telemetry` | operator spans, metrics registry, EXPLAIN ANALYZE trace trees, JSON run reports |
//!
//! ## Quick start
//!
//! ```
//! use rqp::{Database, ExecutionMode};
//! use rqp::workload::{TpchDb, tpch::TpchParams};
//!
//! // Generate a TPC-H-like database and wrap it.
//! let tpch = TpchDb::build(TpchParams { lineitem_rows: 2000, ..Default::default() }, 42);
//! let mut db = Database::from_catalog(tpch.catalog.clone());
//! db.analyze();
//!
//! // Plan + execute a 3-way join.
//! let q = tpch.q3(1, 1200);
//! let result = db.execute(&q).unwrap();
//! assert!(!result.rows.is_empty());
//! assert!(result.cost > 0.0);
//!
//! // Same query under progressive optimization.
//! let pop = db.execute_mode(&q, ExecutionMode::pop()).unwrap();
//! assert_eq!(pop.rows.len(), result.rows.len());
//! ```

#![warn(missing_docs)]

pub use rqp_adaptive as adaptive;
pub use rqp_common as common;
pub use rqp_exec as exec;
pub use rqp_metrics as metrics;
pub use rqp_opt as opt;
pub use rqp_physical as physical;
pub use rqp_server as server;
pub use rqp_stats as stats;
pub use rqp_storage as storage;
pub use rqp_stream as stream;
pub use rqp_telemetry as telemetry;
pub use rqp_workload as workload;

mod db;

pub use db::{Database, ExecutionMode, QueryResult};

// The most-used types, re-exported flat.
pub use rqp_common::{expr, DataType, Expr, Row, Schema, Value};
pub use rqp_exec::{AggFunc, AggSpec, ExecContext};
pub use rqp_opt::{PhysicalPlan, PlannerConfig, QuerySpec};
pub use rqp_storage::{Catalog, Table};
