//! The what-if index advisor, plain and robustness-aware.
//!
//! Candidates are the columns the workload filters or joins on. Selection is
//! greedy: repeatedly add the candidate with the best marginal *objective*
//! until the budget is exhausted or nothing helps. The objective is
//!
//! ```text
//! benefit − risk_weight · risk + generality_weight · generality
//! ```
//!
//! * **benefit** — workload cost reduction, estimated by re-planning every
//!   query against a hypothetical catalog containing the candidate set
//!   (what-if indexing with real index metadata, built on the spot);
//! * **risk** (Gebaly & Aboulnaga) — the extra cost the configuration incurs
//!   when the optimizer's estimates are wrong: workload cost under
//!   pessimistically scaled selectivities, minus the same under the current
//!   configuration. An unclustered index chosen on an underestimate is the
//!   canonical risky pick;
//! * **generality** — the fraction of *distinct* workload-relevant columns
//!   covered; index sets hyper-specialized to one column score low and
//!   transfer badly to drifted workloads.
//!
//! `risk_weight = generality_weight = 0` recovers the classic advisor.

use rqp_common::{Result, SimplePred};
use rqp_opt::{plan as plan_query, PlannerConfig, QuerySpec};
use rqp_stats::{CardEstimator, LyingEstimator, StatsEstimator, TableStatsRegistry};
use rqp_storage::Catalog;
use std::collections::BTreeSet;
use std::rc::Rc;

/// A candidate single-column index.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CandidateIndex {
    /// Table name.
    pub table: String,
    /// Column name (unqualified).
    pub column: String,
}

impl CandidateIndex {
    /// Index name used when materialized.
    pub fn name(&self) -> String {
        format!("adv_{}_{}", self.table, self.column)
    }
}

/// Advisor configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdvisorConfig {
    /// Maximum indexes to recommend.
    pub max_indexes: usize,
    /// Weight of the risk term (0 = classic advisor).
    pub risk_weight: f64,
    /// Weight of the generality term (0 = classic advisor).
    pub generality_weight: f64,
    /// Error factor used for the pessimistic risk scenario (selectivities
    /// scaled up by this).
    pub risk_error_factor: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            max_indexes: 3,
            risk_weight: 0.0,
            generality_weight: 0.0,
            risk_error_factor: 20.0,
        }
    }
}

impl AdvisorConfig {
    /// The robustness-aware profile (Multi-Objective Design Advisor).
    pub fn robust(max_indexes: usize) -> Self {
        AdvisorConfig {
            max_indexes,
            risk_weight: 1.0,
            generality_weight: 0.2,
            risk_error_factor: 20.0,
        }
    }
}

/// The advisor's recommendation.
#[derive(Debug, Clone)]
pub struct Advice {
    /// Recommended indexes, in selection order.
    pub indexes: Vec<CandidateIndex>,
    /// Estimated workload cost without any recommended index.
    pub baseline_cost: f64,
    /// Estimated workload cost with the recommendation.
    pub final_cost: f64,
    /// Risk score of the final configuration (pessimistic-scenario cost
    /// increase relative to baseline pessimistic cost; lower is safer).
    pub risk: f64,
    /// Generality score in `[0, 1]`.
    pub generality: f64,
}

impl Advice {
    /// Estimated benefit.
    pub fn benefit(&self) -> f64 {
        self.baseline_cost - self.final_cost
    }

    /// Materialize the recommended indexes into a catalog.
    pub fn apply(&self, catalog: &mut Catalog) -> Result<()> {
        for c in &self.indexes {
            catalog.create_index(c.name(), &c.table, &c.column)?;
        }
        Ok(())
    }
}

/// Columns the workload constrains (filters and join keys).
fn candidates(workload: &[QuerySpec], catalog: &Catalog) -> Vec<CandidateIndex> {
    let mut set: BTreeSet<CandidateIndex> = BTreeSet::new();
    for q in workload {
        for (table, pred) in &q.local_preds {
            for c in pred.conjuncts() {
                if let Some(sp) = SimplePred::from_expr(&c) {
                    let col = sp
                        .column()
                        .rsplit_once('.')
                        .map(|(_, c)| c)
                        .unwrap_or(sp.column());
                    set.insert(CandidateIndex {
                        table: table.clone(),
                        column: col.to_owned(),
                    });
                }
            }
        }
        for e in &q.joins {
            set.insert(CandidateIndex {
                table: e.left_table.clone(),
                column: e.left_col.clone(),
            });
            set.insert(CandidateIndex {
                table: e.right_table.clone(),
                column: e.right_col.clone(),
            });
        }
    }
    set.into_iter()
        .filter(|c| {
            catalog.has_table(&c.table) && catalog.index_on(&c.table, &c.column).is_none()
        })
        .collect()
}

/// Estimated workload cost against a catalog configuration.
fn workload_cost(
    workload: &[QuerySpec],
    catalog: &Catalog,
    est: &dyn CardEstimator,
) -> Result<f64> {
    let mut total = 0.0;
    for q in workload {
        let p = plan_query(q, catalog, est, PlannerConfig::default())?;
        total += p.est_cost();
    }
    Ok(total)
}

/// Run the advisor.
pub fn advise(
    catalog: &Catalog,
    registry: &TableStatsRegistry,
    workload: &[QuerySpec],
    cfg: AdvisorConfig,
) -> Result<Advice> {
    let est = StatsEstimator::new(Rc::new(registry.clone()));
    let pessimist = |catalog: &Catalog| -> Result<f64> {
        // Pessimistic scenario: every table's selectivity inflated.
        let mut worst = 0.0f64;
        for t in catalog.table_names() {
            let liar = LyingEstimator::new(Box::new(est.clone()))
                .with_table_factor(&t, cfg.risk_error_factor);
            worst = worst.max(workload_cost(workload, catalog, &liar)?);
        }
        Ok(worst)
    };

    let all_candidates = candidates(workload, catalog);
    let total_columns = all_candidates.len().max(1);
    let mut chosen: Vec<CandidateIndex> = Vec::new();
    let mut current_catalog = catalog.clone();
    let baseline_cost = workload_cost(workload, &current_catalog, &est)?;
    let baseline_pessimist = pessimist(&current_catalog)?;
    let mut current_cost = baseline_cost;

    while chosen.len() < cfg.max_indexes {
        let mut best: Option<(CandidateIndex, f64, f64)> = None; // (cand, objective, new_cost)
        for cand in &all_candidates {
            if chosen.contains(cand) {
                continue;
            }
            let mut what_if = current_catalog.clone();
            what_if.create_index(cand.name(), &cand.table, &cand.column)?;
            let cost = workload_cost(workload, &what_if, &est)?;
            let benefit = current_cost - cost;
            let mut objective = benefit;
            if cfg.risk_weight > 0.0 {
                let risk = (pessimist(&what_if)? - baseline_pessimist).max(0.0);
                objective -= cfg.risk_weight * risk;
            }
            if cfg.generality_weight > 0.0 {
                let generality = (chosen.len() + 1) as f64 / total_columns as f64;
                objective += cfg.generality_weight * generality * baseline_cost * 0.01;
            }
            if objective > 1e-9 && best.as_ref().map(|(_, o, _)| objective > *o).unwrap_or(true)
            {
                best = Some((cand.clone(), objective, cost));
            }
        }
        match best {
            Some((cand, _, cost)) => {
                current_catalog.create_index(cand.name(), &cand.table, &cand.column)?;
                chosen.push(cand);
                current_cost = cost;
            }
            None => break,
        }
    }

    let final_pessimist = pessimist(&current_catalog)?;
    let risk = if baseline_pessimist > 0.0 {
        ((final_pessimist - baseline_pessimist) / baseline_pessimist).max(0.0)
    } else {
        0.0
    };
    let covered: BTreeSet<&str> = chosen.iter().map(|c| c.column.as_str()).collect();
    let generality = covered.len() as f64 / total_columns as f64;
    Ok(Advice { indexes: chosen, baseline_cost, final_cost: current_cost, risk, generality })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_workload::{TpchDb, tpch::TpchParams};

    fn setup() -> (Catalog, TableStatsRegistry, Vec<QuerySpec>) {
        // Build without indexes so the advisor has work to do.
        let db = TpchDb::build(
            TpchParams { lineitem_rows: 4000, with_indexes: false, ..Default::default() },
            21,
        );
        let reg = TableStatsRegistry::analyze_catalog(&db.catalog, 16);
        // Unclustered index probes cost ~4 units/row vs 1 unit/100-row page
        // for scans, so indexes pay off below ~0.25% selectivity — use
        // narrow ranges, as point-lookup workloads do.
        let workload = vec![
            QuerySpec::new()
                .table("lineitem")
                .filter("lineitem", col("lineitem.shipdate").between(100i64, 103i64)),
            QuerySpec::new()
                .table("lineitem")
                .filter("lineitem", col("lineitem.shipdate").between(900i64, 903i64)),
            QuerySpec::new()
                .table("orders")
                .filter("orders", col("orders.orderdate").lt(lit(2i64))),
        ];
        (db.catalog, reg, workload)
    }

    #[test]
    fn advisor_finds_beneficial_indexes() {
        let (catalog, reg, workload) = setup();
        let advice = advise(&catalog, &reg, &workload, AdvisorConfig::default()).unwrap();
        assert!(!advice.indexes.is_empty());
        assert!(advice.benefit() > 0.0, "indexes must reduce estimated cost");
        assert!(advice.final_cost < advice.baseline_cost);
        // The heavily used shipdate column should be picked first.
        assert_eq!(advice.indexes[0].column, "shipdate");
    }

    #[test]
    fn advice_applies_to_catalog() {
        let (catalog, reg, workload) = setup();
        let advice = advise(&catalog, &reg, &workload, AdvisorConfig::default()).unwrap();
        let mut c = catalog.clone();
        advice.apply(&mut c).unwrap();
        for ix in &advice.indexes {
            assert!(c.index_on(&ix.table, &ix.column).is_some());
        }
    }

    #[test]
    fn budget_limits_recommendations() {
        let (catalog, reg, workload) = setup();
        let cfg = AdvisorConfig { max_indexes: 1, ..Default::default() };
        let advice = advise(&catalog, &reg, &workload, cfg).unwrap();
        assert!(advice.indexes.len() <= 1);
    }

    #[test]
    fn robust_advisor_has_bounded_risk() {
        let (catalog, reg, workload) = setup();
        let plain = advise(&catalog, &reg, &workload, AdvisorConfig::default()).unwrap();
        let robust =
            advise(&catalog, &reg, &workload, AdvisorConfig::robust(3)).unwrap();
        assert!(
            robust.risk <= plain.risk + 1e-9,
            "robust advisor must not pick riskier sets: {} vs {}",
            robust.risk,
            plain.risk
        );
        assert!((0.0..=1.0).contains(&robust.generality));
    }

    #[test]
    fn empty_workload_recommends_nothing() {
        let (catalog, reg, _) = setup();
        let advice = advise(&catalog, &reg, &[], AdvisorConfig::default()).unwrap();
        assert!(advice.indexes.is_empty());
        assert_eq!(advice.benefit(), 0.0);
    }

    #[test]
    fn existing_indexes_not_recommended() {
        let (mut catalog, reg, workload) = setup();
        catalog
            .create_index("ix_shipdate", "lineitem", "shipdate")
            .unwrap();
        let advice = advise(&catalog, &reg, &workload, AdvisorConfig::default()).unwrap();
        assert!(advice
            .indexes
            .iter()
            .all(|c| !(c.table == "lineitem" && c.column == "shipdate")));
    }
}
