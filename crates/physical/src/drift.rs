//! Advisor-robustness evaluation under workload drift.
//!
//! The protocol from "Evaluating the robustness of a physical database
//! design advisor" (Graefe, Ailamaki, Ewen, Nica, Wrembel): tune a physical
//! design on workload `W0`, then run modified-but-pattern-preserving
//! workloads `W1..Wn` against the *same* design and compare their total
//! times `T1..Tn` to `T0`. "The maximum difference between the times is
//! treated as a parameter" — the advisor's robustness score.

use crate::advisor::Advice;
use rqp_common::Result;
use rqp_exec::ExecContext;
use rqp_opt::{plan as plan_query, PlannerConfig, QuerySpec};
use rqp_stats::CardEstimator;
use rqp_storage::Catalog;

/// The evaluation result.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// `T0`: executed cost of the training workload on the tuned design.
    pub t0: f64,
    /// `T1..Tn` for the drifted workloads.
    pub drifted: Vec<f64>,
}

impl DriftReport {
    /// The robustness parameter: `max_i |Ti − T0| / T0`.
    pub fn max_relative_difference(&self) -> f64 {
        if self.t0 <= 0.0 {
            return 0.0;
        }
        self.drifted
            .iter()
            .map(|t| (t - self.t0).abs() / self.t0)
            .fold(0.0, f64::max)
    }

    /// Mean drifted cost relative to `T0`.
    pub fn mean_relative(&self) -> f64 {
        if self.drifted.is_empty() || self.t0 <= 0.0 {
            return 1.0;
        }
        self.drifted.iter().sum::<f64>() / self.drifted.len() as f64 / self.t0
    }
}

/// Execute a workload against a catalog, returning total cost.
fn execute_workload(
    workload: &[QuerySpec],
    catalog: &Catalog,
    est: &dyn CardEstimator,
) -> Result<f64> {
    let ctx = ExecContext::unbounded();
    for q in workload {
        let p = plan_query(q, catalog, est, PlannerConfig::default())?;
        p.build(catalog, &ctx, None)?.run();
    }
    Ok(ctx.clock.now())
}

/// Apply `advice` to a copy of `catalog` and execute the training workload
/// plus each drifted workload against it.
pub fn evaluate_advice(
    catalog: &Catalog,
    est: &dyn CardEstimator,
    advice: &Advice,
    training: &[QuerySpec],
    drifted: &[Vec<QuerySpec>],
) -> Result<DriftReport> {
    let mut tuned = catalog.clone();
    advice.apply(&mut tuned)?;
    let t0 = execute_workload(training, &tuned, est)?;
    let mut ts = Vec::with_capacity(drifted.len());
    for w in drifted {
        ts.push(execute_workload(w, &tuned, est)?);
    }
    Ok(DriftReport { t0, drifted: ts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{advise, AdvisorConfig};
    use rqp_common::expr::col;
    use rqp_stats::{StatsEstimator, TableStatsRegistry};
    use rqp_workload::{tpch::TpchParams, TpchDb};
    use std::rc::Rc;

    fn range_workload(lo: i64, width: i64, n: usize) -> Vec<QuerySpec> {
        (0..n as i64)
            .map(|i| {
                QuerySpec::new().table("lineitem").filter(
                    "lineitem",
                    col("lineitem.shipdate").between(lo + i * 50, lo + i * 50 + width),
                )
            })
            .collect()
    }

    #[test]
    fn similar_drift_stays_close_to_t0() {
        let db = TpchDb::build(
            TpchParams { lineitem_rows: 4000, with_indexes: false, ..Default::default() },
            33,
        );
        let reg = TableStatsRegistry::analyze_catalog(&db.catalog, 16);
        let est = StatsEstimator::new(Rc::new(reg.clone()));
        let training = range_workload(100, 3, 4);
        let advice = advise(&db.catalog, &reg, &training, AdvisorConfig::default()).unwrap();
        // Drift 1: same pattern, shifted constants — index still applies.
        let similar = range_workload(600, 3, 4);
        // Drift 2: much wider ranges — the index degrades toward scans.
        let hostile = range_workload(100, 1500, 4);
        let drifted: Vec<Vec<QuerySpec>> = vec![similar, hostile];
        let report =
            evaluate_advice(&db.catalog, &est, &advice, &training, &drifted).unwrap();
        assert_eq!(report.drifted.len(), 2);
        let similar_rel = (report.drifted[0] - report.t0).abs() / report.t0;
        let hostile_rel = (report.drifted[1] - report.t0).abs() / report.t0;
        assert!(
            similar_rel < hostile_rel,
            "pattern-preserving drift ({similar_rel:.2}) must hurt less than \
             hostile drift ({hostile_rel:.2})"
        );
        assert!(report.max_relative_difference() >= hostile_rel - 1e-9);
    }

    #[test]
    fn empty_drift_report() {
        let r = DriftReport { t0: 100.0, drifted: vec![] };
        assert_eq!(r.max_relative_difference(), 0.0);
        assert_eq!(r.mean_relative(), 1.0);
        let r = DriftReport { t0: 0.0, drifted: vec![5.0] };
        assert_eq!(r.max_relative_difference(), 0.0);
    }
}
