//! # rqp-physical
//!
//! Physical database design and its robustness — the seminar's day-4 track:
//!
//! * [`advisor`] — a classic what-if **index advisor** (candidate columns
//!   from the workload, greedy selection by estimated benefit) extended with
//!   Gebaly & Aboulnaga's **Risk** (sensitivity of the advice to estimation
//!   error) and **Generality** (how well the index set serves queries beyond
//!   the training workload) objectives;
//! * [`drift`] — the advisor-robustness evaluation protocol from the
//!   "Assessing the Robustness of Index Selection Tools" break-out: tune on
//!   workload `W0`, evaluate on drifted `W1..Wn`, compare `Tᵢ` against `T₀`;
//! * [`statsrefresh`] — the report's "automatic disaster" scenario: a small
//!   insert triggers a statistics refresh from a *different sample*, plans
//!   flip, and performance regresses; with and without plan pinning.

#![warn(missing_docs)]

pub mod advisor;
pub mod drift;
pub mod statsrefresh;

pub use advisor::{advise, Advice, AdvisorConfig, CandidateIndex};
pub use drift::{evaluate_advice, DriftReport};
pub use statsrefresh::{stats_refresh_experiment, RefreshConfig, RefreshReport};
