//! The "automatic disaster": statistics refresh flips plans.
//!
//! From the report's motivation: *"insertion of a few new rows into a large
//! table might trigger an automatic update of statistics, which uses a
//! different sample than the prior one, which leads to slightly different
//! histograms, which results in slightly different cardinality or cost
//! estimates, which leads to an entirely different query execution plan,
//! which might actually perform much worse than the prior one."*
//!
//! The simulation: per epoch, append a small fraction of rows, re-ANALYZE
//! from a *fresh random sample*, re-optimize the workload, execute, and
//! record plan fingerprints and costs. The mitigation under test is **plan
//! pinning with a verification check** (à la Oracle SPM / plan management):
//! keep the previous plan unless the new plan's estimated cost is better by
//! a margin *under both old and new estimates*.

use rand::Rng;
use rqp_common::rng::{child_seed, seeded};
use rqp_common::{Result, Value};
use rqp_exec::ExecContext;
use rqp_metrics::PlanStability;
use rqp_opt::{plan as plan_query, CostModel, PhysicalPlan, PlannerConfig, QuerySpec};
use rqp_stats::{StatsEstimator, TableStats, TableStatsRegistry};
use rqp_storage::Catalog;
use std::rc::Rc;

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct RefreshConfig {
    /// Epochs (stats refreshes) to simulate.
    pub epochs: usize,
    /// Fraction of the table appended per epoch (e.g. 0.01).
    pub insert_fraction: f64,
    /// Sample size for each ANALYZE.
    pub sample_size: usize,
    /// Histogram buckets.
    pub buckets: usize,
    /// Enable plan pinning with verification.
    pub pin_plans: bool,
    /// A pinned plan is replaced only if the new plan is at least this much
    /// cheaper (relative), verified under both estimate sets.
    pub replace_margin: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            epochs: 8,
            insert_fraction: 0.01,
            sample_size: 200,
            buckets: 8,
            pin_plans: false,
            replace_margin: 0.2,
            seed: 1234,
        }
    }
}

/// The result: one stability track per workload query.
#[derive(Debug)]
pub struct RefreshReport {
    /// Per-query stability tracks.
    pub per_query: Vec<PlanStability>,
}

impl RefreshReport {
    /// Total plan flips across the workload.
    pub fn total_flips(&self) -> usize {
        self.per_query.iter().map(|s| s.flips()).sum()
    }

    /// Worst flip regression across the workload.
    pub fn worst_regression(&self) -> f64 {
        self.per_query
            .iter()
            .map(|s| s.worst_regression())
            .fold(1.0, f64::max)
    }
}

/// Run the experiment on `grow_table` within `catalog`.
pub fn stats_refresh_experiment(
    catalog: &Catalog,
    grow_table: &str,
    workload: &[QuerySpec],
    cfg: RefreshConfig,
) -> Result<RefreshReport> {
    let mut catalog = catalog.clone();
    let mut rng = seeded(child_seed(cfg.seed, "refresh"));
    let mut per_query: Vec<PlanStability> = vec![PlanStability::new(); workload.len()];
    let mut pinned: Vec<Option<PhysicalPlan>> = vec![None; workload.len()];
    let cm = CostModel::default();

    for _epoch in 0..cfg.epochs {
        // 1. "a few new rows": append a small fraction, cloned from random
        // existing rows (value distribution preserved).
        {
            let n = catalog.table(grow_table)?.nrows();
            let to_add = ((n as f64) * cfg.insert_fraction).ceil() as usize;
            let src: Vec<rqp_common::Row> = {
                let t = catalog.table(grow_table)?;
                (0..to_add)
                    .map(|_| {
                        let mut row = t.row(rng.gen_range(0..n));
                        // jitter integer columns slightly so the sample sees
                        // "new" values
                        for v in &mut row {
                            if let Value::Int(x) = v {
                                *v = Value::Int(*x + rng.gen_range(-1i64..=1));
                            }
                        }
                        row
                    })
                    .collect()
            };
            catalog.table_mut(grow_table)?.extend(src);
        }

        // 2. Auto-ANALYZE from a fresh sample.
        let mut registry = TableStatsRegistry::new();
        for name in catalog.table_names() {
            let t = catalog.table(&name)?;
            let stats = if name == grow_table {
                TableStats::analyze_sampled(&t, cfg.buckets, cfg.sample_size, &mut rng)
            } else {
                TableStats::analyze(&t, cfg.buckets)
            };
            registry.insert(name, stats);
        }
        let est = StatsEstimator::new(Rc::new(registry));

        // 3. Re-optimize + execute each query.
        for (qi, spec) in workload.iter().enumerate() {
            let fresh = plan_query(spec, &catalog, &est, PlannerConfig::default())?;
            let chosen = if cfg.pin_plans {
                match &pinned[qi] {
                    Some(old) => {
                        let old_cost_new_est = old.reestimate(&est, &cm).1;
                        let fresh_cost_new_est = fresh.reestimate(&est, &cm).1;
                        // Replace only on a verified, significant win.
                        if fresh_cost_new_est < old_cost_new_est * (1.0 - cfg.replace_margin)
                        {
                            fresh
                        } else {
                            old.clone()
                        }
                    }
                    None => fresh,
                }
            } else {
                fresh
            };
            let ctx = ExecContext::unbounded();
            chosen.build(&catalog, &ctx, None)?.run();
            per_query[qi].record(chosen.fingerprint(), ctx.clock.now());
            if cfg.pin_plans {
                pinned[qi] = Some(chosen);
            }
        }
    }
    Ok(RefreshReport { per_query })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::col;
    use rqp_workload::{tpch::TpchParams, TpchDb};

    fn setup() -> (Catalog, Vec<QuerySpec>) {
        let db = TpchDb::build(TpchParams { lineitem_rows: 3000, ..Default::default() }, 77);
        // Queries near the scan/index crossover, where sampled-stats jitter
        // flips plans.
        let workload: Vec<QuerySpec> = (0..3)
            .map(|i| {
                QuerySpec::new().table("lineitem").filter(
                    "lineitem",
                    col("lineitem.shipdate").between(i * 300, i * 300 + 900),
                )
            })
            .collect();
        (db.catalog, workload)
    }

    #[test]
    fn unpinned_refreshes_can_flip_plans() {
        let (catalog, workload) = setup();
        let report = stats_refresh_experiment(
            &catalog,
            "lineitem",
            &workload,
            RefreshConfig { epochs: 10, sample_size: 60, buckets: 4, ..Default::default() },
        )
        .unwrap();
        assert_eq!(report.per_query.len(), 3);
        for s in &report.per_query {
            assert_eq!(s.len(), 10);
        }
        // With tiny samples and coarse buckets near a crossover, flips are
        // expected (this is the point of the anecdote). We only require the
        // bookkeeping to be coherent; the bench asserts flip behavior on a
        // tuned scenario.
        assert!(report.worst_regression() >= 1.0);
    }

    #[test]
    fn pinning_never_flips_more_than_unpinned() {
        let (catalog, workload) = setup();
        let base = RefreshConfig { epochs: 10, sample_size: 60, buckets: 4, ..Default::default() };
        let unpinned =
            stats_refresh_experiment(&catalog, "lineitem", &workload, base).unwrap();
        let pinned = stats_refresh_experiment(
            &catalog,
            "lineitem",
            &workload,
            RefreshConfig { pin_plans: true, ..base },
        )
        .unwrap();
        assert!(
            pinned.total_flips() <= unpinned.total_flips(),
            "pinning {} vs unpinned {}",
            pinned.total_flips(),
            unpinned.total_flips()
        );
    }

    #[test]
    fn table_grows_across_epochs() {
        let (catalog, workload) = setup();
        let before = catalog.table("lineitem").unwrap().nrows();
        let _ = stats_refresh_experiment(
            &catalog,
            "lineitem",
            &workload[..1],
            RefreshConfig { epochs: 3, ..Default::default() },
        )
        .unwrap();
        // The experiment clones the catalog: the original is untouched.
        assert_eq!(catalog.table("lineitem").unwrap().nrows(), before);
    }
}
