//! The generic adaptivity loop: measure → analyze → plan → actuate.
//!
//! The Deshpande–Ives–Raman survey (the seminar's core reading on adaptive
//! query processing) describes every adaptive technique as an instance of
//! this four-phase control loop, differing only in how tightly the phases
//! interleave (System R: once per query; eddies: per tuple). The trait here
//! makes that structure explicit so new adaptive components plug into the
//! same driver, and so tests can assert loop behavior abstractly.

/// What an adaptivity-loop iteration decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopOutcome {
    /// Measurements look consistent with the current plan: keep going.
    Keep,
    /// The component changed its plan/configuration.
    Adapted,
    /// The component has finished (input exhausted, query done).
    Done,
}

/// A component driven by the measure/analyze/plan/actuate loop.
pub trait AdaptiveComponent {
    /// The measurement type collected each iteration.
    type Measurement;

    /// Measure: collect current runtime observations.
    fn measure(&mut self) -> Self::Measurement;

    /// Analyze + plan: decide whether the current strategy still holds.
    fn analyze(&mut self, m: &Self::Measurement) -> LoopOutcome;

    /// Actuate: apply the decision (called only when `analyze` returned
    /// [`LoopOutcome::Adapted`]).
    fn actuate(&mut self);

    /// Run the loop until `Done`, returning how many adaptations occurred.
    fn run_loop(&mut self, max_iterations: usize) -> usize {
        let mut adaptations = 0;
        for _ in 0..max_iterations {
            let m = self.measure();
            match self.analyze(&m) {
                LoopOutcome::Keep => {}
                LoopOutcome::Adapted => {
                    self.actuate();
                    adaptations += 1;
                }
                LoopOutcome::Done => break,
            }
        }
        adaptations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy component: a counter whose "plan" is a step size; it adapts the
    /// step whenever the measured value crosses a threshold.
    struct Stepper {
        value: i64,
        step: i64,
        thresholds: Vec<i64>,
        limit: i64,
    }

    impl AdaptiveComponent for Stepper {
        type Measurement = i64;

        fn measure(&mut self) -> i64 {
            self.value += self.step;
            self.value
        }

        fn analyze(&mut self, m: &i64) -> LoopOutcome {
            if *m >= self.limit {
                return LoopOutcome::Done;
            }
            if self.thresholds.first().map(|t| m >= t).unwrap_or(false) {
                return LoopOutcome::Adapted;
            }
            LoopOutcome::Keep
        }

        fn actuate(&mut self) {
            self.thresholds.remove(0);
            self.step *= 2;
        }
    }

    #[test]
    fn loop_counts_adaptations_and_stops() {
        let mut s = Stepper { value: 0, step: 1, thresholds: vec![5, 20], limit: 100 };
        let adaptations = s.run_loop(1000);
        assert_eq!(adaptations, 2);
        assert!(s.value >= 100);
        assert_eq!(s.step, 4);
    }

    #[test]
    fn loop_respects_iteration_bound() {
        let mut s = Stepper { value: 0, step: 1, thresholds: vec![], limit: i64::MAX };
        let adaptations = s.run_loop(10);
        assert_eq!(adaptations, 0);
        assert_eq!(s.value, 10);
    }
}
