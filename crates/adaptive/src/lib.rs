//! # rqp-adaptive
//!
//! The adaptivity loop — *measure → analyze → plan → actuate* (Deshpande,
//! Ives & Raman's survey frames every adaptive technique this way) — and the
//! two flagship instantiations the seminar's optimization/execution session
//! calls complementary:
//!
//! * [`pop`] — **POP / progressive optimization** (Markl et al., SIGMOD
//!   2004): CHECK operators with validity ranges halt a mis-planned query
//!   mid-flight and re-optimize *with the materialized intermediate as a new
//!   base relation*, so completed work is reused, not discarded. "POP
//!   recognizes and avoids problems at runtime."
//! * [`leo`] — **LEO** (Stillger et al., VLDB 2001): a post-mortem learner
//!   that compares per-operator actuals with estimates after each query and
//!   feeds adjustment factors back into future optimizations. "LEO can then
//!   figure out the causes of problems."
//! * [`aloop`] — the generic adaptivity-loop trait for building further
//!   adaptive components.

#![warn(missing_docs)]

pub mod aloop;
pub mod leo;
pub mod pop;

pub use aloop::{AdaptiveComponent, LoopOutcome};
pub use leo::{run_with_feedback, LeoReport};
pub use pop::{run_standard, run_with_pop, PopConfig, PopReport, PopRound};
