//! The LEO learning loop.
//!
//! Each execution compares the per-node actual cardinalities (observed via
//! the operators' telemetry spans) with the estimates the plan carried, and records adjustment
//! factors in a shared [`FeedbackRepo`]. Optimizing through a
//! [`FeedbackEstimator`](rqp_stats::FeedbackEstimator) then applies the
//! corrections — estimates converge toward actuals over repeated workloads
//! (experiment E19 measures the q-error decay).

use rqp_common::{Result, Row};
use rqp_exec::ExecContext;
use rqp_opt::{plan as plan_query, PlannerConfig, QuerySpec};
use rqp_stats::{CardEstimator, FeedbackRepo};
use rqp_storage::Catalog;
use std::cell::RefCell;
use std::rc::Rc;

/// Post-mortem record for one plan node.
#[derive(Debug, Clone)]
pub struct NodeObservation {
    /// Node fingerprint.
    pub label: String,
    /// Optimizer estimate.
    pub estimated: f64,
    /// Observed actual.
    pub actual: usize,
    /// Whether the observation was stored in the repository.
    pub learned: bool,
}

/// The result of one feedback-instrumented execution.
#[derive(Debug)]
pub struct LeoReport {
    /// Query result.
    pub rows: Vec<Row>,
    /// Cost charged.
    pub cost: f64,
    /// Per-node observations.
    pub observations: Vec<NodeObservation>,
    /// Fingerprint of the executed plan.
    pub plan_fingerprint: String,
}

impl LeoReport {
    /// Maximum q-error across the observed nodes.
    pub fn max_q_error(&self) -> f64 {
        self.observations
            .iter()
            .map(|o| rqp_stats::q_error(o.estimated, o.actual as f64))
            .fold(1.0, f64::max)
    }
}

/// Plan with `est` (ideally a [`FeedbackEstimator`](rqp_stats::FeedbackEstimator)
/// sharing `repo`), execute, and record every node's actual cardinality in
/// `repo`.
pub fn run_with_feedback(
    spec: &QuerySpec,
    catalog: &Catalog,
    est: &dyn CardEstimator,
    repo: &Rc<RefCell<FeedbackRepo>>,
    cfg: PlannerConfig,
    ctx: &ExecContext,
) -> Result<LeoReport> {
    let plan = plan_query(spec, catalog, est, cfg)?;
    let fingerprint = plan.fingerprint();
    let mut built = plan.build(catalog, ctx, None)?;
    let start = ctx.clock.now();
    let rows = built.run();
    let cost = ctx.clock.now() - start;
    let mut observations = Vec::with_capacity(built.meters.len());
    for (i, m) in built.meters.iter().enumerate() {
        let actual = m.actual_rows();
        let learned = match &m.feedback_signature {
            Some(sig) => {
                // LEO attributes error *per operator*: normalize this node's
                // estimate by its children's own errors, so a join whose
                // inputs were misestimated does not absorb (and later
                // double-apply) their correction. adjusted = est × ∏
                // (actual_child / est_child).
                let mut adjusted = m.est_rows;
                for c in built.children_of(i) {
                    let cm = &built.meters[c];
                    adjusted *=
                        (cm.actual_rows() as f64).max(1.0) / cm.est_rows.max(1.0);
                }
                repo.borrow_mut().observe(sig, adjusted, actual as f64);
                let q = rqp_stats::q_error(adjusted, actual as f64);
                ctx.metrics.histogram("leo.q_error").observe(q);
                if q > 1.0 + 1e-9 {
                    ctx.metrics.counter("leo.corrections").inc();
                    m.span.record_event(
                        &ctx.clock,
                        "leo.correction",
                        &format!("{sig}: est {adjusted:.1} vs actual {actual} (q {q:.2})"),
                    );
                }
                true
            }
            None => false,
        };
        observations.push(NodeObservation {
            label: m.label.clone(),
            estimated: m.est_rows,
            actual,
            learned,
        });
    }
    Ok(LeoReport { rows, cost, observations, plan_fingerprint: fingerprint })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Schema, Value};
    use rqp_stats::{FeedbackEstimator, LyingEstimator, StatsEstimator, TableStatsRegistry};
    use rqp_storage::Table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("g", DataType::Int)]);
        let mut t = Table::new("t", schema.clone());
        for i in 0..2000i64 {
            t.append(vec![Value::Int(i), Value::Int(i % 20)]);
        }
        c.add_table(t);
        let mut u = Table::new("u", schema);
        for i in 0..200i64 {
            u.append(vec![Value::Int(i), Value::Int(i % 20)]);
        }
        c.add_table(u);
        c
    }

    fn spec() -> QuerySpec {
        QuerySpec::new()
            .join("t", "g", "u", "g")
            .filter("t", col("t.k").lt(lit(500i64)))
    }

    #[test]
    fn observations_cover_scans_and_joins() {
        let c = catalog();
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&c, 16));
        let est = StatsEstimator::new(reg);
        let repo = Rc::new(RefCell::new(FeedbackRepo::new(1.0)));
        let ctx = ExecContext::unbounded();
        let report =
            run_with_feedback(&spec(), &c, &est, &repo, PlannerConfig::default(), &ctx)
                .unwrap();
        assert_eq!(report.rows.len(), 5000, "500 × 10 matches");
        assert!(report.observations.iter().any(|o| o.learned));
        assert!(report.cost > 0.0);
        assert!(!repo.borrow().is_empty());
        // Learned observations leave a telemetry trail.
        let hist = ctx.metrics.histogram("leo.q_error");
        assert!(hist.count() > 0, "every learned node observes its q-error");
    }

    #[test]
    fn misestimates_surface_as_correction_events() {
        let c = catalog();
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&c, 16));
        let repo = Rc::new(RefCell::new(FeedbackRepo::new(1.0)));
        let lying = LyingEstimator::new(Box::new(StatsEstimator::new(Rc::clone(&reg))))
            .with_table_factor("t", 0.02);
        let est = FeedbackEstimator::new(Box::new(lying), Rc::clone(&repo));
        let ctx = ExecContext::unbounded();
        run_with_feedback(&spec(), &c, &est, &repo, PlannerConfig::default(), &ctx).unwrap();
        assert!(ctx.metrics.counter("leo.corrections").get() >= 1);
        let events: Vec<_> = ctx
            .tracer
            .snapshot()
            .into_iter()
            .flat_map(|s| s.events)
            .filter(|e| e.kind == "leo.correction")
            .collect();
        assert!(!events.is_empty(), "50x lie must show up as correction events");
        assert!(events.iter().any(|e| e.detail.contains("q ")), "{events:?}");
    }

    #[test]
    fn feedback_corrects_future_estimates() {
        let c = catalog();
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&c, 16));
        let repo = Rc::new(RefCell::new(FeedbackRepo::new(1.0)));
        // A liar underestimates t's filter 50×; LEO should learn it away.
        let lying = LyingEstimator::new(Box::new(StatsEstimator::new(Rc::clone(&reg))))
            .with_table_factor("t", 0.02);
        let est = FeedbackEstimator::new(Box::new(lying), Rc::clone(&repo));
        let ctx = ExecContext::unbounded();
        let r1 =
            run_with_feedback(&spec(), &c, &est, &repo, PlannerConfig::default(), &ctx)
                .unwrap();
        let q1 = r1.max_q_error();
        let r2 =
            run_with_feedback(&spec(), &c, &est, &repo, PlannerConfig::default(), &ctx)
                .unwrap();
        let q2 = r2.max_q_error();
        assert!(
            q2 < q1 / 2.0,
            "feedback must cut the q-error: epoch1 {q1:.1} epoch2 {q2:.1}"
        );
        assert_eq!(r1.rows.len(), r2.rows.len());
    }

    #[test]
    fn repeated_epochs_converge_near_one() {
        let c = catalog();
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&c, 16));
        let repo = Rc::new(RefCell::new(FeedbackRepo::new(1.0)));
        let lying = LyingEstimator::new(Box::new(StatsEstimator::new(Rc::clone(&reg))))
            .with_table_factor("t", 0.02);
        let est = FeedbackEstimator::new(Box::new(lying), Rc::clone(&repo));
        let ctx = ExecContext::unbounded();
        let mut last_q = f64::INFINITY;
        for _ in 0..4 {
            let r = run_with_feedback(&spec(), &c, &est, &repo, PlannerConfig::default(), &ctx)
                .unwrap();
            last_q = r.max_q_error();
        }
        assert!(last_q < 2.5, "converged q-error should be small, got {last_q}");
    }
}
