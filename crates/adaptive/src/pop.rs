//! Progressive optimization (POP).
//!
//! The driver:
//!
//! 1. plans the query with the (possibly wrong) estimator;
//! 2. instruments the plan: a CHECK with a validity range is inserted above
//!    every join and every filtered base access that feeds a join;
//! 3. executes; if a CHECK fires, the materialized intermediate becomes a
//!    temporary base table with *actual* statistics, the remaining query is
//!    rewritten over it, and planning restarts (the estimator keeps its
//!    biases for untouched tables — exactly the POP setting);
//! 4. repeats up to `max_reopts` times; the final round runs without a
//!    halt-on-violation so the query always terminates.

use rqp_common::{Result, Row, RqpError};
use rqp_exec::{ExecContext, PopSignal};
use rqp_opt::validity::threshold_range;
use rqp_opt::{plan as plan_query, JoinEdge, PhysicalPlan, PlannerConfig, QuerySpec};
use rqp_stats::{CardEstimator, StatsEstimator, TableStats, TableStatsRegistry};
use rqp_storage::{Catalog, Table};
use std::collections::HashMap;
use std::rc::Rc;

/// POP driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct PopConfig {
    /// Validity ranges are `[est/theta, est*theta]`.
    pub theta: f64,
    /// Maximum re-optimizations before running to completion unchecked.
    pub max_reopts: usize,
}

impl Default for PopConfig {
    fn default() -> Self {
        PopConfig { theta: 5.0, max_reopts: 3 }
    }
}

/// One execution round.
#[derive(Debug, Clone)]
pub struct PopRound {
    /// Cost charged during this round (including materializations).
    pub cost: f64,
    /// Checkpoint that fired, if any: `(id, estimated, actual, reused_rows)`.
    pub violation: Option<(usize, f64, usize, usize)>,
    /// Fingerprint of the plan executed this round.
    pub plan_fingerprint: String,
}

/// Outcome of a POP execution.
#[derive(Debug)]
pub struct PopReport {
    /// The query result.
    pub rows: Vec<Row>,
    /// Per-round accounting.
    pub rounds: Vec<PopRound>,
    /// Total cost across rounds.
    pub total_cost: f64,
}

impl PopReport {
    /// Number of mid-flight re-optimizations that occurred.
    pub fn reoptimizations(&self) -> usize {
        self.rounds.len().saturating_sub(1)
    }
}

/// A wrapper that lets the caller keep injecting estimation error while the
/// POP driver swaps in actual statistics for materialized intermediates.
pub type EstimatorWrapper<'a> = dyn Fn(Box<dyn CardEstimator>) -> Box<dyn CardEstimator> + 'a;

/// Execute `spec` without POP: plan once, run to completion. Returns rows
/// and the cost charged.
pub fn run_standard(
    spec: &QuerySpec,
    catalog: &Catalog,
    registry: &TableStatsRegistry,
    wrap: &EstimatorWrapper<'_>,
    cfg: PlannerConfig,
    ctx: &ExecContext,
) -> Result<(Vec<Row>, f64)> {
    let est = wrap(Box::new(StatsEstimator::new(Rc::new(registry.clone()))));
    let plan = plan_query(spec, catalog, est.as_ref(), cfg)?;
    let start = ctx.clock.now();
    let rows = plan.build(catalog, ctx, None)?.run();
    Ok((rows, ctx.clock.now() - start))
}

/// Execute `spec` with POP enabled.
pub fn run_with_pop(
    spec: &QuerySpec,
    catalog: &Catalog,
    registry: &TableStatsRegistry,
    wrap: &EstimatorWrapper<'_>,
    cfg: PlannerConfig,
    pop: PopConfig,
    ctx: &ExecContext,
) -> Result<PopReport> {
    if pop.theta < 1.0 {
        return Err(RqpError::Invalid("POP theta must be ≥ 1".into()));
    }
    let mut cur_spec = spec.clone();
    let mut cur_catalog = catalog.clone();
    let mut cur_registry = registry.clone();
    let mut rounds: Vec<PopRound> = Vec::new();
    let mut total_cost = 0.0;

    for round in 0..=pop.max_reopts {
        let est = wrap(Box::new(StatsEstimator::new(Rc::new(cur_registry.clone()))));
        let plan = plan_query(&cur_spec, &cur_catalog, est.as_ref(), cfg)?;
        let checked = round < pop.max_reopts;
        let (plan, checkpoints) = if checked {
            instrument(plan, pop.theta)
        } else {
            (plan, HashMap::new())
        };
        let fingerprint = plan.fingerprint();
        let signal = PopSignal::new();
        let start = ctx.clock.now();
        let rows = plan
            .build(&cur_catalog, ctx, Some(Rc::clone(&signal)))?
            .run();
        let cost = ctx.clock.now() - start;
        total_cost += cost;

        match signal.take() {
            None => {
                rounds.push(PopRound { cost, violation: None, plan_fingerprint: fingerprint });
                return Ok(PopReport { rows, rounds, total_cost });
            }
            Some(v) => {
                let info = checkpoints.get(&v.checkpoint_id).ok_or_else(|| {
                    RqpError::Execution(format!(
                        "unknown checkpoint {} fired",
                        v.checkpoint_id
                    ))
                })?;
                rounds.push(PopRound {
                    cost,
                    violation: Some((
                        v.checkpoint_id,
                        v.estimated_rows,
                        v.actual_rows,
                        v.buffer.len(),
                    )),
                    plan_fingerprint: fingerprint,
                });
                ctx.metrics.counter("pop.reoptimizations").inc();
                // Materialize the intermediate as a temp base table with
                // actual statistics, rewrite the remaining query over it.
                let temp_name = format!("__pop_tmp{round}");
                let mut temp = Table::new(temp_name.clone(), v.schema.clone());
                temp.extend(v.buffer);
                let stats = TableStats::analyze(&temp, 32);
                cur_registry.insert(temp_name.clone(), stats);
                cur_catalog.add_table(temp);
                cur_spec = rewrite_spec(&cur_spec, &info.tables, &temp_name)?;
            }
        }
    }
    unreachable!("final round runs unchecked and returns")
}

/// Subtree metadata per checkpoint.
struct CheckpointInfo {
    tables: Vec<String>,
}

/// Insert CHECK operators above every join node and every filtered base
/// access that feeds a join. Returns the instrumented plan and the
/// checkpoint registry.
fn instrument(plan: PhysicalPlan, theta: f64) -> (PhysicalPlan, HashMap<usize, CheckpointInfo>) {
    let mut map = HashMap::new();
    let mut next_id = 0usize;
    let out = walk(plan, theta, false, &mut next_id, &mut map);
    (out, map)
}

fn walk(
    plan: PhysicalPlan,
    theta: f64,
    feeds_join: bool,
    next_id: &mut usize,
    map: &mut HashMap<usize, CheckpointInfo>,
) -> PhysicalPlan {
    use PhysicalPlan::*;
    let rebuilt = match plan {
        HashJoin { left, right, edges, est_rows, est_cost } => HashJoin {
            left: Box::new(walk(*left, theta, true, next_id, map)),
            right: Box::new(walk(*right, theta, true, next_id, map)),
            edges,
            est_rows,
            est_cost,
        },
        MergeJoin { left, right, edges, sort_left, sort_right, est_rows, est_cost } => {
            MergeJoin {
                left: Box::new(walk(*left, theta, true, next_id, map)),
                right: Box::new(walk(*right, theta, true, next_id, map)),
                edges,
                sort_left,
                sort_right,
                est_rows,
                est_cost,
            }
        }
        GJoin { left, right, edges, left_sorted, right_sorted, est_rows, est_cost } => GJoin {
            left: Box::new(walk(*left, theta, true, next_id, map)),
            right: Box::new(walk(*right, theta, true, next_id, map)),
            edges,
            left_sorted,
            right_sorted,
            est_rows,
            est_cost,
        },
        IndexNlJoin { outer, inner_table, inner_index, edge, inner_residual, est_rows, est_cost } => {
            IndexNlJoin {
                outer: Box::new(walk(*outer, theta, true, next_id, map)),
                inner_table,
                inner_index,
                edge,
                inner_residual,
                est_rows,
                est_cost,
            }
        }
        Aggregate { input, group_by, aggs, est_rows, est_cost } => Aggregate {
            input: Box::new(walk(*input, theta, false, next_id, map)),
            group_by,
            aggs,
            est_rows,
            est_cost,
        },
        Sort { input, keys, est_rows, est_cost } => Sort {
            input: Box::new(walk(*input, theta, false, next_id, map)),
            keys,
            est_rows,
            est_cost,
        },
        TopN { input, keys, n, est_rows, est_cost } => TopN {
            input: Box::new(walk(*input, theta, false, next_id, map)),
            keys,
            n,
            est_rows,
            est_cost,
        },
        Project { input, columns, est_rows, est_cost } => Project {
            input: Box::new(walk(*input, theta, false, next_id, map)),
            columns,
            est_rows,
            est_cost,
        },
        leaf => leaf,
    };
    // Wrap if this node feeds a join and its cardinality is estimated:
    // joins always; base accesses only when filtered (unfiltered scans have
    // exact cardinalities).
    let wrap = feeds_join
        && match &rebuilt {
            HashJoin { .. } | MergeJoin { .. } | GJoin { .. } | IndexNlJoin { .. } => true,
            TableScan { filter, .. } => filter.is_some(),
            IndexScan { .. } | MultiIndexScan { .. } => true,
            _ => false,
        };
    if !wrap {
        return rebuilt;
    }
    let id = *next_id;
    *next_id += 1;
    map.insert(id, CheckpointInfo { tables: rebuilt.tables() });
    let est_rows = rebuilt.est_rows();
    let est_cost = rebuilt.est_cost();
    PhysicalPlan::Check {
        input: Box::new(rebuilt),
        id,
        validity: threshold_range(est_rows, theta),
        est_rows,
        est_cost,
    }
}

/// Rewrite `spec` replacing the `covered` tables with the temp table.
fn rewrite_spec(spec: &QuerySpec, covered: &[String], temp: &str) -> Result<QuerySpec> {
    let mut out = QuerySpec {
        tables: Vec::new(),
        local_preds: HashMap::new(),
        joins: Vec::new(),
        projections: spec.projections.clone(),
        group_by: spec.group_by.clone(),
        aggs: spec.aggs.clone(),
        order_by: spec.order_by.clone(),
        limit: spec.limit,
    };
    out.tables.push(temp.to_owned());
    for t in &spec.tables {
        if !covered.contains(t) {
            out.tables.push(t.clone());
            if let Some(p) = spec.local_preds.get(t) {
                out.local_preds.insert(t.clone(), p.clone());
            }
        }
    }
    for e in &spec.joins {
        let l_cov = covered.contains(&e.left_table);
        let r_cov = covered.contains(&e.right_table);
        match (l_cov, r_cov) {
            (true, true) => {} // already applied inside the intermediate
            (false, false) => out.joins.push(e.clone()),
            (true, false) => out.joins.push(JoinEdge::new(
                temp,
                qualified(&e.left_table, &e.left_col),
                e.right_table.clone(),
                e.right_col.clone(),
            )),
            (false, true) => out.joins.push(JoinEdge::new(
                e.left_table.clone(),
                e.left_col.clone(),
                temp,
                qualified(&e.right_table, &e.right_col),
            )),
        }
    }
    if out.tables.len() > 1 && out.joins.is_empty() {
        return Err(RqpError::Planning(
            "POP rewrite produced a disconnected query".into(),
        ));
    }
    Ok(out)
}

fn qualified(table: &str, col: &str) -> String {
    if col.contains('.') {
        col.to_owned()
    } else {
        format!("{table}.{col}")
    }
}

/// The identity estimator wrapper (no injected error).
pub fn no_lies(inner: Box<dyn CardEstimator>) -> Box<dyn CardEstimator> {
    inner
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Schema, Value};
    use rqp_stats::LyingEstimator;

    /// fact(5000) ⋈ dim1(100) ⋈ dim2(50); fact.v filter with controllable
    /// real selectivity.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("d1", DataType::Int),
            ("d2", DataType::Int),
            ("v", DataType::Int),
        ]);
        let mut fact = Table::new("fact", schema);
        for i in 0..5000i64 {
            fact.append(vec![Value::Int(i % 100), Value::Int(i % 50), Value::Int(i % 1000)]);
        }
        c.add_table(fact);
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("a", DataType::Int)]);
        let mut d1 = Table::new("dim1", schema.clone());
        for i in 0..100i64 {
            d1.append(vec![Value::Int(i), Value::Int(i % 7)]);
        }
        c.add_table(d1);
        let mut d2 = Table::new("dim2", schema);
        for i in 0..50i64 {
            d2.append(vec![Value::Int(i), Value::Int(i % 3)]);
        }
        c.add_table(d2);
        c.create_index("ix_d1", "dim1", "k").unwrap();
        c.create_index("ix_d2", "dim2", "k").unwrap();
        c
    }

    fn spec() -> QuerySpec {
        QuerySpec::new()
            .join("fact", "d1", "dim1", "k")
            .join("fact", "d2", "dim2", "k")
            .filter("fact", col("fact.v").lt(lit(600i64)))
    }

    fn registry(c: &Catalog) -> TableStatsRegistry {
        TableStatsRegistry::analyze_catalog(c, 32)
    }

    #[test]
    fn accurate_estimates_never_reoptimize() {
        let c = catalog();
        let reg = registry(&c);
        let ctx = ExecContext::unbounded();
        let report = run_with_pop(
            &spec(),
            &c,
            &reg,
            &no_lies,
            PlannerConfig::default(),
            PopConfig::default(),
            &ctx,
        )
        .unwrap();
        assert_eq!(report.reoptimizations(), 0);
        assert_eq!(report.rows.len(), 3000, "fact.v < 600 → 3000 rows");
    }

    #[test]
    fn injected_underestimate_triggers_reoptimization() {
        let c = catalog();
        let reg = registry(&c);
        let ctx = ExecContext::unbounded();
        // Lie: fact filter is 100× less selective than estimated.
        let wrap: Box<EstimatorWrapper<'_>> =
            Box::new(|e| Box::new(LyingEstimator::new(e).with_table_factor("fact", 0.01)));
        let report = run_with_pop(
            &spec(),
            &c,
            &reg,
            wrap.as_ref(),
            PlannerConfig::default(),
            PopConfig { theta: 4.0, max_reopts: 3 },
            &ctx,
        )
        .unwrap();
        assert!(report.reoptimizations() >= 1, "violation must fire");
        assert_eq!(report.rows.len(), 3000, "answer unchanged by POP");
        let v = report.rounds[0].violation.expect("first round violated");
        assert!(v.2 > v.1 as usize, "actual exceeded estimate");
        assert!(v.3 > 0, "intermediate was preserved for reuse");
    }

    #[test]
    fn pop_beats_standard_under_bad_estimates() {
        let c = catalog();
        let reg = registry(&c);
        // Force a terrible plan: the optimizer believes the fact filter
        // keeps ~0 rows, so it drives nested probing; actually 3000 survive.
        let wrap: Box<EstimatorWrapper<'_>> =
            Box::new(|e| Box::new(LyingEstimator::new(e).with_table_factor("fact", 0.0002)));

        let ctx_std = ExecContext::unbounded();
        let (rows_std, cost_std) = run_standard(
            &spec(),
            &c,
            &reg,
            wrap.as_ref(),
            PlannerConfig::default(),
            &ctx_std,
        )
        .unwrap();

        let ctx_pop = ExecContext::unbounded();
        let report = run_with_pop(
            &spec(),
            &c,
            &reg,
            wrap.as_ref(),
            PlannerConfig::default(),
            PopConfig { theta: 4.0, max_reopts: 3 },
            &ctx_pop,
        )
        .unwrap();
        assert_eq!(rows_std.len(), report.rows.len());
        // POP should not be dramatically worse, and usually better; with
        // this workload shape (INL driven by a 100× underestimate) it wins.
        assert!(
            report.total_cost < cost_std * 1.5,
            "POP {:.1} vs standard {:.1}",
            report.total_cost,
            cost_std
        );
    }

    #[test]
    fn max_reopts_bounds_rounds() {
        let c = catalog();
        let reg = registry(&c);
        let ctx = ExecContext::unbounded();
        let wrap: Box<EstimatorWrapper<'_>> =
            Box::new(|e| Box::new(LyingEstimator::new(e).with_table_factor("fact", 0.0001)));
        let report = run_with_pop(
            &spec(),
            &c,
            &reg,
            wrap.as_ref(),
            PlannerConfig::default(),
            PopConfig { theta: 2.0, max_reopts: 2 },
            &ctx,
        )
        .unwrap();
        assert!(report.rounds.len() <= 3);
        assert_eq!(report.rows.len(), 3000);
    }

    #[test]
    fn rejects_bad_theta() {
        let c = catalog();
        let reg = registry(&c);
        let ctx = ExecContext::unbounded();
        assert!(run_with_pop(
            &spec(),
            &c,
            &reg,
            &no_lies,
            PlannerConfig::default(),
            PopConfig { theta: 0.5, max_reopts: 1 },
            &ctx,
        )
        .is_err());
    }

    #[test]
    fn rewrite_spec_covers_partial_join() {
        let s = spec();
        let covered = vec!["fact".to_string(), "dim1".to_string()];
        let out = rewrite_spec(&s, &covered, "__tmp").unwrap();
        assert_eq!(out.tables[0], "__tmp");
        assert!(out.tables.contains(&"dim2".to_string()));
        assert_eq!(out.joins.len(), 1);
        assert_eq!(out.joins[0].left_table, "__tmp");
        assert_eq!(out.joins[0].left_col, "fact.d2");
        assert!(out.local_preds.is_empty(), "fact's pred already applied");
    }
}
