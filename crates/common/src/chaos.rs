//! Deterministic, seeded fault injection — the "chaos governor".
//!
//! The seminar's resource-robustness sessions (FMT's fluctuating memory,
//! FPT's fluctuating parallelism) demand an engine whose performance degrades
//! *smoothly* when the environment misbehaves mid-query. To measure that, the
//! testbed needs faults it can inject on purpose: memory-budget shocks,
//! exchange-worker panics and stalls, transient scan errors.
//!
//! Determinism is the design center, exactly as for the cost clock: every
//! injection decision is a **pure hash** of `(seed, site, keys)` — never of
//! wall-clock time, thread scheduling, or call order. The keys are chosen to
//! be schedule-independent (a scan keys on the *absolute page index*, a
//! worker fault on the *worker index and attempt number*), so a run with a
//! fixed chaos seed and worker count reproduces bit-for-bit, and page-keyed
//! decisions don't even depend on how a table is partitioned across workers.
//!
//! A disabled policy ([`ChaosPolicy::off`], the default on every
//! `ExecContext`) makes every decision a constant `None`/`false`, so
//! chaos-off runs are byte-identical to builds that predate this module.

use crate::error::RqpError;
use std::sync::Once;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Tuning knobs for a [`ChaosPolicy`]. All rates are probabilities in
/// `[0, 1]`; a rate of zero disables that fault class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed every injection decision is derived from.
    pub seed: u64,
    /// Probability that reading a scan page raises a transient I/O error.
    pub scan_fault_rate: f64,
    /// Transient-error retries a scan may burn before escalating to fatal.
    pub scan_max_retries: u32,
    /// Probability that a scan page boundary delivers a memory shock
    /// (budget shrink or restore) to the governor.
    pub shock_rate: f64,
    /// Probability that an exchange worker panics at startup.
    pub worker_panic_rate: f64,
    /// Probability that an exchange worker stalls (extra I/O) at startup.
    pub worker_stall_rate: f64,
    /// Sequential pages a stalled worker charges before proceeding.
    pub worker_stall_pages: f64,
    /// Times the exchange re-runs a lost partition before giving up.
    pub worker_max_retries: u32,
    /// Probability that faulting a page into the buffer pool raises a
    /// transient page-I/O error.
    pub page_fault_rate: f64,
    /// Page-I/O retries the pager may burn before escalating to fatal.
    pub page_max_retries: u32,
}

impl ChaosConfig {
    /// The disabled configuration: every rate zero.
    pub fn off() -> Self {
        ChaosConfig {
            seed: 0,
            scan_fault_rate: 0.0,
            scan_max_retries: 8,
            shock_rate: 0.0,
            worker_panic_rate: 0.0,
            worker_stall_rate: 0.0,
            worker_stall_pages: 16.0,
            worker_max_retries: 4,
            page_fault_rate: 0.0,
            page_max_retries: 8,
        }
    }

    /// A moderate default fault mix for the given seed: the profile the
    /// `RQP_CHAOS_SEED` CI leg and the chaos test-suite run under.
    pub fn standard(seed: u64) -> Self {
        ChaosConfig {
            seed,
            scan_fault_rate: 0.05,
            scan_max_retries: 8,
            shock_rate: 0.02,
            worker_panic_rate: 0.2,
            worker_stall_rate: 0.2,
            worker_stall_pages: 16.0,
            worker_max_retries: 4,
            page_fault_rate: 0.05,
            page_max_retries: 8,
        }
    }
}

/// What an injected worker fault does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerFault {
    /// The worker panics before producing anything.
    Panic,
    /// The worker charges this many extra sequential pages, then proceeds.
    Stall(f64),
}

/// Payload of an injected worker panic. The exchange downcasts join-handle
/// errors to this (or to an escalated [`RqpError`]) to distinguish injected
/// faults — which it retries — from genuine bugs, which it re-raises.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPanic {
    /// Worker index the panic was injected into.
    pub worker: usize,
    /// Attempt number (0 = first execution, n = nth retry).
    pub attempt: u32,
}

/// The fault-injection policy carried by `ExecContext`.
///
/// Every decision method is a pure function of the config seed and the
/// caller-supplied site keys; the policy holds no mutable state.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPolicy {
    cfg: ChaosConfig,
    enabled: bool,
}

impl ChaosPolicy {
    /// A policy injecting faults per `cfg`.
    pub fn new(cfg: ChaosConfig) -> Self {
        let enabled = cfg.scan_fault_rate > 0.0
            || cfg.shock_rate > 0.0
            || cfg.worker_panic_rate > 0.0
            || cfg.worker_stall_rate > 0.0
            || cfg.page_fault_rate > 0.0;
        ChaosPolicy { cfg, enabled }
    }

    /// The disabled policy: never injects anything.
    pub fn off() -> Self {
        ChaosPolicy::new(ChaosConfig::off())
    }

    /// The standard fault mix under the given seed.
    pub fn seeded(seed: u64) -> Self {
        ChaosPolicy::new(ChaosConfig::standard(seed))
    }

    /// Policy from the `RQP_CHAOS_SEED` environment variable: the standard
    /// mix when set to a number, disabled when unset (or unparsable). This
    /// is how the CI chaos leg turns the whole test suite hostile.
    pub fn from_env() -> Self {
        match std::env::var("RQP_CHAOS_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            Some(seed) => ChaosPolicy::seeded(seed),
            None => ChaosPolicy::off(),
        }
    }

    /// Whether any fault class has a non-zero rate. Operators check this
    /// once and skip their injection points entirely when false.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The policy's configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// A uniform draw in `[0, 1)` that is a pure function of
    /// `(seed, site, keys)`.
    fn draw(&self, site: &str, keys: &[u64]) -> f64 {
        let mut h = fnv1a(FNV_OFFSET ^ self.cfg.seed.rotate_left(23), site.as_bytes());
        for k in keys {
            h = fnv1a(h, &k.to_le_bytes());
        }
        // Top 53 bits as a dyadic fraction: exact in an f64.
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should reading `page` of `table` raise a transient I/O error on this
    /// `attempt`? Keyed by the absolute page index, so the decision is the
    /// same no matter how the table is partitioned across workers.
    pub fn scan_fault(&self, table: &str, page: u64, attempt: u32) -> bool {
        self.enabled
            && self.cfg.scan_fault_rate > 0.0
            && self.draw("scan_fault", &[fnv1a(FNV_OFFSET, table.as_bytes()), page, u64::from(attempt)])
                < self.cfg.scan_fault_rate
    }

    /// Transient-error retries a scan may burn before escalating to fatal.
    pub fn scan_max_retries(&self) -> u32 {
        self.cfg.scan_max_retries
    }

    /// Should faulting `page` of the table keyed `table_key` into the buffer
    /// pool raise a transient page-I/O error on this `attempt`? Keyed by the
    /// absolute page index (like [`scan_fault`](Self::scan_fault)), so the
    /// decision is invariant under worker count and partitioning.
    pub fn page_io_fault(&self, table_key: u64, page: u64, attempt: u32) -> bool {
        self.enabled
            && self.cfg.page_fault_rate > 0.0
            && self.draw("page_io_fault", &[table_key, page, u64::from(attempt)])
                < self.cfg.page_fault_rate
    }

    /// Page-I/O retries the pager may burn before escalating to fatal.
    pub fn page_max_retries(&self) -> u32 {
        self.cfg.page_max_retries
    }

    /// The stable chaos/pool key of a table name: FNV-1a of the bytes. Both
    /// the pager and the chaos policy key pages by `(table_key, page)` so
    /// decisions survive catalog snapshots rebuilding `Table` handles.
    pub fn table_key(table: &str) -> u64 {
        fnv1a(FNV_OFFSET, table.as_bytes())
    }

    /// Memory shock at `page` of `table`: `Some(fraction)` shrinks the
    /// budget to `fraction × base` (monotone — shocks only tighten), and
    /// `Some(1.0)` restores the base budget (the "grow" half of FMT).
    pub fn memory_shock(&self, table: &str, page: u64) -> Option<f64> {
        if !self.enabled || self.cfg.shock_rate <= 0.0 {
            return None;
        }
        let key = fnv1a(FNV_OFFSET, table.as_bytes());
        if self.draw("memory_shock", &[key, page]) >= self.cfg.shock_rate {
            return None;
        }
        // Which shock: mostly shrinks of varying depth, sometimes a restore.
        const FRACTIONS: [f64; 4] = [0.5, 0.25, 0.125, 1.0];
        let pick = (self.draw("shock_fraction", &[key, page]) * FRACTIONS.len() as f64) as usize;
        Some(FRACTIONS[pick.min(FRACTIONS.len() - 1)])
    }

    /// Fault injected into exchange `worker` on `attempt` (0 = the original
    /// execution, 1.. = retries of a lost partition).
    pub fn worker_fault(&self, worker: usize, attempt: u32) -> Option<WorkerFault> {
        if !self.enabled {
            return None;
        }
        let u = self.draw("worker_fault", &[worker as u64, u64::from(attempt)]);
        if u < self.cfg.worker_panic_rate {
            Some(WorkerFault::Panic)
        } else if u < self.cfg.worker_panic_rate + self.cfg.worker_stall_rate {
            Some(WorkerFault::Stall(self.cfg.worker_stall_pages))
        } else {
            None
        }
    }

    /// Times the exchange re-runs a lost partition before giving up.
    pub fn worker_max_retries(&self) -> u32 {
        self.cfg.worker_max_retries
    }
}

impl Default for ChaosPolicy {
    fn default() -> Self {
        ChaosPolicy::off()
    }
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// stderr backtrace for *injected* panics — payloads of type [`ChaosPanic`]
/// or [`RqpError`] — and delegates every other panic to the previous hook.
/// Chaos runs inject thousands of panics on purpose; drowning test output in
/// "thread panicked" noise would hide real failures.
pub fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.is::<ChaosPanic>() || payload.is::<RqpError>() {
                return;
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_policy_never_injects() {
        let p = ChaosPolicy::off();
        assert!(!p.is_enabled());
        let tk = ChaosPolicy::table_key("t");
        for page in 0..1000 {
            assert!(!p.scan_fault("t", page, 0));
            assert!(!p.page_io_fault(tk, page, 0));
            assert!(p.memory_shock("t", page).is_none());
        }
        for w in 0..64 {
            assert!(p.worker_fault(w, 0).is_none());
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_keys() {
        let a = ChaosPolicy::seeded(42);
        let b = ChaosPolicy::seeded(42);
        for page in 0..500 {
            assert_eq!(a.scan_fault("t", page, 0), b.scan_fault("t", page, 0));
            assert_eq!(a.memory_shock("t", page), b.memory_shock("t", page));
        }
        for w in 0..16 {
            for att in 0..4 {
                assert_eq!(a.worker_fault(w, att), b.worker_fault(w, att));
            }
        }
    }

    #[test]
    fn different_seeds_disagree_somewhere() {
        let a = ChaosPolicy::seeded(1);
        let b = ChaosPolicy::seeded(2);
        let diverges = (0..2000).any(|p| a.scan_fault("t", p, 0) != b.scan_fault("t", p, 0));
        assert!(diverges, "two seeds should not share a fault schedule");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = ChaosPolicy::new(ChaosConfig {
            scan_fault_rate: 0.2,
            ..ChaosConfig::standard(7)
        });
        let hits = (0..10_000).filter(|&pg| p.scan_fault("t", pg, 0)).count();
        assert!(
            (1_500..2_500).contains(&hits),
            "~20% of pages should fault, got {hits}/10000"
        );
    }

    #[test]
    fn shock_fractions_are_from_the_palette_and_include_restores() {
        let p = ChaosPolicy::new(ChaosConfig { shock_rate: 1.0, ..ChaosConfig::standard(11) });
        let mut restores = 0;
        let mut shrinks = 0;
        for page in 0..1000 {
            match p.memory_shock("t", page) {
                Some(f) if f >= 1.0 => restores += 1,
                Some(f) => {
                    assert!([0.5, 0.25, 0.125].contains(&f), "unexpected fraction {f}");
                    shrinks += 1;
                }
                None => panic!("shock_rate=1.0 must always shock"),
            }
        }
        assert!(restores > 0, "the grow half of FMT must occur");
        assert!(shrinks > restores, "shrinks dominate the palette");
    }

    #[test]
    fn attempts_get_independent_draws() {
        // A page that faults on attempt 0 must be able to succeed on a
        // retry: the attempt number is part of the key.
        let p = ChaosPolicy::new(ChaosConfig {
            scan_fault_rate: 0.5,
            ..ChaosConfig::standard(3)
        });
        let faulting: Vec<u64> = (0..200).filter(|&pg| p.scan_fault("t", pg, 0)).collect();
        assert!(!faulting.is_empty());
        let recovered = faulting.iter().any(|&pg| !p.scan_fault("t", pg, 1));
        assert!(recovered, "retries must redraw, not repeat the fault");
    }

    #[test]
    fn page_io_faults_are_page_keyed_and_redraw_per_attempt() {
        // Same table key + page + attempt → same decision across policy
        // instances (worker-count invariance rests on this purity)…
        let a = ChaosPolicy::new(ChaosConfig { page_fault_rate: 0.3, ..ChaosConfig::standard(9) });
        let b = ChaosPolicy::new(ChaosConfig { page_fault_rate: 0.3, ..ChaosConfig::standard(9) });
        let tk = ChaosPolicy::table_key("t");
        for page in 0..500 {
            assert_eq!(a.page_io_fault(tk, page, 0), b.page_io_fault(tk, page, 0));
        }
        // …while a faulting page can recover on a retry (attempt in the key).
        let faulting: Vec<u64> = (0..200).filter(|&pg| a.page_io_fault(tk, pg, 0)).collect();
        assert!(!faulting.is_empty(), "30% of 200 pages should fault");
        assert!(faulting.iter().any(|&pg| !a.page_io_fault(tk, pg, 1)));
        // Distinct tables get independent schedules.
        let other = ChaosPolicy::table_key("u");
        assert!((0..500).any(|pg| a.page_io_fault(tk, pg, 0) != a.page_io_fault(other, pg, 0)));
    }

    #[test]
    fn env_policy_defaults_off() {
        // The variable is not set in unit-test runs unless the chaos CI leg
        // sets it; both states must construct a valid policy.
        let p = ChaosPolicy::from_env();
        if std::env::var("RQP_CHAOS_SEED").is_err() {
            assert!(!p.is_enabled());
        }
    }
}
