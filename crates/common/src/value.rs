//! Dynamically typed scalar values.
//!
//! The engine is dynamically typed at the row level: every cell is a
//! [`Value`]. Storage keeps columns in typed vectors (`rqp-storage`), but rows
//! flowing between operators are `Vec<Value>`. A [`Value`] has a *total*
//! order (`Ord`), with floats ordered by `f64::total_cmp` and `Null` sorting
//! first, so values can be used directly as B-tree keys and sort keys.

use std::cmp::Ordering;
use std::fmt;

/// The type of a column or scalar expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STR"),
        }
    }
}

/// A dynamically typed scalar value.
///
/// `Null` exists for outer-join padding and absent aggregates; the synthetic
/// data generators never produce it inside base tables.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (sorts before everything; equal to itself for grouping).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an `i64`, coercing from float by truncation.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Extract an `f64`, coercing from int.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Numeric comparison helper: compares Int/Float cross-type numerically,
    /// strings lexicographically, `Null` first. This is the engine-wide total
    /// order used by sorts, merges and B-trees.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            // Heterogeneous non-numeric comparisons order by type tag so the
            // order stays total; queries never rely on this.
            (Int(_) | Float(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_) | Float(_)) => Ordering::Greater,
        }
    }

    /// Arithmetic addition (numeric only); `Null` propagates.
    pub fn add(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a + b, |a, b| a + b)
    }

    /// Arithmetic subtraction (numeric only); `Null` propagates.
    pub fn sub(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a - b, |a, b| a - b)
    }

    /// Arithmetic multiplication (numeric only); `Null` propagates.
    pub fn mul(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a * b, |a, b| a * b)
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    f_int: impl Fn(i64, i64) -> i64,
    f_float: impl Fn(f64, f64) -> f64,
) -> Value {
    use Value::*;
    match (a, b) {
        (Int(x), Int(y)) => Int(f_int(*x, *y)),
        (Float(x), Float(y)) => Float(f_float(*x, *y)),
        (Int(x), Float(y)) => Float(f_float(*x as f64, *y)),
        (Float(x), Int(y)) => Float(f_float(*x, *y as f64)),
        _ => Null,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash ints and integral floats identically so Int(3) and
            // Float(3.0), which compare equal, also hash equal.
            Value::Int(v) => {
                1u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_order() {
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.0)), Ordering::Equal);
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_eq!(Value::Int(7), Value::Float(7.0));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Value::Int(5));
        assert_eq!(Value::Int(2).mul(&Value::Float(1.5)), Value::Float(3.0));
        assert!(Value::Null.add(&Value::Int(1)).is_null());
        assert_eq!(Value::Int(5).sub(&Value::Int(2)), Value::Int(3));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Float(2.9).as_int(), Some(2));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("a".into()).to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
