//! Dynamically typed scalar values.
//!
//! The engine is dynamically typed at the row level: every cell is a
//! [`Value`]. Storage keeps columns in typed vectors (`rqp-storage`), but rows
//! flowing between operators are `Vec<Value>`. A [`Value`] has a *total*
//! order (`Ord`), with floats ordered by `f64::total_cmp` and `Null` sorting
//! first, so values can be used directly as B-tree keys and sort keys.

use std::cmp::Ordering;
use std::fmt;

/// The type of a column or scalar expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STR"),
        }
    }
}

/// A dynamically typed scalar value.
///
/// `Null` exists for outer-join padding and absent aggregates; the synthetic
/// data generators never produce it inside base tables.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (sorts before everything; equal to itself for grouping).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an `i64`, coercing from float by truncation.
    ///
    /// **Not a key-normalization function**: `Float(2.9)` and `Float(2.1)`
    /// both truncate to `2` yet compare unequal, so any code building join,
    /// group-by, or partitioning keys must go through [`Value::key_atom`]
    /// instead, which only collapses values that [`Value::total_cmp`] calls
    /// equal. `as_int` is for sites that *want* lossy numeric coercion:
    /// workload parameter plumbing, literal extraction, index bounds.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Extract an `f64`, coercing from int.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Numeric comparison helper: compares Int/Float cross-type numerically,
    /// strings lexicographically, `Null` first. This is the engine-wide total
    /// order used by sorts, merges and B-trees.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            // Heterogeneous non-numeric comparisons order by type tag so the
            // order stays total; queries never rely on this.
            (Int(_) | Float(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_) | Float(_)) => Ordering::Greater,
        }
    }

    /// Arithmetic addition (numeric only); `Null` propagates.
    pub fn add(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a + b, |a, b| a + b)
    }

    /// Arithmetic subtraction (numeric only); `Null` propagates.
    pub fn sub(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a - b, |a, b| a - b)
    }

    /// Arithmetic multiplication (numeric only); `Null` propagates.
    pub fn mul(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a * b, |a, b| a * b)
    }

    /// The canonical hashing identity of this value.
    ///
    /// Every hash the engine derives from a `Value` — the FNV stream behind
    /// hash repartitioning and row checksums, and batch join/group keys —
    /// must be computed from the atom, never from the raw variant, so that
    /// `a == b` (under [`Value::total_cmp`]) implies `a.key_atom() ==
    /// b.key_atom()`. The variant-level encoding cannot be used directly
    /// because equality is cross-type: `Int(3) == Float(3.0)`.
    ///
    /// Collapsing rules (collisions of *unequal* values are fine; splitting
    /// *equal* values is the bug this prevents):
    ///
    /// * `Int(v)` round-trips through `f64`: for `|v| ≤ 2^53` this is the
    ///   identity, beyond that it collapses the values `total_cmp` already
    ///   treats as equal to their shared `f64` image (`Int(2^53)` and
    ///   `Int(2^53 + 1)` both equal `Float(2^53.0)`, so all three share one
    ///   atom).
    /// * An integral, i64-representable `Float` becomes the same
    ///   [`KeyAtom::Int`] as its integer twin. `-0.0` lands on `Int(0)`
    ///   alongside `0.0` — a harmless collision: `total_cmp` still orders
    ///   `-0.0 < 0.0` and the two stay *unequal*, we just spend one hash
    ///   bucket on the pair.
    /// * Any other float (fractional, ±∞, NaN) keys on its exact bit
    ///   pattern, matching `total_cmp`'s bit-level float equality (each NaN
    ///   payload is its own key).
    pub fn key_atom(&self) -> KeyAtom<'_> {
        match self {
            Value::Null => KeyAtom::Null,
            Value::Int(v) => key_atom_i64(*v),
            Value::Float(f) => key_atom_f64(*f),
            Value::Str(s) => KeyAtom::Str(s),
        }
    }
}

/// The canonical hashing identity of a [`Value`]; see [`Value::key_atom`].
///
/// `Copy`, `Eq`, and `Hash`, so batch operators can use atoms directly as
/// hash-table keys without materializing `Value`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyAtom<'a> {
    /// `Null` (equal only to itself).
    Null,
    /// A numeric value exactly representable as `i64` (canonical numeric
    /// form: `Int(3)` and `Float(3.0)` both land here as `Int(3)`).
    Int(i64),
    /// A float with no `i64` twin, keyed by its exact bit pattern.
    FloatBits(u64),
    /// String contents.
    Str(&'a str),
}

/// [`Value::key_atom`] for a raw `i64`, without constructing a `Value`.
pub fn key_atom_i64(v: i64) -> KeyAtom<'static> {
    // Identity for |v| ≤ 2^53; beyond that, collapse to the f64 image so the
    // atom agrees with cross-type equality (see `Value::key_atom`). The
    // saturating cast is exact even at the edge: `i64::MAX as f64` rounds up
    // to 2^63, which saturates straight back to `i64::MAX`.
    KeyAtom::Int((v as f64) as i64)
}

/// [`Value::key_atom`] for a raw `f64`, without constructing a `Value`.
pub fn key_atom_f64(f: f64) -> KeyAtom<'static> {
    let i = f as i64; // saturating; NaN casts to 0 but fails the check below
    if f == f.trunc() && (i as f64) == f {
        KeyAtom::Int(i)
    } else {
        KeyAtom::FloatBits(f.to_bits())
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    f_int: impl Fn(i64, i64) -> i64,
    f_float: impl Fn(f64, f64) -> f64,
) -> Value {
    use Value::*;
    match (a, b) {
        (Int(x), Int(y)) => Int(f_int(*x, *y)),
        (Float(x), Float(y)) => Float(f_float(*x, *y)),
        (Int(x), Float(y)) => Float(f_float(*x as f64, *y)),
        (Float(x), Int(y)) => Float(f_float(*x, *y as f64)),
        _ => Null,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash ints and integral floats identically so Int(3) and
            // Float(3.0), which compare equal, also hash equal.
            Value::Int(v) => {
                1u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_order() {
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.0)), Ordering::Equal);
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_eq!(Value::Int(7), Value::Float(7.0));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Value::Int(5));
        assert_eq!(Value::Int(2).mul(&Value::Float(1.5)), Value::Float(3.0));
        assert!(Value::Null.add(&Value::Int(1)).is_null());
        assert_eq!(Value::Int(5).sub(&Value::Int(2)), Value::Int(3));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Float(2.9).as_int(), Some(2));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn key_atom_collapses_numeric_twins() {
        // The headline bug class: numerically-equal mixed-type keys must
        // share one atom.
        assert_eq!(Value::Int(3).key_atom(), Value::Float(3.0).key_atom());
        assert_eq!(Value::Int(3).key_atom(), KeyAtom::Int(3));
        assert_eq!(Value::Int(-7).key_atom(), Value::Float(-7.0).key_atom());
        assert_eq!(Value::Int(0).key_atom(), Value::Float(0.0).key_atom());
        // Unequal values may share an atom (collision) but these must not:
        assert_ne!(Value::Float(2.5).key_atom(), Value::Int(2).key_atom());
        assert_ne!(Value::Float(2.5).key_atom(), Value::Int(3).key_atom());
        assert_eq!(Value::Float(2.5).key_atom(), KeyAtom::FloatBits(2.5f64.to_bits()));
        assert_eq!(Value::Null.key_atom(), KeyAtom::Null);
        assert_eq!(Value::Str("k".into()).key_atom(), KeyAtom::Str("k"));
    }

    #[test]
    fn key_atom_documented_edge_semantics() {
        // -0.0: unequal to 0.0 under total_cmp (deliberately), but shares
        // its hash bucket — a documented, harmless collision.
        assert_ne!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(Value::Float(-0.0).key_atom(), KeyAtom::Int(0));
        // Beyond 2^53 the equality classes blur: Int(2^53), Int(2^53 + 1)
        // and Float(2^53.0) all compare equal pairwise to the float, and all
        // three collapse to one atom.
        let big = 1i64 << 53;
        assert_eq!(Value::Int(big), Value::Float(big as f64));
        assert_eq!(Value::Int(big + 1), Value::Float(big as f64));
        assert_eq!(Value::Int(big).key_atom(), Value::Float(big as f64).key_atom());
        assert_eq!(Value::Int(big + 1).key_atom(), Value::Int(big).key_atom());
        // The i64 extremes survive the f64 round-trip via saturation.
        assert_eq!(Value::Int(i64::MAX).key_atom(), Value::Float(9.223372036854776e18).key_atom());
        assert_eq!(Value::Int(i64::MIN).key_atom(), KeyAtom::Int(i64::MIN));
        // Non-finite floats key on their bits; each NaN payload is its own key.
        assert_eq!(Value::Float(f64::INFINITY).key_atom(), KeyAtom::FloatBits(f64::INFINITY.to_bits()));
        assert_eq!(Value::Float(f64::NAN).key_atom(), KeyAtom::FloatBits(f64::NAN.to_bits()));
    }

    #[test]
    fn key_atom_agrees_with_equality_on_random_pairs() {
        // Pseudo-random Int/Float pairs across magnitudes: a == b must imply
        // atom(a) == atom(b). (An LCG keeps this dependency-free.)
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let mut equal_pairs = 0;
        for _ in 0..20_000 {
            let r = next();
            let magnitude = [1i64, 1000, 1 << 30, 1 << 53, i64::MAX][(r % 5) as usize];
            let i = (next() as i64) % magnitude;
            let f = if r & 8 == 0 { i as f64 } else { (next() as i64 % magnitude) as f64 / 4.0 };
            let (a, b) = (Value::Int(i), Value::Float(f));
            if a == b {
                equal_pairs += 1;
                assert_eq!(a.key_atom(), b.key_atom(), "{a:?} == {b:?} but atoms differ");
            }
            assert_eq!(a.key_atom(), Value::Int(i).key_atom());
            assert_eq!(b.key_atom(), Value::Float(f).key_atom());
        }
        assert!(equal_pairs > 100, "sweep must exercise equal mixed-type pairs: {equal_pairs}");
    }

    #[test]
    fn as_int_truncates_and_is_not_a_key_path() {
        // Pinned coercion semantics: as_int truncates toward zero…
        assert_eq!(Value::Float(2.9).as_int(), Some(2));
        assert_eq!(Value::Float(-2.9).as_int(), Some(-2));
        // …which collapses *unequal* values — exactly why key-building code
        // must use key_atom, where those stay distinct.
        assert_eq!(Value::Float(2.9).as_int(), Value::Float(2.1).as_int());
        assert_ne!(Value::Float(2.9).key_atom(), Value::Float(2.1).key_atom());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("a".into()).to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
