//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, RqpError>;

/// All errors the `rqp` engine can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RqpError {
    /// A referenced column does not exist in the schema.
    ColumnNotFound(String),
    /// A column suffix matched more than one qualified field.
    AmbiguousColumn(String),
    /// A referenced table does not exist in the catalog.
    TableNotFound(String),
    /// A referenced index does not exist.
    IndexNotFound(String),
    /// Operation applied to a value of the wrong type.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually got.
        got: String,
    },
    /// The optimizer could not produce a plan.
    Planning(String),
    /// A runtime execution failure.
    Execution(String),
    /// An invalid argument or configuration.
    Invalid(String),
    /// A transient I/O failure at a scan boundary. Retryable: the engine
    /// re-reads the page (charging the re-read) instead of failing the query.
    TransientIo {
        /// Where the fault occurred (e.g. `table/page`).
        site: String,
        /// Which attempt observed it (0 = first read).
        attempt: u32,
    },
    /// An exchange worker was lost and its partition could not be recovered
    /// within the retry budget. Fatal: the retries already happened.
    WorkerFailed {
        /// Index of the lost worker.
        worker: usize,
        /// Executions attempted (original + retries).
        attempts: u32,
    },
    /// A partition key column index fell outside the row.
    KeyOutOfBounds {
        /// The offending key index.
        index: usize,
        /// The row's width.
        width: usize,
    },
    /// Range partitioning was asked to split on a non-numeric key.
    NonNumericKey(String),
    /// The query was cancelled by its controller (session close, explicit
    /// `CancelToken::cancel`). Not retryable: a retry would resurrect work
    /// the controller asked to stop.
    Cancelled,
    /// The query ran past its deadline (in cost units on its virtual clock)
    /// and was cooperatively aborted. Not retryable for the same reason.
    DeadlineExceeded,
    /// A wire-protocol violation: corrupt frame, unknown message type,
    /// version mismatch, or a malformed payload. Fatal — the peer is
    /// speaking a different (or damaged) protocol, so the connection is
    /// torn down rather than retried.
    Protocol(String),
    /// The buffer pool could not find an evictable frame: every resident
    /// page is pinned and the brokered page budget is spent. Fatal — a
    /// retry would re-request the same frame against the same budget; the
    /// broker has to grow the budget (or a pin has to drop) first.
    PageBudgetExhausted {
        /// Frames currently pinned.
        pinned: usize,
        /// The page budget in frames.
        budget: usize,
    },
    /// A transient page-I/O failure while faulting a page into the buffer
    /// pool. Retryable: the pager re-reads the page (charging the re-read)
    /// instead of failing the query.
    PageIo {
        /// Where the fault occurred (`table/page`).
        site: String,
        /// Which attempt observed it (0 = first read).
        attempt: u32,
    },
}

/// `(wire code, canonical name)` of every [`RqpError`] variant, in wire-code
/// order. The table is the single registry new variants must be added to;
/// the exhaustive-match in [`RqpError::wire_code`] makes forgetting a
/// compile error, and the round-trip test makes an aliased code a test
/// failure.
pub const WIRE_CODES: &[(u16, &str)] = &[
    (1, "ColumnNotFound"),
    (2, "AmbiguousColumn"),
    (3, "TableNotFound"),
    (4, "IndexNotFound"),
    (5, "TypeMismatch"),
    (6, "Planning"),
    (7, "Execution"),
    (8, "Invalid"),
    (9, "TransientIo"),
    (10, "WorkerFailed"),
    (11, "KeyOutOfBounds"),
    (12, "NonNumericKey"),
    (13, "Cancelled"),
    (14, "DeadlineExceeded"),
    (15, "Protocol"),
    (16, "PageBudgetExhausted"),
    (17, "PageIo"),
];

impl RqpError {
    /// The stable numeric wire code of this variant — what the network
    /// protocol puts on the wire instead of matching display strings.
    /// Codes are append-only: a published code is never reused or
    /// renumbered, so old clients keep classifying errors correctly.
    pub fn wire_code(&self) -> u16 {
        // Exhaustive on purpose: adding a variant without assigning it a
        // code (and a WIRE_CODES row) must fail to compile, not silently
        // alias an existing code.
        match self {
            RqpError::ColumnNotFound(_) => 1,
            RqpError::AmbiguousColumn(_) => 2,
            RqpError::TableNotFound(_) => 3,
            RqpError::IndexNotFound(_) => 4,
            RqpError::TypeMismatch { .. } => 5,
            RqpError::Planning(_) => 6,
            RqpError::Execution(_) => 7,
            RqpError::Invalid(_) => 8,
            RqpError::TransientIo { .. } => 9,
            RqpError::WorkerFailed { .. } => 10,
            RqpError::KeyOutOfBounds { .. } => 11,
            RqpError::NonNumericKey(_) => 12,
            RqpError::Cancelled => 13,
            RqpError::DeadlineExceeded => 14,
            RqpError::Protocol(_) => 15,
            RqpError::PageBudgetExhausted { .. } => 16,
            RqpError::PageIo { .. } => 17,
        }
    }

    /// The canonical variant name of a wire code, or `None` for a code this
    /// build does not know (a newer peer's error — callers should treat it
    /// as a generic failure, not a protocol violation).
    pub fn wire_code_name(code: u16) -> Option<&'static str> {
        WIRE_CODES.iter().find(|(c, _)| *c == code).map(|(_, n)| *n)
    }

    /// The retryable/fatal taxonomy: retryable errors describe conditions
    /// that an immediate bounded retry can clear (a transient read fault);
    /// everything else — planning bugs, schema mismatches, exhausted retry
    /// budgets — is fatal and must propagate.
    pub fn is_retryable(&self) -> bool {
        matches!(self, RqpError::TransientIo { .. } | RqpError::PageIo { .. })
    }

    /// Convenience inverse of [`is_retryable`](Self::is_retryable).
    pub fn is_fatal(&self) -> bool {
        !self.is_retryable()
    }

    /// Whether this error is a cooperative-cancellation outcome
    /// ([`Cancelled`](Self::Cancelled) or
    /// [`DeadlineExceeded`](Self::DeadlineExceeded)). Retry and fault-recovery
    /// loops must check this *before* their injected-fault triage: a cancelled
    /// worker that gets retried would re-trip its token immediately, burn the
    /// retry budget, and surface as a spurious `WorkerFailed`.
    pub fn is_cancellation(&self) -> bool {
        matches!(self, RqpError::Cancelled | RqpError::DeadlineExceeded)
    }
}

impl fmt::Display for RqpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RqpError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            RqpError::AmbiguousColumn(c) => write!(f, "ambiguous column reference: {c}"),
            RqpError::TableNotFound(t) => write!(f, "table not found: {t}"),
            RqpError::IndexNotFound(i) => write!(f, "index not found: {i}"),
            RqpError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            RqpError::Planning(m) => write!(f, "planning error: {m}"),
            RqpError::Execution(m) => write!(f, "execution error: {m}"),
            RqpError::Invalid(m) => write!(f, "invalid argument: {m}"),
            RqpError::TransientIo { site, attempt } => {
                write!(f, "transient I/O error at {site} (attempt {attempt})")
            }
            RqpError::WorkerFailed { worker, attempts } => {
                write!(f, "exchange worker {worker} failed after {attempts} attempts")
            }
            RqpError::KeyOutOfBounds { index, width } => {
                write!(f, "partition key index {index} out of bounds for row of {width}")
            }
            RqpError::NonNumericKey(v) => {
                write!(f, "range partitioning needs a numeric key, got {v}")
            }
            RqpError::Cancelled => write!(f, "query cancelled"),
            RqpError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            RqpError::Protocol(m) => write!(f, "protocol error: {m}"),
            RqpError::PageBudgetExhausted { pinned, budget } => {
                write!(f, "page budget exhausted: {pinned} of {budget} frames pinned")
            }
            RqpError::PageIo { site, attempt } => {
                write!(f, "page I/O error at {site} (attempt {attempt})")
            }
        }
    }
}

impl std::error::Error for RqpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            RqpError::ColumnNotFound("x".into()).to_string(),
            "column not found: x"
        );
        assert_eq!(
            RqpError::TypeMismatch { expected: "INT".into(), got: "STR".into() }.to_string(),
            "type mismatch: expected INT, got STR"
        );
    }

    #[test]
    fn retryable_taxonomy() {
        assert!(RqpError::TransientIo { site: "t/3".into(), attempt: 0 }.is_retryable());
        assert!(RqpError::PageIo { site: "t/3".into(), attempt: 0 }.is_retryable());
        // Everything that isn't a transient condition is fatal: retrying a
        // planning bug or an exhausted worker cannot help. An exhausted page
        // budget in particular: retrying re-requests the same frame against
        // the same spent budget.
        for fatal in [
            RqpError::PageBudgetExhausted { pinned: 8, budget: 8 },
            RqpError::WorkerFailed { worker: 2, attempts: 5 },
            RqpError::KeyOutOfBounds { index: 9, width: 3 },
            RqpError::NonNumericKey("Str(\"x\")".into()),
            RqpError::Execution("boom".into()),
            RqpError::Planning("p".into()),
            RqpError::Invalid("i".into()),
            RqpError::Cancelled,
            RqpError::DeadlineExceeded,
            RqpError::Protocol("bad magic".into()),
        ] {
            assert!(fatal.is_fatal(), "{fatal} must be fatal");
            assert!(!fatal.is_retryable());
        }
    }

    /// One exemplar of every variant. The exhaustive match in
    /// [`RqpError::wire_code`] forces new variants to pick a code; the
    /// count/uniqueness assertions below force them to register the code in
    /// [`WIRE_CODES`] and to show up here, so a new variant can never
    /// silently alias an existing code.
    fn exemplars() -> Vec<RqpError> {
        vec![
            RqpError::ColumnNotFound("x".into()),
            RqpError::AmbiguousColumn("x".into()),
            RqpError::TableNotFound("t".into()),
            RqpError::IndexNotFound("i".into()),
            RqpError::TypeMismatch { expected: "INT".into(), got: "STR".into() },
            RqpError::Planning("p".into()),
            RqpError::Execution("e".into()),
            RqpError::Invalid("i".into()),
            RqpError::TransientIo { site: "t/3".into(), attempt: 1 },
            RqpError::WorkerFailed { worker: 2, attempts: 5 },
            RqpError::KeyOutOfBounds { index: 9, width: 3 },
            RqpError::NonNumericKey("Str".into()),
            RqpError::Cancelled,
            RqpError::DeadlineExceeded,
            RqpError::Protocol("bad magic".into()),
            RqpError::PageBudgetExhausted { pinned: 8, budget: 8 },
            RqpError::PageIo { site: "t/3".into(), attempt: 1 },
        ]
    }

    #[test]
    fn wire_codes_are_exhaustive_unique_and_round_trip() {
        let all = exemplars();
        // Every variant is represented exactly once in the registry.
        assert_eq!(all.len(), WIRE_CODES.len(), "exemplar per WIRE_CODES row");
        let mut seen = std::collections::BTreeSet::new();
        for e in &all {
            let code = e.wire_code();
            assert!(seen.insert(code), "{e} aliases wire code {code}");
            // The registry knows the code, and the name round-trips to the
            // variant's debug name.
            let name = RqpError::wire_code_name(code)
                .unwrap_or_else(|| panic!("{e}: code {code} missing from WIRE_CODES"));
            let debug = format!("{e:?}");
            assert!(
                debug.starts_with(name),
                "code {code} name {name} does not match variant {debug}"
            );
        }
        // No stale registry rows: every registered code has a live variant.
        assert_eq!(seen.len(), WIRE_CODES.len());
        let mut codes: Vec<u16> = WIRE_CODES.iter().map(|(c, _)| *c).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), WIRE_CODES.len(), "duplicate code in WIRE_CODES");
        // Unknown codes classify as unknown, not as some existing variant.
        assert_eq!(RqpError::wire_code_name(0), None);
        assert_eq!(RqpError::wire_code_name(u16::MAX), None);
    }

    #[test]
    fn cancellation_taxonomy() {
        // Cancellations are their own axis: fatal AND cancellations, so retry
        // loops that only consult is_retryable() already refuse to resurrect
        // them, and fault-recovery triage can additionally single them out.
        for cancel in [RqpError::Cancelled, RqpError::DeadlineExceeded] {
            assert!(cancel.is_cancellation(), "{cancel} is a cancellation");
            assert!(!cancel.is_retryable(), "{cancel} must never be retried");
            assert!(cancel.is_fatal());
        }
        // Nothing else is a cancellation — notably not the retryable
        // transient fault or the exhausted-retry worker failure.
        for other in [
            RqpError::TransientIo { site: "t/3".into(), attempt: 0 },
            RqpError::WorkerFailed { worker: 2, attempts: 5 },
            RqpError::Execution("boom".into()),
            RqpError::Planning("p".into()),
        ] {
            assert!(!other.is_cancellation(), "{other} is not a cancellation");
        }
    }

    #[test]
    fn cancellation_messages() {
        assert_eq!(RqpError::Cancelled.to_string(), "query cancelled");
        assert_eq!(
            RqpError::DeadlineExceeded.to_string(),
            "query deadline exceeded"
        );
    }

    #[test]
    fn typed_variant_messages() {
        assert_eq!(
            RqpError::KeyOutOfBounds { index: 9, width: 3 }.to_string(),
            "partition key index 9 out of bounds for row of 3"
        );
        assert_eq!(
            RqpError::WorkerFailed { worker: 1, attempts: 4 }.to_string(),
            "exchange worker 1 failed after 4 attempts"
        );
        assert_eq!(
            RqpError::TransientIo { site: "t/7".into(), attempt: 2 }.to_string(),
            "transient I/O error at t/7 (attempt 2)"
        );
        assert_eq!(
            RqpError::PageBudgetExhausted { pinned: 3, budget: 4 }.to_string(),
            "page budget exhausted: 3 of 4 frames pinned"
        );
        assert_eq!(
            RqpError::PageIo { site: "t/7".into(), attempt: 2 }.to_string(),
            "page I/O error at t/7 (attempt 2)"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RqpError::Planning("p".into()));
    }
}
