//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, RqpError>;

/// All errors the `rqp` engine can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RqpError {
    /// A referenced column does not exist in the schema.
    ColumnNotFound(String),
    /// A column suffix matched more than one qualified field.
    AmbiguousColumn(String),
    /// A referenced table does not exist in the catalog.
    TableNotFound(String),
    /// A referenced index does not exist.
    IndexNotFound(String),
    /// Operation applied to a value of the wrong type.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually got.
        got: String,
    },
    /// The optimizer could not produce a plan.
    Planning(String),
    /// A runtime execution failure.
    Execution(String),
    /// An invalid argument or configuration.
    Invalid(String),
}

impl fmt::Display for RqpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RqpError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            RqpError::AmbiguousColumn(c) => write!(f, "ambiguous column reference: {c}"),
            RqpError::TableNotFound(t) => write!(f, "table not found: {t}"),
            RqpError::IndexNotFound(i) => write!(f, "index not found: {i}"),
            RqpError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            RqpError::Planning(m) => write!(f, "planning error: {m}"),
            RqpError::Execution(m) => write!(f, "execution error: {m}"),
            RqpError::Invalid(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for RqpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            RqpError::ColumnNotFound("x".into()).to_string(),
            "column not found: x"
        );
        assert_eq!(
            RqpError::TypeMismatch { expected: "INT".into(), got: "STR".into() }.to_string(),
            "type mismatch: expected INT, got STR"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RqpError::Planning("p".into()));
    }
}
