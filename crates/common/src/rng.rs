//! Deterministic randomness helpers.
//!
//! Every stochastic choice in the testbed (data generation, query parameters,
//! sampling estimators, eddy lotteries) flows from an explicit seed through
//! [`seeded`], so every experiment output is exactly reproducible.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded [`StdRng`]. All `rqp` code takes RNGs by `&mut impl Rng` and
/// callers create them here.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream label, so independent
/// generators never share a stream by accident.
pub fn child_seed(parent: u64, label: &str) -> u64 {
    // FNV-1a over the label, mixed with the parent.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ parent.rotate_left(17);
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A Zipf-distributed sampler over `1..=n` with exponent `theta`.
///
/// `theta = 0` is uniform; `theta ≈ 1` is the classic heavy skew used by the
/// "black hat" and skewed-join experiments. The cumulative distribution is
/// precomputed once (O(n) memory), and each draw is a binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf sampler over `1..=n`. Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(theta >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a value in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        // First index whose cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }
}

impl Distribution<u64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }
}

/// Fisher–Yates sample of `k` distinct indices from `0..n`.
pub fn sample_distinct(rng: &mut impl Rng, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let xs: Vec<u32> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn child_seeds_differ_by_label() {
        assert_ne!(child_seed(1, "a"), child_seed(1, "b"));
        assert_ne!(child_seed(1, "a"), child_seed(2, "a"));
        assert_eq!(child_seed(1, "a"), child_seed(1, "a"));
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = seeded(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "uniform-ish expected, got {c}");
        }
    }

    #[test]
    fn zipf_skews_toward_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = seeded(7);
        let mut first = 0usize;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 1 {
                first += 1;
            }
        }
        // P(1) = 1/H_100 ≈ 0.193
        assert!(first > 1500, "rank 1 should dominate, got {first}");
    }

    #[test]
    fn zipf_stays_in_domain() {
        let z = Zipf::new(5, 2.0);
        let mut rng = seeded(3);
        for _ in 0..1000 {
            let v = z.sample(&mut rng);
            assert!((1..=5).contains(&v));
        }
    }

    #[test]
    fn distinct_sample() {
        let mut rng = seeded(1);
        let s = sample_distinct(&mut rng, 20, 5);
        assert_eq!(s.len(), 5);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 5);
        assert!(t.iter().all(|&i| i < 20));
        // k > n clamps
        assert_eq!(sample_distinct(&mut rng, 3, 10).len(), 3);
    }
}
