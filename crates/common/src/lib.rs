//! # rqp-common
//!
//! Shared foundation types for the `rqp` robust-query-processing testbed:
//!
//! * [`value`] — dynamically typed scalar [`value::Value`]s and [`value::DataType`]s
//!   with a total order suitable for sorting and B-tree keys;
//! * [`schema`] — [`schema::Schema`]/[`schema::Field`] describing row shapes, and
//!   the [`schema::Row`] type flowing between operators;
//! * [`expr`] — a small scalar/boolean expression algebra ([`expr::Expr`]) with
//!   evaluation, binding (name → index resolution), conjunct decomposition and
//!   the semantics-preserving rewrites used by the equivalent-query robustness
//!   benchmark;
//! * [`error`] — the crate-wide [`error::RqpError`] error enum with its
//!   retryable/fatal/cancellation taxonomy;
//! * [`cancel`] — the [`cancel::CancelToken`] cooperative-cancellation handle
//!   polled by operators at cost-charging boundaries, with deadlines in
//!   deterministic cost units;
//! * [`chaos`] — deterministic, seeded fault injection ([`chaos::ChaosPolicy`]):
//!   memory shocks, worker panics/stalls and transient scan errors whose
//!   decisions are pure hashes of `(seed, site, keys)`;
//! * [`clock`] — the deterministic [`clock::CostClock`] "virtual time" that every
//!   operator charges I/O and CPU cost units to, making robustness experiments
//!   exactly reproducible;
//! * [`rng`] — seeded random-number helpers (uniform, Zipf, correlated draws)
//!   so all workloads are deterministic;
//! * [`sync`] — the atomic primitives ([`sync::AtomicF64`]) behind the
//!   thread-safe clock/governor/telemetry substrate;
//! * [`dict`] — the shared [`dict::StringDict`] interner mapping strings to
//!   dense `u32` codes so batch joins and group-bys compare integers;
//! * [`batch`] — the columnar [`batch::ColumnBatch`] (typed vectors + a
//!   selection bitmap) that batch-mode operators exchange instead of rows,
//!   and the [`batch::batch_enabled`] `RQP_BATCH` switch.
//!
//! Everything else in the workspace (`rqp-storage`, `rqp-stats`, `rqp-exec`,
//! `rqp-opt`, …) builds on these types.

#![warn(missing_docs)]

pub mod batch;
pub mod cancel;
pub mod chaos;
pub mod clock;
pub mod dict;
pub mod error;
pub mod expr;
pub mod rng;
pub mod schema;
pub mod sync;
pub mod value;

pub use batch::{batch_enabled, ColumnBatch, ColVec, SelMask, DEFAULT_BATCH_ROWS};
pub use cancel::CancelToken;
pub use chaos::{ChaosConfig, ChaosPolicy, WorkerFault};
pub use clock::{CostBreakdown, CostClock, CostModelParams, SharedClock};
pub use dict::StringDict;
pub use error::{Result, RqpError};
pub use expr::{CmpOp, Expr, SimplePred};
pub use schema::{Field, Row, Schema};
pub use sync::AtomicF64;
pub use value::{key_atom_f64, key_atom_i64, DataType, KeyAtom, Value};
