//! Schemas, fields and rows.
//!
//! A [`Schema`] is an ordered list of [`Field`]s. Field names are
//! dot-qualified (`"lineitem.quantity"`) once a scan binds a table, so joins
//! can concatenate schemas without collisions; lookup by unqualified suffix is
//! supported for convenience.

use crate::error::{Result, RqpError};
use crate::value::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// A single column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, possibly dot-qualified with its table.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype }
    }
}

/// A row: one value per schema field.
pub type Row = Vec<Value>;

/// An ordered list of named, typed columns.
///
/// Schemas are immutable and cheaply cloneable (`Arc` inside).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields: Arc::new(fields) }
    }

    /// Convenience: build from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    /// The fields of this schema in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Index of a column by name.
    ///
    /// An exact match on the full (possibly qualified) name wins; otherwise a
    /// unique match on the unqualified suffix (`"qty"` matching
    /// `"lineitem.qty"`) is accepted. Ambiguous suffixes and misses error.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.fields.iter().position(|f| f.name == name) {
            return Ok(i);
        }
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            let suffix_match = f
                .name
                .rsplit_once('.')
                .map(|(_, suffix)| suffix == name)
                .unwrap_or(false);
            if suffix_match {
                if found.is_some() {
                    return Err(RqpError::AmbiguousColumn(name.to_owned()));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| RqpError::ColumnNotFound(name.to_owned()))
    }

    /// Concatenate two schemas (for join outputs).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = Vec::with_capacity(self.len() + other.len());
        fields.extend_from_slice(self.fields());
        fields.extend_from_slice(other.fields());
        Schema::new(fields)
    }

    /// Project a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Qualify every unqualified field name with `table.`.
    pub fn qualify(&self, table: &str) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| {
                    let name = if f.name.contains('.') {
                        f.name.clone()
                    } else {
                        format!("{table}.{}", f.name)
                    };
                    Field { name, dtype: f.dtype }
                })
                .collect(),
        )
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Schema {
        Schema::from_pairs(&[
            ("t.a", DataType::Int),
            ("t.b", DataType::Float),
            ("u.a", DataType::Int),
        ])
    }

    #[test]
    fn exact_and_suffix_lookup() {
        let s = s();
        assert_eq!(s.index_of("t.a").unwrap(), 0);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(matches!(s.index_of("a"), Err(RqpError::AmbiguousColumn(_))));
        assert!(matches!(s.index_of("zz"), Err(RqpError::ColumnNotFound(_))));
    }

    #[test]
    fn join_and_project() {
        let a = Schema::from_pairs(&[("x", DataType::Int)]);
        let b = Schema::from_pairs(&[("y", DataType::Str)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        let p = j.project(&[1]);
        assert_eq!(p.field(0).name, "y");
    }

    #[test]
    fn qualify_skips_already_qualified() {
        let q = s().qualify("v");
        assert_eq!(q.field(0).name, "t.a");
        let plain = Schema::from_pairs(&[("c", DataType::Int)]).qualify("v");
        assert_eq!(plain.field(0).name, "v.c");
    }

    #[test]
    fn display() {
        let a = Schema::from_pairs(&[("x", DataType::Int)]);
        assert_eq!(a.to_string(), "(x: INT)");
    }
}
