//! The deterministic cost clock.
//!
//! The Dagstuhl report's robustness metrics are all ratios and variances of
//! *response time*. Real wall-clock time is noisy and machine-dependent, so
//! the engine charges abstract **cost units** to a [`CostClock`] instead:
//! sequential page reads, random page reads, per-tuple CPU work, and spill
//! traffic each have a configurable weight ([`CostModelParams`]). The clock is
//! the experiment-level notion of "response time"; criterion benches measure
//! real time separately for the micro-level claims.
//!
//! The clock uses atomic interior mutability so every operator in a plan can
//! hold a [`SharedClock`] (an `Arc`) and charge as it runs — including from
//! exchange workers on other threads. For *deterministic* parallel totals,
//! workers charge private shard clocks ([`ExecContext::fork_worker`] in
//! `rqp-exec`) that the gather side [`absorb`](CostClock::absorb)s in worker
//! order, so floating-point accumulation order never depends on scheduling.

use crate::sync::AtomicF64;
use std::sync::Arc;

/// Weights of the abstract cost model, in arbitrary "cost units".
///
/// Defaults are chosen so that one sequential page ≈ 100 tuples of CPU work
/// and a random page is 4× a sequential one — the classic ratio that creates
/// the scan-vs-index crossover the smoothness experiments (E07) measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModelParams {
    /// Tuples per page: converts row counts to page counts.
    pub rows_per_page: f64,
    /// Cost of reading one page sequentially.
    pub seq_page: f64,
    /// Cost of reading one page at a random position.
    pub rand_page: f64,
    /// CPU cost of touching/producing one tuple.
    pub cpu_tuple: f64,
    /// CPU cost of one comparison (sorting, merging).
    pub cpu_compare: f64,
    /// CPU cost of one hash-table insert.
    pub hash_build: f64,
    /// CPU cost of one hash-table probe.
    pub hash_probe: f64,
    /// Cost of spilling one page to temp storage and reading it back.
    pub spill_page: f64,
}

impl Default for CostModelParams {
    fn default() -> Self {
        CostModelParams {
            rows_per_page: 100.0,
            seq_page: 1.0,
            rand_page: 4.0,
            cpu_tuple: 0.005,
            cpu_compare: 0.002,
            hash_build: 0.01,
            hash_probe: 0.005,
            spill_page: 2.5,
        }
    }
}

/// Running totals per cost category, for post-mortem attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Cost charged for sequential I/O.
    pub seq_io: f64,
    /// Cost charged for random I/O.
    pub rand_io: f64,
    /// Cost charged for CPU work.
    pub cpu: f64,
    /// Cost charged for spills.
    pub spill: f64,
}

impl CostBreakdown {
    /// Sum of all categories.
    pub fn total(&self) -> f64 {
        self.seq_io + self.rand_io + self.cpu + self.spill
    }
}

/// A deterministic virtual clock accumulating cost units.
#[derive(Debug)]
pub struct CostClock {
    params: CostModelParams,
    seq_io: AtomicF64,
    rand_io: AtomicF64,
    cpu: AtomicF64,
    spill: AtomicF64,
}

/// Shared handle to a [`CostClock`]; clone freely into every operator.
pub type SharedClock = Arc<CostClock>;

impl CostClock {
    /// New clock with the given parameters.
    pub fn new(params: CostModelParams) -> SharedClock {
        Arc::new(CostClock {
            params,
            seq_io: AtomicF64::new(0.0),
            rand_io: AtomicF64::new(0.0),
            cpu: AtomicF64::new(0.0),
            spill: AtomicF64::new(0.0),
        })
    }

    /// New clock with default parameters.
    pub fn default_clock() -> SharedClock {
        Self::new(CostModelParams::default())
    }

    /// The cost parameters this clock charges with.
    pub fn params(&self) -> &CostModelParams {
        &self.params
    }

    /// Charge a sequential scan of `rows` tuples (page I/O + per-tuple CPU).
    pub fn charge_seq_rows(&self, rows: f64) {
        let pages = (rows / self.params.rows_per_page).ceil();
        self.seq_io.add(pages * self.params.seq_page);
        self.cpu.add(rows * self.params.cpu_tuple);
    }

    /// Charge `n` random page accesses (e.g. unclustered index fetches).
    pub fn charge_random_pages(&self, n: f64) {
        self.rand_io.add(n * self.params.rand_page);
    }

    /// Charge exactly `n` sequential page reads (no per-tuple CPU).
    pub fn charge_seq_pages(&self, n: f64) {
        self.seq_io.add(n * self.params.seq_page);
    }

    /// Charge CPU work for touching `n` tuples.
    pub fn charge_cpu_tuples(&self, n: f64) {
        self.cpu.add(n * self.params.cpu_tuple);
    }

    /// Charge `n` comparisons.
    pub fn charge_compares(&self, n: f64) {
        self.cpu.add(n * self.params.cpu_compare);
    }

    /// Charge `n` hash-table builds.
    pub fn charge_hash_build(&self, n: f64) {
        self.cpu.add(n * self.params.hash_build);
    }

    /// Charge `n` hash-table probes.
    pub fn charge_hash_probe(&self, n: f64) {
        self.cpu.add(n * self.params.hash_probe);
    }

    /// Charge spilling `rows` tuples to temp storage and reading them back.
    pub fn charge_spill_rows(&self, rows: f64) {
        let pages = (rows / self.params.rows_per_page).ceil();
        self.spill.add(pages * self.params.spill_page);
    }

    /// Current virtual time (total cost charged so far).
    pub fn now(&self) -> f64 {
        self.seq_io.get() + self.rand_io.get() + self.cpu.get() + self.spill.get()
    }

    /// Per-category totals.
    pub fn breakdown(&self) -> CostBreakdown {
        CostBreakdown {
            seq_io: self.seq_io.get(),
            rand_io: self.rand_io.get(),
            cpu: self.cpu.get(),
            spill: self.spill.get(),
        }
    }

    /// Fold another clock's totals into this one, category by category.
    ///
    /// The merge primitive of the exchange operators: each worker charges a
    /// private shard clock, and the gather side absorbs the shards in worker
    /// order. Because the absorption order is fixed, parallel totals are
    /// reproducible run-to-run and independent of thread scheduling.
    pub fn absorb(&self, shard: &CostBreakdown) {
        self.seq_io.add(shard.seq_io);
        self.rand_io.add(shard.rand_io);
        self.cpu.add(shard.cpu);
        self.spill.add(shard.spill);
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.seq_io.set(0.0);
        self.rand_io.set(0.0);
        self.cpu.set(0.0);
        self.spill.set(0.0);
    }

    /// Measure the cost of running `f`: returns (result, cost charged by `f`).
    pub fn lap<T>(&self, f: impl FnOnce() -> T) -> (T, f64) {
        let start = self.now();
        let out = f();
        (out, self.now() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_scan_charges_pages_and_cpu() {
        let c = CostClock::default_clock();
        c.charge_seq_rows(250.0);
        // 3 pages * 1.0 + 250 * 0.005
        assert!((c.now() - (3.0 + 1.25)).abs() < 1e-9);
        let b = c.breakdown();
        assert!((b.seq_io - 3.0).abs() < 1e-9);
        assert!((b.cpu - 1.25).abs() < 1e-9);
    }

    #[test]
    fn random_pages_cost_more() {
        let c = CostClock::default_clock();
        c.charge_random_pages(3.0);
        assert!((c.now() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn lap_measures_delta() {
        let c = CostClock::default_clock();
        c.charge_cpu_tuples(100.0);
        let (_, d) = c.lap(|| c.charge_cpu_tuples(200.0));
        assert!((d - 1.0).abs() < 1e-9);
        assert!((c.now() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn absorb_merges_shard_breakdowns() {
        let main = CostClock::default_clock();
        main.charge_seq_pages(2.0);
        let shard = CostClock::new(*main.params());
        shard.charge_random_pages(1.0);
        shard.charge_cpu_tuples(200.0);
        main.absorb(&shard.breakdown());
        let b = main.breakdown();
        assert!((b.seq_io - 2.0).abs() < 1e-12);
        assert!((b.rand_io - 4.0).abs() < 1e-12);
        assert!((b.cpu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clock_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<CostClock>();
    }

    #[test]
    fn reset_clears() {
        let c = CostClock::default_clock();
        c.charge_spill_rows(1000.0);
        assert!(c.now() > 0.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.breakdown().total(), 0.0);
    }
}
