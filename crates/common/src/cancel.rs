//! Cooperative cancellation for long-running queries.
//!
//! A [`CancelToken`] is a cheap, `Send + Sync` handle shared between a query's
//! controller (a session, an admission controller, a human at a REPL) and the
//! operators executing it. Operators never block on it; they *poll* it at
//! natural cost-charging boundaries — a scan page, a sort/join output row, an
//! exchange worker loop — so a cancelled query stops within one page of work
//! and unwinds through the normal early-termination path (operator `Drop`
//! impls release workspace leases and close spans, exactly as PR 3's
//! partial-drain machinery guarantees).
//!
//! Two causes are distinguished and latched:
//!
//! * **explicit cancellation** — [`CancelToken::cancel`] was called; every
//!   subsequent poll observes [`RqpError::Cancelled`];
//! * **deadline exceeded** — the query's deterministic cost clock passed the
//!   deadline set with [`CancelToken::set_deadline`]; the first poll to notice
//!   latches the state so all workers agree on [`RqpError::DeadlineExceeded`]
//!   as the cause, even when they race.
//!
//! Deadlines are expressed in **cost units on the query's virtual clock**, not
//! wall time: the same query with the same seed trips its deadline at the same
//! page on every run, which is what keeps the cancellation experiments
//! deterministic. Exchange workers charge private shard clocks that start at
//! zero, so a forked token carries the coordinator's elapsed cost as an
//! `origin` offset ([`CancelToken::child`]) and compares `origin + shard_now`
//! against the shared deadline.

use crate::error::{Result, RqpError};
use crate::sync::AtomicF64;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Latched lifecycle of a token: live → cancelled | deadline-exceeded.
const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

/// A callback fired (once) when the token latches, whatever the cause.
type Waker = Box<dyn Fn() + Send + Sync>;

struct Inner {
    /// `LIVE` until the first cancel/deadline trip, then latched forever.
    state: AtomicU8,
    /// Deadline in cost units on the query's root clock; `+inf` = none.
    deadline: AtomicF64,
    /// Wakers registered by blocked waiters (e.g. the admission gate's
    /// condvar). Drained and fired exactly once, on the latch transition.
    wakers: Mutex<Vec<Waker>>,
}

impl Inner {
    /// Drain and run every registered waker. Latching is a one-shot CAS, so
    /// under normal flow this runs once; the re-check in `on_cancel` may call
    /// it again on an already-empty list, which is harmless.
    fn fire_wakers(&self) {
        let wakers = std::mem::take(&mut *self.wakers.lock().unwrap());
        for w in wakers {
            w();
        }
    }
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("state", &self.state)
            .field("deadline", &self.deadline)
            .finish()
    }
}

/// Shared cooperative-cancellation handle (see module docs).
///
/// Cloning shares the underlying state: cancelling any clone cancels them
/// all. The token is deliberately *cooperative* — nothing is interrupted
/// preemptively; operators observe it via [`CancelToken::check`] (or
/// `ExecContext::checkpoint` in `rqp-exec`) at cost-charging boundaries.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
    /// Cost already elapsed on the root clock when this handle was forked to
    /// a worker whose shard clock restarts at zero. Zero for the root token.
    origin: f64,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, live token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: AtomicF64::new(f64::INFINITY),
                wakers: Mutex::new(Vec::new()),
            }),
            origin: 0.0,
        }
    }

    /// Request cancellation. Idempotent; a deadline trip that already latched
    /// wins (the cause seen first is the cause reported everywhere).
    pub fn cancel(&self) {
        let latched = self
            .inner
            .state
            .compare_exchange(LIVE, CANCELLED, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok();
        if latched {
            self.inner.fire_wakers();
        }
    }

    /// Register a callback fired when the token latches (explicit cancel or
    /// deadline trip). Fired at most once per registration; if the token is
    /// already latched the callback runs immediately on the caller's thread.
    ///
    /// This is what lets blocking waiters (the admission gate's condvar) sleep
    /// without polling: the waker nudges the condvar instead of the waiter
    /// re-checking `is_cancelled` on a timer.
    pub fn on_cancel(&self, waker: impl Fn() + Send + Sync + 'static) {
        if self.is_cancelled() {
            waker();
            return;
        }
        self.inner.wakers.lock().unwrap().push(Box::new(waker));
        // Latch may have raced the registration: the canceller could have
        // drained the list before our push landed. Re-check and fire.
        if self.is_cancelled() {
            self.inner.fire_wakers();
        }
    }

    /// Set (or tighten) the deadline, in cost units on the root clock.
    /// The effective deadline only ever shrinks.
    pub fn set_deadline(&self, deadline: f64) {
        self.inner.deadline.update(|cur| cur.min(deadline));
    }

    /// The current deadline in root-clock cost units (`+inf` when unset).
    pub fn deadline(&self) -> f64 {
        self.inner.deadline.get()
    }

    /// Whether the token has tripped (either cause).
    pub fn is_cancelled(&self) -> bool {
        self.inner.state.load(Ordering::Relaxed) != LIVE
    }

    /// A token sharing this one's state for a worker whose private clock
    /// starts at zero: `parent_elapsed` is the root-clock cost already spent
    /// when the worker forked, so the worker's polls compare
    /// `parent_elapsed + shard_now` against the shared deadline.
    pub fn child(&self, parent_elapsed: f64) -> Self {
        CancelToken {
            inner: Arc::clone(&self.inner),
            origin: self.origin + parent_elapsed,
        }
    }

    /// Poll at virtual time `now` (this handle's clock). Returns the latched
    /// cause, latching `DeadlineExceeded` on the first trip so concurrent
    /// workers report one consistent cause.
    pub fn poll(&self, now: f64) -> Option<RqpError> {
        match self.inner.state.load(Ordering::Relaxed) {
            CANCELLED => Some(RqpError::Cancelled),
            DEADLINE => Some(RqpError::DeadlineExceeded),
            _ => {
                let deadline = self.inner.deadline.get();
                if self.origin + now >= deadline {
                    let latched = self
                        .inner
                        .state
                        .compare_exchange(LIVE, DEADLINE, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok();
                    if latched {
                        self.inner.fire_wakers();
                    }
                    // Report whatever actually latched: a racing explicit
                    // cancel may have won the exchange.
                    return self.poll(now);
                }
                None
            }
        }
    }

    /// [`poll`](Self::poll) as a `Result` for call sites that propagate
    /// errors by value instead of unwinding.
    pub fn check(&self, now: f64) -> Result<()> {
        match self.poll(now) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.poll(1e12), None, "no deadline means no trip");
        assert!(t.check(0.0).is_ok());
        assert_eq!(t.deadline(), f64::INFINITY);
    }

    #[test]
    fn cancel_latches_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.poll(0.0), Some(RqpError::Cancelled));
        assert_eq!(t.check(0.0), Err(RqpError::Cancelled));
    }

    #[test]
    fn deadline_trips_at_virtual_time() {
        let t = CancelToken::new();
        t.set_deadline(100.0);
        assert_eq!(t.poll(99.9), None);
        assert_eq!(t.poll(100.0), Some(RqpError::DeadlineExceeded));
        // Latched: even an earlier timestamp now reports the trip.
        assert_eq!(t.poll(0.0), Some(RqpError::DeadlineExceeded));
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_only_tightens() {
        let t = CancelToken::new();
        t.set_deadline(100.0);
        t.set_deadline(500.0);
        assert_eq!(t.deadline(), 100.0, "loosening is ignored");
        t.set_deadline(50.0);
        assert_eq!(t.deadline(), 50.0);
    }

    #[test]
    fn explicit_cancel_wins_if_first() {
        let t = CancelToken::new();
        t.set_deadline(10.0);
        t.cancel();
        // Past the deadline, but the explicit cancel latched first.
        assert_eq!(t.poll(1000.0), Some(RqpError::Cancelled));
    }

    #[test]
    fn waker_fires_on_cancel_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let t = CancelToken::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        t.on_cancel(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0, "waker fired before the latch");
        t.cancel();
        t.cancel(); // idempotent: no second firing
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn waker_fires_on_deadline_latch() {
        use std::sync::atomic::AtomicUsize;
        let t = CancelToken::new();
        t.set_deadline(10.0);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        t.on_cancel(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(t.poll(5.0), None);
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert_eq!(t.poll(10.0), Some(RqpError::DeadlineExceeded));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn waker_on_already_latched_token_fires_immediately() {
        use std::sync::atomic::AtomicUsize;
        let t = CancelToken::new();
        t.cancel();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        t.on_cancel(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1, "late registration must still fire");
    }

    #[test]
    fn child_offsets_shard_clock() {
        let t = CancelToken::new();
        t.set_deadline(100.0);
        // Worker forked after the coordinator spent 80 cost units; its shard
        // clock restarts at zero but its polls account for the 80.
        let w = t.child(80.0);
        assert_eq!(w.poll(19.9), None);
        assert_eq!(w.poll(20.0), Some(RqpError::DeadlineExceeded));
        // The trip is shared state: the root token sees it too.
        assert!(t.is_cancelled());
        // Grandchild origins accumulate.
        let g = w.child(5.0);
        assert_eq!(g.origin, 85.0);
    }
}
