//! Lock-free shared primitives for the thread-safe substrate.
//!
//! The engine's observability surface (cost clock, memory governor, spans,
//! metrics) started life on `Rc<Cell<...>>` and went multi-threaded when the
//! exchange operators arrived. [`AtomicF64`] is the drop-in replacement for
//! `Cell<f64>`: an `AtomicU64` holding IEEE-754 bits, with a CAS loop for
//! read-modify-write updates. All operations use `Relaxed` ordering — every
//! counter here is a monotone tally whose cross-thread visibility is
//! guaranteed by the `join()` at gather time, not by the counter itself.

use std::sync::atomic::{AtomicU64, Ordering};

/// A `Cell<f64>` that is `Send + Sync`: an `AtomicU64` of IEEE-754 bits.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// A new atomic holding `x`.
    pub fn new(x: f64) -> Self {
        AtomicF64(AtomicU64::new(x.to_bits()))
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, x: f64) {
        self.0.store(x.to_bits(), Ordering::Relaxed);
    }

    /// Add `dx` (CAS loop; `dx` may be negative).
    #[inline]
    pub fn add(&self, dx: f64) {
        self.update(|x| x + dx);
    }

    /// Apply `f` atomically via compare-exchange, returning the new value.
    pub fn update(&self, f: impl Fn(f64) -> f64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur));
            match self.0.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return next,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raise the value to `x` if `x` is larger (high-water tracking).
    pub fn fetch_max(&self, x: f64) {
        self.update(|cur| cur.max(x));
    }

    /// Set to `x` only if the current value is (bitwise) the canonical NaN;
    /// returns true when the store happened. This is the idempotent
    /// "stamp once" primitive behind span close/first-row marks.
    pub fn set_if_nan(&self, x: f64) -> bool {
        self.0
            .compare_exchange(
                f64::NAN.to_bits(),
                x.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
    }
}

impl Clone for AtomicF64 {
    fn clone(&self) -> Self {
        AtomicF64::new(self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_set_add() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.get(), 1.5);
        a.add(2.5);
        assert_eq!(a.get(), 4.0);
        a.add(-1.0);
        assert_eq!(a.get(), 3.0);
        a.set(0.0);
        assert_eq!(a.get(), 0.0);
    }

    #[test]
    fn fetch_max_keeps_high_water() {
        let a = AtomicF64::new(5.0);
        a.fetch_max(3.0);
        assert_eq!(a.get(), 5.0);
        a.fetch_max(9.0);
        assert_eq!(a.get(), 9.0);
    }

    #[test]
    fn set_if_nan_stamps_once() {
        let a = AtomicF64::new(f64::NAN);
        assert!(a.get().is_nan());
        assert!(a.set_if_nan(7.0));
        assert_eq!(a.get(), 7.0);
        assert!(!a.set_if_nan(9.0), "second stamp rejected");
        assert_eq!(a.get(), 7.0);
    }

    #[test]
    fn concurrent_adds_are_not_lost() {
        let a = Arc::new(AtomicF64::new(0.0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        a.add(1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.get(), 4000.0);
    }
}
