//! A shared string dictionary (interner) for dictionary-encoded execution.
//!
//! Batch-mode operators never compare `String`s in their hot loops: every
//! string cell is interned once, at batch-build time, into a dense `u32`
//! code, and joins/group-bys compare codes. Two invariants make the codes
//! usable as equality proxies:
//!
//! * **Dense assignment** — codes are handed out sequentially from 0, so a
//!   dictionary with `len() == n` has exactly the codes `0..n` and
//!   code-indexed side tables (`Vec<T>` keyed by code) are tight.
//! * **Stable identity** — equal strings get equal codes for the lifetime of
//!   the dictionary, across any number of batches, threads, and intern
//!   calls; `resolve(intern(s)) == s` always.
//!
//! Codes are only meaningful *within* one dictionary, so every operator in a
//! batch pipeline must share one `Arc<StringDict>` (operators verify this
//! with `Arc::ptr_eq` where two inputs meet). A dictionary only grows; it is
//! dropped with the pipeline that owns it.

use std::collections::HashMap;
use std::sync::RwLock;

/// A grow-only string interner handing out dense `u32` codes.
///
/// Thread-safe: readers (`resolve`, hot-loop lookups) take a shared lock,
/// interning takes the exclusive lock. Batch builders amortize the lock with
/// [`StringDict::intern_all`], one exclusive acquisition per column chunk.
#[derive(Debug, Default)]
pub struct StringDict {
    inner: RwLock<DictInner>,
}

#[derive(Debug, Default)]
struct DictInner {
    codes: HashMap<String, u32>,
    strings: Vec<String>,
}

impl StringDict {
    /// An empty dictionary.
    pub fn new() -> StringDict {
        StringDict::default()
    }

    /// Intern one string, returning its dense code (existing or new).
    pub fn intern(&self, s: &str) -> u32 {
        if let Some(code) = self.lookup(s) {
            return code;
        }
        let mut inner = self.inner.write().expect("dict lock");
        intern_locked(&mut inner, s)
    }

    /// Look up a string's code without interning it.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.inner.read().expect("dict lock").codes.get(s).copied()
    }

    /// Intern a chunk of strings under one exclusive lock acquisition,
    /// appending each code to `out`.
    pub fn intern_all<'a>(&self, strings: impl Iterator<Item = &'a str>, out: &mut Vec<u32>) {
        let mut inner = self.inner.write().expect("dict lock");
        for s in strings {
            let code = intern_locked(&mut inner, s);
            out.push(code);
        }
    }

    /// Resolve a code back to its string. Panics on a foreign code — codes
    /// are only meaningful within the dictionary that issued them.
    pub fn resolve(&self, code: u32) -> String {
        self.inner.read().expect("dict lock").strings[code as usize].clone()
    }

    /// Number of distinct strings interned (== the exclusive upper bound of
    /// issued codes, by density).
    pub fn len(&self) -> usize {
        self.inner.read().expect("dict lock").strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run `f` over the string for `code` without cloning it.
    pub fn with_resolved<R>(&self, code: u32, f: impl FnOnce(&str) -> R) -> R {
        f(&self.inner.read().expect("dict lock").strings[code as usize])
    }

    /// Append clones of every string with code `>= from` to `out` — one lock
    /// acquisition to sync a caller-local resolve cache with dictionary
    /// growth. Codes are dense, so a cache filled this way stays indexable
    /// by code.
    pub fn resolve_from(&self, from: usize, out: &mut Vec<String>) {
        let inner = self.inner.read().expect("dict lock");
        if from < inner.strings.len() {
            out.extend(inner.strings[from..].iter().cloned());
        }
    }
}

fn intern_locked(inner: &mut DictInner, s: &str) -> u32 {
    if let Some(code) = inner.codes.get(s) {
        return *code;
    }
    let code = u32::try_from(inner.strings.len()).expect("dictionary overflow");
    inner.strings.push(s.to_owned());
    inner.codes.insert(s.to_owned(), code);
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn intern_resolve_round_trip_and_dense_codes() {
        let d = StringDict::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        let a2 = d.intern("alpha");
        assert_eq!(a, a2, "equal strings get equal codes");
        assert_ne!(a, b);
        assert_eq!((a, b), (0, 1), "codes are dense from 0");
        assert_eq!(d.resolve(a), "alpha");
        assert_eq!(d.resolve(b), "beta");
        assert_eq!(d.len(), 2);
        assert_eq!(d.lookup("beta"), Some(1));
        assert_eq!(d.lookup("gamma"), None);
    }

    #[test]
    fn codes_stable_across_batches_and_threads() {
        let d = Arc::new(StringDict::new());
        let words: Vec<String> = (0..200).map(|i| format!("w{}", i % 50)).collect();
        let mut first = Vec::new();
        d.intern_all(words.iter().map(|s| s.as_str()), &mut first);
        // A second "batch" from other threads must reproduce the same codes.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let d = Arc::clone(&d);
                let words = &words;
                let first = &first;
                scope.spawn(move || {
                    let mut again = Vec::new();
                    d.intern_all(words.iter().map(|s| s.as_str()), &mut again);
                    assert_eq!(&again, first);
                });
            }
        });
        assert_eq!(d.len(), 50);
        // Density: every code below len() resolves.
        for code in 0..d.len() as u32 {
            assert_eq!(d.lookup(&d.resolve(code)), Some(code));
        }
    }
}
