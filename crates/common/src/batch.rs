//! Columnar batches for batch-at-a-time execution.
//!
//! Row-at-a-time Volcano operators pay a virtual call and a `Vec<Value>`
//! walk per row. Batch mode amortizes both: a scan materializes a
//! [`ColumnBatch`] — one typed vector per column plus a selection bitmap —
//! and downstream filter/projection/join/aggregation loops run over plain
//! `&[i64]` / `&[f64]` / `&[u32]` slices the compiler can auto-vectorize.
//! String columns are dictionary-encoded (`u32` codes into a pipeline-shared
//! [`crate::dict::StringDict`]), so equality-heavy paths never touch string
//! bytes.
//!
//! Filters never compact a batch; they clear bits in [`ColumnBatch::sel`].
//! Rows materialize only at the batch→row boundary (the adapter that feeds
//! surviving rows to a scalar consumer).
//!
//! Batch mode is an opt-in twin of the scalar path, switched by the
//! `RQP_BATCH` environment variable ([`batch_enabled`], default *off*). By
//! contract a batch plan produces row-identical output and a comparable
//! cost-clock breakdown to its scalar twin; the property tests in
//! `tests/batch.rs` hold both paths to that.

use crate::dict::StringDict;
use crate::value::Value;
use std::sync::Arc;

/// Default number of rows a scan packs per batch: large enough to amortize
/// per-batch overhead, small enough to keep a few columns L1/L2-resident.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// True if batch execution is switched on for this process (`RQP_BATCH=1`;
/// default off, keeping committed artifacts and traces on the scalar path).
pub fn batch_enabled() -> bool {
    matches!(
        std::env::var("RQP_BATCH").ok().as_deref(),
        Some("1") | Some("true") | Some("on")
    )
}

/// One column's values for a batch of rows, in row order.
#[derive(Debug, Clone)]
pub enum ColVec {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Dictionary codes into the batch's [`StringDict`].
    Str(Vec<u32>),
}

impl ColVec {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            ColVec::Int(v) => v.len(),
            ColVec::Float(v) => v.len(),
            ColVec::Str(v) => v.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The integer slice, if this is an `Int` column.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            ColVec::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The float slice, if this is a `Float` column.
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            ColVec::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The dictionary-code slice, if this is a `Str` column.
    pub fn as_codes(&self) -> Option<&[u32]> {
        match self {
            ColVec::Str(v) => Some(v),
            _ => None,
        }
    }
}

/// A selection bitmap over a batch's rows: bit `i` set means row `i` is
/// still live. One `u64` word covers 64 rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelMask {
    words: Vec<u64>,
    len: usize,
}

impl SelMask {
    /// A mask with all `len` rows selected.
    pub fn all(len: usize) -> SelMask {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        SelMask { words, len }
    }

    /// Number of rows the mask covers (selected or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if row `i` is selected.
    pub fn is_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Deselect row `i`.
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of selected rows (popcount).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if every covered row is selected — the fast-path predicate that
    /// lets hot loops skip per-row bit tests.
    pub fn is_full(&self) -> bool {
        self.count() == self.len
    }

    /// Iterate the indices of selected rows in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
        })
    }

    /// Keep only rows where `keep(i)` holds, among currently-selected rows.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        for wi in 0..self.words.len() {
            let mut w = self.words[wi];
            let mut live = w;
            while live != 0 {
                let tz = live.trailing_zeros() as usize;
                live &= live - 1;
                if !keep(wi * 64 + tz) {
                    w &= !(1u64 << tz);
                }
            }
            self.words[wi] = w;
        }
    }
}

/// A batch of rows in columnar form: typed column vectors, a selection
/// bitmap, and the dictionary its `Str` columns' codes point into.
///
/// Every batch in one pipeline shares one dictionary `Arc`; operators that
/// combine two batch streams check `Arc::ptr_eq` because codes from foreign
/// dictionaries are meaningless.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    /// One vector per output column, all the same length.
    pub columns: Vec<ColVec>,
    /// Which rows are still live after upstream filtering.
    pub sel: SelMask,
    /// The pipeline's shared string dictionary.
    pub dict: Arc<StringDict>,
}

impl ColumnBatch {
    /// A batch over `columns` with every row selected.
    pub fn new(columns: Vec<ColVec>, dict: Arc<StringDict>) -> ColumnBatch {
        let rows = columns.first().map_or(0, ColVec::len);
        debug_assert!(columns.iter().all(|c| c.len() == rows), "ragged batch");
        ColumnBatch { columns, sel: SelMask::all(rows), dict }
    }

    /// Total rows in the batch (selected or not).
    pub fn rows(&self) -> usize {
        self.sel.len()
    }

    /// Rows still selected.
    pub fn selected(&self) -> usize {
        self.sel.count()
    }

    /// True if the batch holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Materialize row `i` as scalar [`Value`]s, resolving dictionary codes
    /// back to strings. Only the batch→row adapter should call this.
    pub fn materialize_row(&self, i: usize) -> Vec<Value> {
        self.columns
            .iter()
            .map(|c| match c {
                ColVec::Int(v) => Value::Int(v[i]),
                ColVec::Float(v) => Value::Float(v[i]),
                ColVec::Str(v) => Value::Str(self.dict.resolve(v[i])),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sel_mask_edges() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let m = SelMask::all(len);
            assert_eq!(m.count(), len, "len {len}");
            assert!(m.is_full());
            assert_eq!(m.iter_set().count(), len);
        }
        let mut m = SelMask::all(130);
        m.clear(0);
        m.clear(64);
        m.clear(129);
        assert_eq!(m.count(), 127);
        assert!(!m.is_set(64) && m.is_set(63) && m.is_set(65));
        assert!(!m.is_full());
        let idx: Vec<usize> = m.iter_set().take(3).collect();
        assert_eq!(idx, vec![1, 2, 3]);
        // retain only even rows among the live ones.
        m.retain(|i| i % 2 == 0);
        assert!(m.iter_set().all(|i| i % 2 == 0));
        assert!(!m.is_set(0), "retain never resurrects cleared rows");
    }

    #[test]
    fn batch_materializes_rows_through_the_dictionary() {
        let dict = Arc::new(StringDict::new());
        let codes = vec![dict.intern("x"), dict.intern("y"), dict.intern("x")];
        let batch = ColumnBatch::new(
            vec![ColVec::Int(vec![1, 2, 3]), ColVec::Str(codes)],
            Arc::clone(&dict),
        );
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.selected(), 3);
        assert_eq!(
            batch.materialize_row(2),
            vec![Value::Int(3), Value::Str("x".into())]
        );
    }
}
