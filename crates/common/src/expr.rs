//! Scalar and boolean expressions.
//!
//! [`Expr`] is the logical expression algebra shared by the optimizer,
//! statistics and executor. Expressions reference columns *by name*; the
//! executor calls [`Expr::bind`] once per operator to resolve names to row
//! indices, producing a [`BoundExpr`] whose evaluation does no string work.
//!
//! The [`rewrites`] submodule generates *semantically equivalent* variants of
//! an expression (double negation, `BETWEEN` vs two comparisons, `IN` vs `OR`,
//! De Morgan, commuted conjuncts). The Dagstuhl report's "Benchmarking
//! Robustness" break-out (Graefe et al.) proposes measuring whether a system
//! treats all such variants identically; experiment E06 drives these rewrites.

use crate::error::{Result, RqpError};
use crate::schema::{Row, Schema};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering between lhs and rhs.
    pub fn matches(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The logical negation (`NOT (a < b)` ⇔ `a >= b`).
    pub fn negated(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
}

/// A logical scalar/boolean expression over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by (possibly qualified) name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Binary comparison producing a boolean.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Inclusive range test `expr BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// Membership test `expr IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Value>,
    },
    /// Conjunction of boolean expressions (empty = TRUE).
    And(Vec<Expr>),
    /// Disjunction of boolean expressions (empty = FALSE).
    Or(Vec<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic over numeric operands.
    Arith {
        /// Arithmetic operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

// -------------------------------------------------------------------------
// Ergonomic constructors
// -------------------------------------------------------------------------

/// Column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// Literal value.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

impl Expr {
    /// `self = rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Eq, lhs: Box::new(self), rhs: Box::new(rhs) }
    }
    /// `self <> rhs`
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Ne, lhs: Box::new(self), rhs: Box::new(rhs) }
    }
    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Lt, lhs: Box::new(self), rhs: Box::new(rhs) }
    }
    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Le, lhs: Box::new(self), rhs: Box::new(rhs) }
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Gt, lhs: Box::new(self), rhs: Box::new(rhs) }
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Ge, lhs: Box::new(self), rhs: Box::new(rhs) }
    }
    /// `self BETWEEN lo AND hi` (inclusive).
    pub fn between(self, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
        Expr::Between { expr: Box::new(self), lo: lo.into(), hi: hi.into() }
    }
    /// `self IN (list…)`.
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList { expr: Box::new(self), list }
    }
    /// `self AND rhs`, flattening nested conjunctions.
    pub fn and(self, rhs: Expr) -> Expr {
        let mut parts = Vec::new();
        for e in [self, rhs] {
            match e {
                Expr::And(v) => parts.extend(v),
                other => parts.push(other),
            }
        }
        Expr::And(parts)
    }
    /// `self OR rhs`, flattening nested disjunctions.
    pub fn or(self, rhs: Expr) -> Expr {
        let mut parts = Vec::new();
        for e in [self, rhs] {
            match e {
                Expr::Or(v) => parts.extend(v),
                other => parts.push(other),
            }
        }
        Expr::Or(parts)
    }
    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Arith { op: ArithOp::Add, lhs: Box::new(self), rhs: Box::new(rhs) }
    }
    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Arith { op: ArithOp::Mul, lhs: Box::new(self), rhs: Box::new(rhs) }
    }

    /// The constant TRUE.
    pub fn true_() -> Expr {
        Expr::And(Vec::new())
    }

    // ---------------------------------------------------------------------
    // Analysis
    // ---------------------------------------------------------------------

    /// All column names referenced by this expression, in sorted order.
    pub fn columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Col(c) => {
                out.insert(c.clone());
            }
            Expr::Lit(_) => {}
            Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::Between { expr, .. } | Expr::InList { expr, .. } | Expr::Not(expr) => {
                expr.collect_columns(out)
            }
            Expr::And(v) | Expr::Or(v) => {
                for e in v {
                    e.collect_columns(out);
                }
            }
        }
    }

    /// Split a conjunction into its top-level conjuncts. A non-`And`
    /// expression is a single conjunct; `TRUE` yields none.
    pub fn conjuncts(&self) -> Vec<Expr> {
        match self {
            Expr::And(v) => v.iter().flat_map(|e| e.conjuncts()).collect(),
            other => vec![other.clone()],
        }
    }

    /// Conjoin a list of predicates back into one expression.
    pub fn conjoin(parts: Vec<Expr>) -> Expr {
        match parts.len() {
            0 => Expr::true_(),
            1 => parts.into_iter().next().expect("len checked"),
            _ => Expr::And(parts),
        }
    }

    // ---------------------------------------------------------------------
    // Evaluation
    // ---------------------------------------------------------------------

    /// Evaluate against a row (booleans are `Int(0)`/`Int(1)`).
    pub fn eval(&self, row: &Row, schema: &Schema) -> Result<Value> {
        self.bind(schema)?.eval(row).ok_or_else(|| {
            RqpError::Execution("expression evaluation produced no value".into())
        })
    }

    /// Evaluate as a boolean predicate.
    pub fn eval_bool(&self, row: &Row, schema: &Schema) -> Result<bool> {
        Ok(!matches!(self.eval(row, schema)?, Value::Int(0) | Value::Null))
    }

    /// Resolve column names against `schema`, producing a fast-path
    /// [`BoundExpr`] usable without further string lookups.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Col(name) => BoundExpr::Col(schema.index_of(name)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Cmp { op, lhs, rhs } => BoundExpr::Cmp {
                op: *op,
                lhs: Box::new(lhs.bind(schema)?),
                rhs: Box::new(rhs.bind(schema)?),
            },
            Expr::Between { expr, lo, hi } => BoundExpr::Between {
                expr: Box::new(expr.bind(schema)?),
                lo: lo.clone(),
                hi: hi.clone(),
            },
            Expr::InList { expr, list } => BoundExpr::InList {
                expr: Box::new(expr.bind(schema)?),
                list: list.clone(),
            },
            Expr::And(v) => {
                BoundExpr::And(v.iter().map(|e| e.bind(schema)).collect::<Result<_>>()?)
            }
            Expr::Or(v) => {
                BoundExpr::Or(v.iter().map(|e| e.bind(schema)).collect::<Result<_>>()?)
            }
            Expr::Not(e) => BoundExpr::Not(Box::new(e.bind(schema)?)),
            Expr::Arith { op, lhs, rhs } => BoundExpr::Arith {
                op: *op,
                lhs: Box::new(lhs.bind(schema)?),
                rhs: Box::new(rhs.bind(schema)?),
            },
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Between { expr, lo, hi } => write!(f, "({expr} BETWEEN {lo} AND {hi})"),
            Expr::InList { expr, list } => {
                write!(f, "({expr} IN (")?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            Expr::And(v) if v.is_empty() => write!(f, "TRUE"),
            Expr::And(v) => {
                write!(f, "(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Or(v) if v.is_empty() => write!(f, "FALSE"),
            Expr::Or(v) => {
                write!(f, "(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Arith { op, lhs, rhs } => {
                let s = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                };
                write!(f, "({lhs} {s} {rhs})")
            }
        }
    }
}

/// An [`Expr`] with column names resolved to row indices. Produced by
/// [`Expr::bind`]; evaluation never errors (missing data yields `None`,
/// treated as NULL/false upstream).
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Column at row index.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<BoundExpr>,
        /// Right operand.
        rhs: Box<BoundExpr>,
    },
    /// Inclusive range.
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Lower bound.
        lo: Value,
        /// Upper bound.
        hi: Value,
    },
    /// List membership.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidates.
        list: Vec<Value>,
    },
    /// Conjunction.
    And(Vec<BoundExpr>),
    /// Disjunction.
    Or(Vec<BoundExpr>),
    /// Negation.
    Not(Box<BoundExpr>),
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<BoundExpr>,
        /// Right operand.
        rhs: Box<BoundExpr>,
    },
}

impl BoundExpr {
    /// Evaluate against a row. Booleans are `Int(0)`/`Int(1)`.
    pub fn eval(&self, row: &Row) -> Option<Value> {
        Some(match self {
            BoundExpr::Col(i) => row.get(*i)?.clone(),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(row)?;
                let r = rhs.eval(row)?;
                if l.is_null() || r.is_null() {
                    Value::Int(0)
                } else {
                    Value::Int(op.matches(l.total_cmp(&r)) as i64)
                }
            }
            BoundExpr::Between { expr, lo, hi } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    Value::Int(0)
                } else {
                    Value::Int((v >= *lo && v <= *hi) as i64)
                }
            }
            BoundExpr::InList { expr, list } => {
                let v = expr.eval(row)?;
                Value::Int(list.contains(&v) as i64)
            }
            BoundExpr::And(v) => {
                let mut all = true;
                for e in v {
                    if !e.eval_bool(row) {
                        all = false;
                        break;
                    }
                }
                Value::Int(all as i64)
            }
            BoundExpr::Or(v) => {
                let mut any = false;
                for e in v {
                    if e.eval_bool(row) {
                        any = true;
                        break;
                    }
                }
                Value::Int(any as i64)
            }
            BoundExpr::Not(e) => Value::Int(!e.eval_bool(row) as i64),
            BoundExpr::Arith { op, lhs, rhs } => {
                let l = lhs.eval(row)?;
                let r = rhs.eval(row)?;
                match op {
                    ArithOp::Add => l.add(&r),
                    ArithOp::Sub => l.sub(&r),
                    ArithOp::Mul => l.mul(&r),
                }
            }
        })
    }

    /// Evaluate as a boolean predicate (NULL and missing are false).
    pub fn eval_bool(&self, row: &Row) -> bool {
        !matches!(self.eval(row), Some(Value::Int(0)) | Some(Value::Null) | None)
    }
}

/// A "simple" predicate over a single column, the currency of cardinality
/// estimation: histograms and samplers estimate these directly.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplePred {
    /// `col <op> value`
    Cmp {
        /// Column name.
        col: String,
        /// Operator.
        op: CmpOp,
        /// Comparison constant.
        value: Value,
    },
    /// `col BETWEEN lo AND hi` (inclusive).
    Range {
        /// Column name.
        col: String,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `col IN (values…)`
    InList {
        /// Column name.
        col: String,
        /// Candidate values.
        values: Vec<Value>,
    },
}

impl SimplePred {
    /// Try to view an [`Expr`] conjunct as a simple single-column predicate.
    ///
    /// Accepts `col <op> lit`, `lit <op> col` (flipped), `col BETWEEN`, and
    /// `col IN`. Everything else (arithmetic on columns, multi-column
    /// comparisons, disjunctions) returns `None` — exactly the "complex
    /// (known unknown) expressions" class the Nica et al. break-out flags as
    /// hard for estimators.
    pub fn from_expr(e: &Expr) -> Option<SimplePred> {
        match e {
            Expr::Cmp { op, lhs, rhs } => match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) => Some(SimplePred::Cmp {
                    col: c.clone(),
                    op: *op,
                    value: v.clone(),
                }),
                (Expr::Lit(v), Expr::Col(c)) => Some(SimplePred::Cmp {
                    col: c.clone(),
                    op: op.flipped(),
                    value: v.clone(),
                }),
                _ => None,
            },
            Expr::Between { expr, lo, hi } => match expr.as_ref() {
                Expr::Col(c) => Some(SimplePred::Range {
                    col: c.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                }),
                _ => None,
            },
            Expr::InList { expr, list } => match expr.as_ref() {
                Expr::Col(c) => Some(SimplePred::InList {
                    col: c.clone(),
                    values: list.clone(),
                }),
                _ => None,
            },
            // NOT (col <> v)  ≡  col = v — normalize through negation.
            Expr::Not(inner) => match SimplePred::from_expr(inner) {
                Some(SimplePred::Cmp { col, op, value }) => Some(SimplePred::Cmp {
                    col,
                    op: op.negated(),
                    value,
                }),
                _ => None,
            },
            _ => None,
        }
    }

    /// The column this predicate constrains.
    pub fn column(&self) -> &str {
        match self {
            SimplePred::Cmp { col, .. }
            | SimplePred::Range { col, .. }
            | SimplePred::InList { col, .. } => col,
        }
    }

    /// Evaluate against a scalar value of the column.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            SimplePred::Cmp { op, value, .. } => op.matches(v.total_cmp(value)),
            SimplePred::Range { lo, hi, .. } => v >= lo && v <= hi,
            SimplePred::InList { values, .. } => values.iter().any(|c| c == v),
        }
    }
}

pub mod rewrites {
    //! Semantics-preserving rewrites for the equivalent-query benchmark (E06).
    //!
    //! Each function returns expressions logically equivalent to its input.
    //! `variants` composes them into a family; a robust system should estimate
    //! and execute every member of the family identically.

    use super::*;

    /// `a <op> b` → `b <flip(op)> a` for every comparison in the tree.
    pub fn flip_comparisons(e: &Expr) -> Expr {
        transform(e, &|x| match x {
            Expr::Cmp { op, lhs, rhs } => Some(Expr::Cmp {
                op: op.flipped(),
                lhs: rhs.clone(),
                rhs: lhs.clone(),
            }),
            _ => None,
        })
    }

    /// `e` → `NOT NOT e` at the root.
    pub fn double_negate(e: &Expr) -> Expr {
        e.clone().not().not()
    }

    /// `x BETWEEN lo AND hi` → `x >= lo AND x <= hi` throughout.
    pub fn between_to_cmps(e: &Expr) -> Expr {
        transform(e, &|x| match x {
            Expr::Between { expr, lo, hi } => Some(
                Expr::Cmp {
                    op: CmpOp::Ge,
                    lhs: expr.clone(),
                    rhs: Box::new(Expr::Lit(lo.clone())),
                }
                .and(Expr::Cmp {
                    op: CmpOp::Le,
                    lhs: expr.clone(),
                    rhs: Box::new(Expr::Lit(hi.clone())),
                }),
            ),
            _ => None,
        })
    }

    /// `x IN (a, b, …)` → `x = a OR x = b OR …` throughout.
    pub fn in_to_ors(e: &Expr) -> Expr {
        transform(e, &|x| match x {
            Expr::InList { expr, list } => Some(Expr::Or(
                list.iter()
                    .map(|v| Expr::Cmp {
                        op: CmpOp::Eq,
                        lhs: expr.clone(),
                        rhs: Box::new(Expr::Lit(v.clone())),
                    })
                    .collect(),
            )),
            _ => None,
        })
    }

    /// Reverse the order of top-level conjuncts/disjuncts throughout.
    pub fn commute(e: &Expr) -> Expr {
        transform(e, &|x| match x {
            Expr::And(v) if v.len() > 1 => {
                Some(Expr::And(v.iter().rev().cloned().collect()))
            }
            Expr::Or(v) if v.len() > 1 => Some(Expr::Or(v.iter().rev().cloned().collect())),
            _ => None,
        })
    }

    /// Push a root-level NOT through with De Morgan and comparison negation:
    /// `NOT (a AND b)` → `NOT a OR NOT b`, `NOT (x < v)` → `x >= v`.
    pub fn push_not(e: &Expr) -> Expr {
        transform(e, &|x| match x {
            Expr::Not(inner) => match inner.as_ref() {
                Expr::And(v) => Some(Expr::Or(v.iter().map(|c| c.clone().not()).collect())),
                Expr::Or(v) => Some(Expr::And(v.iter().map(|c| c.clone().not()).collect())),
                Expr::Cmp { op, lhs, rhs } => Some(Expr::Cmp {
                    op: op.negated(),
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                }),
                Expr::Not(e2) => Some(e2.as_ref().clone()),
                _ => None,
            },
            _ => None,
        })
    }

    /// A family of distinct equivalent variants of `e` (including `e` itself).
    pub fn variants(e: &Expr) -> Vec<Expr> {
        let mut out = vec![e.clone()];
        let candidates = [
            flip_comparisons(e),
            between_to_cmps(e),
            in_to_ors(e),
            commute(e),
            push_not(&double_negate(e)),
            double_negate(e),
            commute(&between_to_cmps(e)),
            flip_comparisons(&in_to_ors(e)),
        ];
        for c in candidates {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// Bottom-up rewrite: apply `f` at every node; `None` keeps the
    /// (recursively rewritten) node.
    fn transform(e: &Expr, f: &dyn Fn(&Expr) -> Option<Expr>) -> Expr {
        let rebuilt = match e {
            Expr::Col(_) | Expr::Lit(_) => e.clone(),
            Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
                op: *op,
                lhs: Box::new(transform(lhs, f)),
                rhs: Box::new(transform(rhs, f)),
            },
            Expr::Between { expr, lo, hi } => Expr::Between {
                expr: Box::new(transform(expr, f)),
                lo: lo.clone(),
                hi: hi.clone(),
            },
            Expr::InList { expr, list } => Expr::InList {
                expr: Box::new(transform(expr, f)),
                list: list.clone(),
            },
            Expr::And(v) => Expr::And(v.iter().map(|x| transform(x, f)).collect()),
            Expr::Or(v) => Expr::Or(v.iter().map(|x| transform(x, f)).collect()),
            Expr::Not(inner) => Expr::Not(Box::new(transform(inner, f))),
            Expr::Arith { op, lhs, rhs } => Expr::Arith {
                op: *op,
                lhs: Box::new(transform(lhs, f)),
                rhs: Box::new(transform(rhs, f)),
            },
        };
        f(&rebuilt).unwrap_or(rebuilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float)])
    }

    fn row(a: i64, b: f64) -> Row {
        vec![Value::Int(a), Value::Float(b)]
    }

    #[test]
    fn cmp_eval() {
        let s = schema();
        let e = col("a").lt(lit(5i64));
        assert!(e.eval_bool(&row(3, 0.0), &s).unwrap());
        assert!(!e.eval_bool(&row(7, 0.0), &s).unwrap());
    }

    #[test]
    fn between_and_in() {
        let s = schema();
        let e = col("a").between(2i64, 4i64);
        assert!(e.eval_bool(&row(2, 0.0), &s).unwrap());
        assert!(e.eval_bool(&row(4, 0.0), &s).unwrap());
        assert!(!e.eval_bool(&row(5, 0.0), &s).unwrap());
        let e = col("a").in_list(vec![Value::Int(1), Value::Int(9)]);
        assert!(e.eval_bool(&row(9, 0.0), &s).unwrap());
        assert!(!e.eval_bool(&row(2, 0.0), &s).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let e = col("a").gt(lit(0i64)).and(col("b").lt(lit(1.0)));
        assert!(e.eval_bool(&row(1, 0.5), &s).unwrap());
        assert!(!e.eval_bool(&row(1, 1.5), &s).unwrap());
        let e2 = col("a").eq(lit(0i64)).or(col("b").lt(lit(1.0)));
        assert!(e2.eval_bool(&row(5, 0.5), &s).unwrap());
        assert!(!e2.eval_bool(&row(5, 1.5), &s).unwrap());
        assert!(col("a").eq(lit(1i64)).not().eval_bool(&row(2, 0.0), &s).unwrap());
    }

    #[test]
    fn arithmetic_in_predicate() {
        let s = schema();
        // a * 2 + 1 > 5
        let e = col("a").mul(lit(2i64)).add(lit(1i64)).gt(lit(5i64));
        assert!(e.eval_bool(&row(3, 0.0), &s).unwrap());
        assert!(!e.eval_bool(&row(2, 0.0), &s).unwrap());
    }

    #[test]
    fn conjunct_split_and_flatten() {
        let e = col("a").gt(lit(1i64)).and(col("b").lt(lit(2.0))).and(col("a").ne(lit(0i64)));
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
        let back = Expr::conjoin(cs);
        assert_eq!(back.conjuncts().len(), 3);
        assert!(Expr::true_().conjuncts().len() == 1 || Expr::true_().conjuncts().is_empty());
    }

    #[test]
    fn columns_collected() {
        let e = col("t.a").gt(col("t.b")).and(col("u.c").eq(lit(1i64)));
        let cols = e.columns();
        assert_eq!(cols.len(), 3);
        assert!(cols.contains("t.a") && cols.contains("u.c"));
    }

    #[test]
    fn simple_pred_extraction() {
        let sp = SimplePred::from_expr(&col("a").le(lit(10i64))).unwrap();
        assert!(matches!(sp, SimplePred::Cmp { op: CmpOp::Le, .. }));
        // flipped literal-first form
        let sp = SimplePred::from_expr(&lit(10i64).le(col("a"))).unwrap();
        assert!(matches!(sp, SimplePred::Cmp { op: CmpOp::Ge, .. }));
        // NOT (a <> 3) normalizes to a = 3
        let sp = SimplePred::from_expr(&col("a").ne(lit(3i64)).not()).unwrap();
        assert!(matches!(sp, SimplePred::Cmp { op: CmpOp::Eq, .. }));
        // multi-column comparison is not simple
        assert!(SimplePred::from_expr(&col("a").lt(col("b"))).is_none());
    }

    #[test]
    fn simple_pred_matches() {
        let sp = SimplePred::Range { col: "a".into(), lo: Value::Int(2), hi: Value::Int(4) };
        assert!(sp.matches(&Value::Int(3)));
        assert!(!sp.matches(&Value::Int(5)));
        assert_eq!(sp.column(), "a");
    }

    #[test]
    fn rewrites_preserve_semantics() {
        let s = schema();
        let base = col("a")
            .between(2i64, 6i64)
            .and(col("b").lt(lit(0.5)))
            .and(col("a").in_list(vec![Value::Int(3), Value::Int(5), Value::Int(7)]));
        let rows: Vec<Row> = (0..10)
            .flat_map(|a| [row(a, 0.25), row(a, 0.75)])
            .collect();
        let fam = rewrites::variants(&base);
        assert!(fam.len() >= 5, "expected several variants, got {}", fam.len());
        for v in &fam {
            for r in &rows {
                assert_eq!(
                    base.eval_bool(r, &s).unwrap(),
                    v.eval_bool(r, &s).unwrap(),
                    "variant {v} disagrees on row {r:?}"
                );
            }
        }
    }

    #[test]
    fn push_not_negates_comparison() {
        let e = col("a").lt(lit(5i64)).not();
        let pushed = rewrites::push_not(&e);
        assert_eq!(pushed, col("a").ge(lit(5i64)));
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = col("a").ge(lit(1i64)).and(col("b").lt(lit(2.0)));
        let s = e.to_string();
        assert!(s.contains(">=") && s.contains("AND"), "{s}");
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let e = col("a").eq(lit(1i64));
        let r = vec![Value::Null, Value::Float(0.0)];
        assert!(!e.eval_bool(&r, &s).unwrap());
    }
}
