//! A TPC-H-like analytic schema and parameterized query templates.
//!
//! The Dagstuhl break-outs build most of their proposed benchmarks on TPC-H
//! (advisor robustness, FMT/FPT, equivalent-query tests, the smoothness
//! sweep's "simple parameterized range queries"). This is a laptop-scale
//! analogue with the same relational shape: `customer → orders → lineitem`,
//! plus `part` and `supplier`, with controllable size and skew.
//!
//! Row-count ratios follow TPC-H (1 : 10 : 40 : 1.3 : 0.07 relative to
//! customer); dates are integer "day numbers" in `0..2557` (7 years, like
//! TPC-H's 1992–1998).

use crate::gen::{ColumnGen, TableBuilder};
use rand::rngs::StdRng;
use rqp_common::expr::{col, lit};
use rqp_common::rng::{child_seed, seeded};
use rqp_exec::{AggFunc, AggSpec};
use rqp_opt::QuerySpec;
use rqp_storage::Catalog;

/// Number of day values in the date domain.
pub const DATE_DOMAIN: i64 = 2557;

/// A generated TPC-H-like database.
pub struct TpchDb {
    /// The catalog holding all five tables (and indexes if requested).
    pub catalog: Catalog,
    /// Rows in `lineitem` (the scale anchor).
    pub lineitem_rows: usize,
}

/// Build parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpchParams {
    /// `lineitem` row count; other tables scale proportionally.
    pub lineitem_rows: usize,
    /// Zipf exponent of `lineitem.orderkey` references (0 = uniform; > 0
    /// makes some orders huge — the skewed-join-key hazard).
    pub orderkey_skew: f64,
    /// Create the standard index set.
    pub with_indexes: bool,
}

impl Default for TpchParams {
    fn default() -> Self {
        TpchParams { lineitem_rows: 10_000, orderkey_skew: 0.0, with_indexes: true }
    }
}

impl TpchDb {
    /// Generate the database deterministically from `seed`.
    pub fn build(params: TpchParams, seed: u64) -> Self {
        let li = params.lineitem_rows.max(40);
        let orders_n = (li / 4).max(10);
        let cust_n = (li / 40).max(5);
        let part_n = (li / 30).max(5);
        let supp_n = (li / 500).max(2);

        let mut catalog = Catalog::new();

        let mut rng = seeded(child_seed(seed, "customer"));
        let customer = TableBuilder::new("customer")
            .column("custkey", ColumnGen::Sequential)
            .column("nationkey", ColumnGen::UniformInt { lo: 0, hi: 24 })
            .column("mktsegment", ColumnGen::UniformInt { lo: 0, hi: 4 })
            .column("acctbal", ColumnGen::UniformFloat { lo: -999.0, hi: 9999.0 })
            .build(cust_n, &mut rng);
        catalog.add_table(customer);

        let mut rng = seeded(child_seed(seed, "orders"));
        let orders = TableBuilder::new("orders")
            .column("orderkey", ColumnGen::Sequential)
            .column("custkey", ColumnGen::UniformInt { lo: 0, hi: cust_n as i64 - 1 })
            .column("orderdate", ColumnGen::UniformInt { lo: 0, hi: DATE_DOMAIN - 1 })
            .column("totalprice", ColumnGen::UniformFloat { lo: 100.0, hi: 100_000.0 })
            .build(orders_n, &mut rng);
        catalog.add_table(orders);

        let mut rng = seeded(child_seed(seed, "lineitem"));
        let orderkey_gen = if params.orderkey_skew > 0.0 {
            ColumnGen::ZipfInt { n: orders_n, theta: params.orderkey_skew }
        } else {
            ColumnGen::UniformInt { lo: 0, hi: orders_n as i64 - 1 }
        };
        let lineitem = TableBuilder::new("lineitem")
            .column("orderkey", orderkey_gen)
            .column("partkey", ColumnGen::UniformInt { lo: 0, hi: part_n as i64 - 1 })
            .column("suppkey", ColumnGen::UniformInt { lo: 0, hi: supp_n as i64 - 1 })
            .column("quantity", ColumnGen::UniformInt { lo: 1, hi: 50 })
            .column("extendedprice", ColumnGen::UniformFloat { lo: 900.0, hi: 105_000.0 })
            .column("discount", ColumnGen::UniformFloat { lo: 0.0, hi: 0.1 })
            .column("shipdate", ColumnGen::UniformInt { lo: 0, hi: DATE_DOMAIN - 1 })
            .column("returnflag", ColumnGen::UniformInt { lo: 0, hi: 2 })
            .build(li, &mut rng);
        catalog.add_table(lineitem);

        let mut rng = seeded(child_seed(seed, "part"));
        let part = TableBuilder::new("part")
            .column("partkey", ColumnGen::Sequential)
            .column("size", ColumnGen::UniformInt { lo: 1, hi: 50 })
            .column("brand", ColumnGen::UniformInt { lo: 0, hi: 24 })
            .build(part_n, &mut rng);
        catalog.add_table(part);

        let mut rng = seeded(child_seed(seed, "supplier"));
        let supplier = TableBuilder::new("supplier")
            .column("suppkey", ColumnGen::Sequential)
            .column("nationkey", ColumnGen::UniformInt { lo: 0, hi: 24 })
            .build(supp_n, &mut rng);
        catalog.add_table(supplier);

        if params.with_indexes {
            catalog.create_index("ix_customer_custkey", "customer", "custkey").unwrap();
            catalog.create_index("ix_orders_orderkey", "orders", "orderkey").unwrap();
            catalog.create_index("ix_orders_custkey", "orders", "custkey").unwrap();
            catalog.create_index("ix_lineitem_orderkey", "lineitem", "orderkey").unwrap();
            catalog.create_index("ix_lineitem_shipdate", "lineitem", "shipdate").unwrap();
            catalog.create_index("ix_part_partkey", "part", "partkey").unwrap();
            catalog.create_index("ix_supplier_suppkey", "supplier", "suppkey").unwrap();
        }

        TpchDb { catalog, lineitem_rows: li }
    }

    /// Q1-like: pricing summary over recently shipped lineitems.
    ///
    /// `delta_days` plays TPC-H's `[DELTA]`: ship date cutoff from the end of
    /// the domain.
    pub fn q1(&self, delta_days: i64) -> QuerySpec {
        QuerySpec::new()
            .table("lineitem")
            .filter(
                "lineitem",
                col("lineitem.shipdate").le(lit(DATE_DOMAIN - 1 - delta_days)),
            )
            .aggregate(
                &["lineitem.returnflag"],
                vec![
                    AggSpec::count_star("count_order"),
                    AggSpec::on(AggFunc::Sum, "lineitem.quantity", "sum_qty"),
                    AggSpec::on(AggFunc::Sum, "lineitem.extendedprice", "sum_base_price"),
                    AggSpec::on(AggFunc::Avg, "lineitem.discount", "avg_disc"),
                ],
            )
            .order(&["lineitem.returnflag"])
    }

    /// Q3-like: shipping priority — 3-way join with date window.
    pub fn q3(&self, segment: i64, date: i64) -> QuerySpec {
        QuerySpec::new()
            .join("customer", "custkey", "orders", "custkey")
            .join("orders", "orderkey", "lineitem", "orderkey")
            .filter("customer", col("customer.mktsegment").eq(lit(segment)))
            .filter("orders", col("orders.orderdate").lt(lit(date)))
            .filter("lineitem", col("lineitem.shipdate").gt(lit(date)))
            .aggregate(
                &["orders.orderkey"],
                vec![AggSpec::on(AggFunc::Sum, "lineitem.extendedprice", "revenue")],
            )
            .order(&["revenue"])
    }

    /// Q5-like: volume by supplier nation — 4-way join.
    pub fn q5(&self, nation_lo: i64, nation_hi: i64, date_lo: i64) -> QuerySpec {
        QuerySpec::new()
            .join("customer", "custkey", "orders", "custkey")
            .join("orders", "orderkey", "lineitem", "orderkey")
            .join("lineitem", "suppkey", "supplier", "suppkey")
            .filter(
                "supplier",
                col("supplier.nationkey").between(nation_lo, nation_hi),
            )
            .filter(
                "orders",
                col("orders.orderdate").between(date_lo, date_lo + 365),
            )
            .aggregate(
                &["supplier.nationkey"],
                vec![AggSpec::on(AggFunc::Sum, "lineitem.extendedprice", "revenue")],
            )
            .order(&["supplier.nationkey"])
    }

    /// Q6-like: forecast revenue change — single-table multi-predicate filter.
    pub fn q6(&self, date_lo: i64, discount_mid: f64, quantity_max: i64) -> QuerySpec {
        QuerySpec::new()
            .table("lineitem")
            .filter(
                "lineitem",
                col("lineitem.shipdate")
                    .between(date_lo, date_lo + 364)
                    .and(col("lineitem.discount").between(discount_mid - 0.01, discount_mid + 0.01))
                    .and(col("lineitem.quantity").lt(lit(quantity_max))),
            )
            .aggregate(
                &[],
                vec![
                    AggSpec::on(AggFunc::Sum, "lineitem.extendedprice", "revenue"),
                    AggSpec::count_star("n"),
                ],
            )
    }

    /// The smoothness-sweep query: `SELECT count(*) FROM lineitem WHERE
    /// shipdate BETWEEN p AND p + width`, with `width` chosen so the true
    /// selectivity is `sel`.
    pub fn range_query(&self, sel: f64) -> QuerySpec {
        let width = ((DATE_DOMAIN as f64) * sel.clamp(0.0, 1.0)).round() as i64;
        QuerySpec::new()
            .table("lineitem")
            .filter(
                "lineitem",
                col("lineitem.shipdate").between(0i64, (width - 1).max(0)),
            )
            .aggregate(&[], vec![AggSpec::count_star("n")])
    }

    /// A deterministic mixed bag of analytic queries (for advisor / FMT /
    /// tractor drivers); parameters drawn from `rng`.
    pub fn analytic_mix(&self, count: usize, rng: &mut StdRng) -> Vec<QuerySpec> {
        use rand::Rng;
        (0..count)
            .map(|i| match i % 4 {
                0 => self.q1(rng.gen_range(0..120)),
                1 => self.q3(rng.gen_range(0..5), rng.gen_range(500..2000)),
                2 => self.q5(
                    rng.gen_range(0..20),
                    rng.gen_range(20..25),
                    rng.gen_range(0..1500),
                ),
                _ => self.q6(
                    rng.gen_range(0..2000),
                    rng.gen_range(0.02..0.08),
                    rng.gen_range(24..50),
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_exec::ExecContext;
    use rqp_opt::{plan, PlannerConfig};
    use rqp_stats::{StatsEstimator, TableStatsRegistry};
    use std::rc::Rc;

    fn db() -> TpchDb {
        TpchDb::build(TpchParams { lineitem_rows: 4000, ..Default::default() }, 42)
    }

    fn run(db: &TpchDb, spec: &QuerySpec) -> Vec<rqp_common::Row> {
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 32));
        let est = StatsEstimator::new(reg);
        let p = plan(spec, &db.catalog, &est, PlannerConfig::default()).unwrap();
        let ctx = ExecContext::unbounded();
        p.build(&db.catalog, &ctx, None).unwrap().run()
    }

    #[test]
    fn schema_ratios() {
        let db = db();
        let li = db.catalog.table("lineitem").unwrap().nrows();
        let ord = db.catalog.table("orders").unwrap().nrows();
        let cust = db.catalog.table("customer").unwrap().nrows();
        assert_eq!(li, 4000);
        assert_eq!(ord, 1000);
        assert_eq!(cust, 100);
        assert!(db.catalog.index_names().len() >= 6);
    }

    #[test]
    fn q1_runs_and_groups_by_returnflag() {
        let db = db();
        let rows = run(&db, &db.q1(90));
        assert_eq!(rows.len(), 3, "returnflag ∈ {{0,1,2}}");
        let total: i64 = rows.iter().map(|r| r[1].as_int().unwrap()).sum();
        assert!(total > 3000, "most lineitems pass a 90-day cutoff");
    }

    #[test]
    fn q3_and_q5_run() {
        let db = db();
        let rows = run(&db, &db.q3(2, 1200));
        assert!(!rows.is_empty());
        let rows = run(&db, &db.q5(0, 24, 0));
        assert!(!rows.is_empty());
    }

    #[test]
    fn q6_counts_match_filter() {
        let db = db();
        let rows = run(&db, &db.q6(0, 0.05, 25));
        assert_eq!(rows.len(), 1);
        let n = rows[0][1].as_int().unwrap();
        let truth = db
            .catalog
            .table("lineitem")
            .unwrap()
            .count_where(
                &col("lineitem.shipdate")
                    .between(0i64, 364i64)
                    .and(col("lineitem.discount").between(0.04, 0.06))
                    .and(col("lineitem.quantity").lt(lit(25i64))),
            )
            .unwrap();
        assert_eq!(n as usize, truth);
    }

    #[test]
    fn range_query_selectivity_controls_count() {
        let db = db();
        let quarter = run(&db, &db.range_query(0.25));
        let half = run(&db, &db.range_query(0.5));
        let n25 = quarter[0][0].as_int().unwrap() as f64 / 4000.0;
        let n50 = half[0][0].as_int().unwrap() as f64 / 4000.0;
        assert!((n25 - 0.25).abs() < 0.05, "got {n25}");
        assert!((n50 - 0.5).abs() < 0.05, "got {n50}");
    }

    #[test]
    fn skewed_orderkeys() {
        let db = TpchDb::build(
            TpchParams { lineitem_rows: 4000, orderkey_skew: 1.0, ..Default::default() },
            42,
        );
        let li = db.catalog.table("lineitem").unwrap();
        let keys = li.column_by_name("orderkey").unwrap().as_int_slice().unwrap();
        let top = keys.iter().filter(|&&k| k == 1).count();
        assert!(top > 200, "skew should concentrate on rank 1, got {top}");
    }

    #[test]
    fn deterministic_by_seed() {
        let a = TpchDb::build(TpchParams { lineitem_rows: 1000, ..Default::default() }, 7);
        let b = TpchDb::build(TpchParams { lineitem_rows: 1000, ..Default::default() }, 7);
        let ka = a.catalog.table("lineitem").unwrap();
        let kb = b.catalog.table("lineitem").unwrap();
        assert_eq!(
            ka.column_by_name("shipdate").unwrap().as_int_slice().unwrap(),
            kb.column_by_name("shipdate").unwrap().as_int_slice().unwrap()
        );
    }

    #[test]
    fn analytic_mix_is_varied() {
        let db = db();
        let mut rng = rqp_common::rng::seeded(5);
        let mix = db.analytic_mix(8, &mut rng);
        assert_eq!(mix.len(), 8);
        let single = mix.iter().filter(|q| q.tables.len() == 1).count();
        let multi = mix.iter().filter(|q| q.tables.len() > 1).count();
        assert!(single >= 2 && multi >= 2);
    }
}
