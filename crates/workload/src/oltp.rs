//! Order-entry OLTP simulation (TPC-C-flavoured) for the mixed-workload
//! benchmark.
//!
//! The seminar's "Benchmarking Hybrid OLTP & OLAP Database Workloads"
//! break-out proposes TPC-CH: a transactional order-entry stream sharing
//! tables with an analytic query suite. [`OltpSimulator`] issues `new-order`
//! and `payment` transactions against catalog tables — point index lookups
//! plus appends — charging the same cost clock as the analytic side, so both
//! halves of the mixed workload are measured in one currency.

use rand::rngs::StdRng;
use rand::Rng;
use rqp_common::rng::{child_seed, seeded};
use rqp_common::Value;
use rqp_exec::ExecContext;
use rqp_storage::Catalog;

/// The OLTP driver.
pub struct OltpSimulator {
    /// The shared catalog (customer/orders/lineitem — typically a
    /// [`TpchDb`](crate::tpch::TpchDb)'s).
    pub catalog: Catalog,
    ctx: ExecContext,
    rng: StdRng,
    next_orderkey: i64,
    /// Transactions executed.
    pub transactions: usize,
}

/// Per-transaction cost outcome.
#[derive(Debug, Clone, Copy)]
pub struct TxnOutcome {
    /// Cost units charged.
    pub cost: f64,
    /// Rows written.
    pub rows_written: usize,
}

impl OltpSimulator {
    /// Wrap a catalog containing `customer`, `orders` and `lineitem` tables
    /// (with an index on `customer.custkey`).
    pub fn new(catalog: Catalog, ctx: ExecContext, seed: u64) -> Self {
        let next_orderkey = catalog
            .table("orders")
            .map(|t| t.nrows() as i64)
            .unwrap_or(0);
        OltpSimulator {
            catalog,
            ctx,
            rng: seeded(child_seed(seed, "oltp")),
            next_orderkey,
            transactions: 0,
        }
    }

    fn point_lookup(&self, table: &str, column: &str, key: i64) -> usize {
        // Charge a B-tree descent + one random page, like IndexScanOp.
        if let Some(ix) = self.catalog.index_on(table, column) {
            let n = ix.entries().max(2) as f64;
            self.ctx.clock.charge_compares(n.log2());
            let rids = ix.lookup_eq(&Value::Int(key));
            self.ctx.clock.charge_random_pages(1.0);
            self.ctx.clock.charge_cpu_tuples(rids.len() as f64);
            rids.len()
        } else if let Ok(t) = self.catalog.table(table) {
            // No index: a full scan per lookup — the workload-manager
            // experiments use this to model an unindexed disaster.
            self.ctx.clock.charge_seq_rows(t.nrows() as f64);
            t.column_by_name(column)
                .map(|c| {
                    c.iter_values()
                        .filter(|v| *v == Value::Int(key))
                        .count()
                })
                .unwrap_or(0)
        } else {
            0
        }
    }

    /// A `new-order` transaction: customer lookup, order append, 1–7
    /// lineitem appends.
    pub fn new_order(&mut self) -> TxnOutcome {
        let start = self.ctx.clock.now();
        let cust_n = self
            .catalog
            .table("customer")
            .map(|t| t.nrows())
            .unwrap_or(1)
            .max(1);
        let custkey = self.rng.gen_range(0..cust_n as i64);
        self.point_lookup("customer", "custkey", custkey);

        let orderkey = self.next_orderkey;
        self.next_orderkey += 1;
        let orderdate = self.rng.gen_range(0..crate::tpch::DATE_DOMAIN);
        let total = self.rng.gen_range(100.0..10_000.0);
        let mut written = 0usize;
        if let Ok(orders) = self.catalog.table_mut("orders") {
            orders.append(vec![
                Value::Int(orderkey),
                Value::Int(custkey),
                Value::Int(orderdate),
                Value::Float(total),
            ]);
            written += 1;
        }
        let items = self.rng.gen_range(1..=7);
        let li_arity = self
            .catalog
            .table("lineitem")
            .map(|t| t.schema().len())
            .unwrap_or(0);
        for _ in 0..items {
            if li_arity == 8 {
                let row = vec![
                    Value::Int(orderkey),
                    Value::Int(self.rng.gen_range(0..100)),
                    Value::Int(self.rng.gen_range(0..5)),
                    Value::Int(self.rng.gen_range(1..50)),
                    Value::Float(self.rng.gen_range(900.0..105_000.0)),
                    Value::Float(self.rng.gen_range(0.0..0.1)),
                    Value::Int(orderdate),
                    Value::Int(self.rng.gen_range(0..3)),
                ];
                if let Ok(li) = self.catalog.table_mut("lineitem") {
                    li.append(row);
                    written += 1;
                }
            }
        }
        // Write cost: one page-ish of log per transaction + per-row CPU.
        self.ctx.clock.charge_cpu_tuples(written as f64);
        self.ctx.clock.charge_random_pages(1.0);
        self.transactions += 1;
        TxnOutcome { cost: self.ctx.clock.now() - start, rows_written: written }
    }

    /// A `payment` transaction: two point lookups + one logical update.
    pub fn payment(&mut self) -> TxnOutcome {
        let start = self.ctx.clock.now();
        let cust_n = self
            .catalog
            .table("customer")
            .map(|t| t.nrows())
            .unwrap_or(1)
            .max(1);
        let custkey = self.rng.gen_range(0..cust_n as i64);
        self.point_lookup("customer", "custkey", custkey);
        let ord_n = self.catalog.table("orders").map(|t| t.nrows()).unwrap_or(1).max(1);
        let orderkey = self.rng.gen_range(0..ord_n as i64);
        self.point_lookup("orders", "orderkey", orderkey);
        self.ctx.clock.charge_random_pages(1.0); // in-place update write
        self.transactions += 1;
        TxnOutcome { cost: self.ctx.clock.now() - start, rows_written: 0 }
    }

    /// Run a stream of `n` transactions (90% new-order, 10% payment) and
    /// return mean cost per transaction.
    pub fn run_stream(&mut self, n: usize) -> f64 {
        let mut total = 0.0;
        for i in 0..n {
            let out = if i % 10 == 9 { self.payment() } else { self.new_order() };
            total += out.cost;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{TpchDb, TpchParams};

    fn sim() -> OltpSimulator {
        let db = TpchDb::build(TpchParams { lineitem_rows: 2000, ..Default::default() }, 9);
        OltpSimulator::new(db.catalog, ExecContext::unbounded(), 9)
    }

    #[test]
    fn new_order_appends_rows() {
        let mut s = sim();
        let before = s.catalog.table("orders").unwrap().nrows();
        let out = s.new_order();
        assert!(out.cost > 0.0);
        assert!(out.rows_written >= 2, "order + ≥1 lineitem");
        assert_eq!(s.catalog.table("orders").unwrap().nrows(), before + 1);
    }

    #[test]
    fn payment_costs_comparable_and_writes_nothing() {
        let mut s = sim();
        let mut no = 0.0;
        let mut pay = 0.0;
        for _ in 0..20 {
            no += s.new_order().cost;
            let p = s.payment();
            assert_eq!(p.rows_written, 0);
            pay += p.cost;
        }
        // Both are short point-access transactions of the same order of
        // magnitude (payment does one more index probe, new-order writes).
        assert!(pay > 0.0 && no > 0.0);
        assert!(pay < no * 3.0 && no < pay * 3.0, "payment {pay} vs new_order {no}");
    }

    #[test]
    fn stream_accumulates_transactions() {
        let mut s = sim();
        let mean = s.run_stream(50);
        assert!(mean > 0.0);
        assert_eq!(s.transactions, 50);
    }

    #[test]
    fn unindexed_lookup_is_a_scan() {
        let db = TpchDb::build(
            TpchParams { lineitem_rows: 2000, with_indexes: false, ..Default::default() },
            9,
        );
        let ctx = ExecContext::unbounded();
        let mut s = OltpSimulator::new(db.catalog, ctx.clone(), 9);
        let out = s.payment();
        // Without indexes the point lookups degrade to scans — visibly
        // more expensive.
        assert!(out.cost > 5.0, "got {}", out.cost);
    }

    #[test]
    fn empty_catalog_does_not_panic() {
        let mut s = OltpSimulator::new(Catalog::new(), ExecContext::unbounded(), 1);
        let out = s.new_order();
        assert_eq!(out.rows_written, 0);
    }
}
