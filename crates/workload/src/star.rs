//! A star schema with controllable correlation and skew.
//!
//! Fact table + three dimensions, the setting of the "Black Hat Query
//! Optimization" list ("star schema skew across tables", "correlation across
//! tables") and of the plan-diagram experiments.

use crate::gen::{ColumnGen, TableBuilder};
use rqp_common::expr::{col, lit};
use rqp_common::rng::{child_seed, seeded};
use rqp_exec::{AggFunc, AggSpec};
use rqp_opt::QuerySpec;
use rqp_storage::Catalog;

/// Build parameters for the star schema.
#[derive(Debug, Clone, Copy)]
pub struct StarParams {
    /// Fact rows.
    pub fact_rows: usize,
    /// Rows per dimension (d1, d2, d3).
    pub dim_rows: [usize; 3],
    /// Zipf exponent of the fact's foreign keys (0 = uniform).
    pub fk_skew: f64,
    /// If true, `fact.fk2` is derived from `fact.fk1` (perfect cross-column
    /// correlation — the independence-assumption trap).
    pub correlated_fks: bool,
}

impl Default for StarParams {
    fn default() -> Self {
        StarParams {
            fact_rows: 10_000,
            dim_rows: [100, 50, 20],
            fk_skew: 0.0,
            correlated_fks: false,
        }
    }
}

/// A generated star-schema database.
pub struct StarDb {
    /// Catalog with `fact`, `d1`, `d2`, `d3` (+ key indexes).
    pub catalog: Catalog,
    /// Parameters used.
    pub params: StarParams,
}

impl StarDb {
    /// Generate deterministically from `seed`.
    pub fn build(params: StarParams, seed: u64) -> Self {
        let mut catalog = Catalog::new();
        let [n1, n2, n3] = params.dim_rows;

        let fk_gen = |n: usize| -> ColumnGen {
            if params.fk_skew > 0.0 {
                ColumnGen::ZipfInt { n, theta: params.fk_skew }
            } else {
                ColumnGen::UniformInt { lo: 0, hi: n as i64 - 1 }
            }
        };

        let mut rng = seeded(child_seed(seed, "fact"));
        let mut builder = TableBuilder::new("fact")
            .column("fk1", fk_gen(n1));
        if params.correlated_fks {
            let n2i = n2 as i64;
            builder = builder.column(
                "fk2",
                ColumnGen::Derived { source: 0, f: Box::new(move |v| v % n2i) },
            );
        } else {
            builder = builder.column("fk2", fk_gen(n2));
        }
        let fact = builder
            .column("fk3", fk_gen(n3))
            .column("measure", ColumnGen::UniformFloat { lo: 0.0, hi: 1000.0 })
            .column("flag", ColumnGen::UniformInt { lo: 0, hi: 9 })
            .build(params.fact_rows, &mut rng);
        catalog.add_table(fact);

        for (name, n) in [("d1", n1), ("d2", n2), ("d3", n3)] {
            let mut rng = seeded(child_seed(seed, name));
            let dim = TableBuilder::new(name)
                .column("key", ColumnGen::Sequential)
                .column("attr", ColumnGen::UniformInt { lo: 0, hi: 9 })
                .column("band", ColumnGen::Derived {
                    source: 0,
                    f: Box::new(move |v| v * 10 / (n as i64).max(1)),
                })
                .build(n, &mut rng);
            catalog.add_table(dim);
            catalog
                .create_index(format!("ix_{name}_key"), name, "key")
                .expect("dimension key index");
        }

        StarDb { catalog, params }
    }

    /// A star join with per-dimension attribute filters (selectivity knobs
    /// `attr < k` with k ∈ 0..=10 → selectivity k/10 per dimension).
    pub fn star_query(&self, k1: i64, k2: i64, k3: i64) -> QuerySpec {
        let mut q = QuerySpec::new()
            .join("fact", "fk1", "d1", "key")
            .join("fact", "fk2", "d2", "key")
            .join("fact", "fk3", "d3", "key");
        for (t, k) in [("d1", k1), ("d2", k2), ("d3", k3)] {
            if k < 10 {
                q = q.filter(t, col(format!("{t}.attr")).lt(lit(k)));
            }
        }
        q.aggregate(
            &[],
            vec![
                AggSpec::count_star("n"),
                AggSpec::on(AggFunc::Sum, "fact.measure", "total"),
            ],
        )
    }

    /// Two-dimensional join query for plan diagrams: filters on `fact` and
    /// `d1` whose selectivities the diagram overrides, plus a third table so
    /// the join-order space is non-trivial (the Picasso-style setting).
    pub fn diagram_query(&self) -> QuerySpec {
        QuerySpec::new()
            .join("fact", "fk1", "d1", "key")
            .join("fact", "fk2", "d2", "key")
            .filter("fact", col("fact.flag").lt(lit(5i64)))
            .filter("d1", col("d1.attr").lt(lit(5i64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_exec::ExecContext;
    use rqp_opt::{plan, PlannerConfig};
    use rqp_stats::{StatsEstimator, TableStatsRegistry};
    use std::rc::Rc;

    #[test]
    fn builds_and_queries() {
        let db = StarDb::build(StarParams { fact_rows: 2000, ..Default::default() }, 11);
        assert_eq!(db.catalog.table("fact").unwrap().nrows(), 2000);
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 16));
        let est = StatsEstimator::new(reg);
        let spec = db.star_query(5, 10, 10);
        let p = plan(&spec, &db.catalog, &est, PlannerConfig::default()).unwrap();
        let ctx = ExecContext::unbounded();
        let rows = p.build(&db.catalog, &ctx, None).unwrap().run();
        assert_eq!(rows.len(), 1);
        let n = rows[0][0].as_int().unwrap() as f64;
        assert!((n / 2000.0 - 0.5).abs() < 0.1, "d1 filter halves the fact");
    }

    #[test]
    fn correlated_fks_are_dependent() {
        let db = StarDb::build(
            StarParams { fact_rows: 1000, correlated_fks: true, ..Default::default() },
            3,
        );
        let fact = db.catalog.table("fact").unwrap();
        let fk1 = fact.column_by_name("fk1").unwrap().as_int_slice().unwrap();
        let fk2 = fact.column_by_name("fk2").unwrap().as_int_slice().unwrap();
        for (a, b) in fk1.iter().zip(fk2) {
            assert_eq!(*b, a % 50);
        }
    }

    #[test]
    fn skewed_fks() {
        let db = StarDb::build(
            StarParams { fact_rows: 5000, fk_skew: 1.0, ..Default::default() },
            3,
        );
        let fact = db.catalog.table("fact").unwrap();
        let fk1 = fact.column_by_name("fk1").unwrap().as_int_slice().unwrap();
        let ones = fk1.iter().filter(|&&v| v == 1).count();
        assert!(ones > 500, "skewed fk, got {ones}");
    }

    #[test]
    fn diagram_query_shape() {
        let db = StarDb::build(StarParams::default(), 1);
        let q = db.diagram_query();
        assert_eq!(q.tables.len(), 3);
        assert!(q.local_preds.contains_key("fact") && q.local_preds.contains_key("d1"));
    }
}
