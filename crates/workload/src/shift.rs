//! Workload-shift detection (after Holze & Ritter, "Towards workload shift
//! detection and prediction for autonomic databases" — seminar reading list).
//!
//! Self-tuning components (advisors, plan caches, LEO repositories) are
//! tuned to a workload; when the workload *shifts*, yesterday's tuning is
//! today's fragility. The [`ShiftDetector`] classifies incoming queries into
//! coarse classes, maintains a reference distribution, and signals a shift
//! when the recent window's distribution diverges beyond a threshold (total
//! variation distance). On a signal, the reference re-bases — the detector
//! is the trigger that tells the tuning stack to re-learn.

use std::collections::{HashMap, VecDeque};

/// A detected workload shift.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftEvent {
    /// Total-variation distance that triggered the signal.
    pub distance: f64,
    /// Observations consumed so far.
    pub at_observation: usize,
    /// Classes that grew the most, with their probability increase.
    pub grew: Vec<(String, f64)>,
}

/// Sliding-window workload-shift detector.
#[derive(Debug, Clone)]
pub struct ShiftDetector {
    window: usize,
    threshold: f64,
    reference: HashMap<String, f64>,
    recent: VecDeque<String>,
    observations: usize,
    warmed_up: bool,
    /// Checks are suppressed until this many more observations arrive
    /// (set after a signal so one shift fires one event, not one per tuple
    /// of the transition).
    cooldown: usize,
}

impl ShiftDetector {
    /// Detector with the given window size and total-variation threshold
    /// (e.g. 0.3 = signal when 30% of the query mass moved class).
    pub fn new(window: usize, threshold: f64) -> Self {
        assert!(window >= 4, "window too small to estimate a distribution");
        assert!((0.0..=1.0).contains(&threshold));
        ShiftDetector {
            window,
            threshold,
            reference: HashMap::new(),
            recent: VecDeque::with_capacity(window),
            observations: 0,
            warmed_up: false,
            cooldown: 0,
        }
    }

    /// Number of observations so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// The current reference distribution.
    pub fn reference(&self) -> &HashMap<String, f64> {
        &self.reference
    }

    fn window_distribution(&self) -> HashMap<String, f64> {
        let mut d: HashMap<String, f64> = HashMap::new();
        for c in &self.recent {
            *d.entry(c.clone()).or_default() += 1.0;
        }
        let n = self.recent.len().max(1) as f64;
        for v in d.values_mut() {
            *v /= n;
        }
        d
    }

    /// Observe one query of class `class`; returns a shift event when the
    /// recent window has diverged from the reference.
    pub fn observe(&mut self, class: &str) -> Option<ShiftEvent> {
        self.observations += 1;
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(class.to_owned());
        if self.recent.len() < self.window {
            return None;
        }
        if !self.warmed_up {
            // First full window becomes the reference.
            self.reference = self.window_distribution();
            self.warmed_up = true;
            return None;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            // Keep the reference tracking through the transition.
            if self.cooldown == 0 {
                self.reference = self.window_distribution();
            }
            return None;
        }
        let current = self.window_distribution();
        // Total variation distance.
        let mut classes: Vec<&String> =
            self.reference.keys().chain(current.keys()).collect();
        classes.sort();
        classes.dedup();
        let mut tv = 0.0;
        let mut grew = Vec::new();
        for c in classes {
            let r = self.reference.get(c).copied().unwrap_or(0.0);
            let q = current.get(c).copied().unwrap_or(0.0);
            tv += (r - q).abs();
            if q > r + 1e-12 {
                grew.push((c.clone(), q - r));
            }
        }
        let tv = tv / 2.0;
        if tv >= self.threshold {
            grew.sort_by(|a, b| b.1.total_cmp(&a.1));
            self.reference = current;
            self.cooldown = self.window;
            Some(ShiftEvent { distance: tv, at_observation: self.observations, grew })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_workload_never_signals() {
        let mut d = ShiftDetector::new(20, 0.3);
        for i in 0..500 {
            let class = if i % 3 == 0 { "oltp" } else { "olap" };
            assert!(d.observe(class).is_none(), "no shift at {i}");
        }
        assert_eq!(d.observations(), 500);
    }

    #[test]
    fn abrupt_shift_signals_once_then_rebases() {
        let mut d = ShiftDetector::new(20, 0.4);
        for _ in 0..100 {
            assert!(d.observe("oltp").is_none());
        }
        // Flip entirely to analytics.
        let mut events = Vec::new();
        for _ in 0..100 {
            if let Some(e) = d.observe("olap") {
                events.push(e);
            }
        }
        assert_eq!(events.len(), 1, "one signal per shift, then rebase");
        let e = &events[0];
        assert!(e.distance >= 0.4);
        assert_eq!(e.grew[0].0, "olap");
        // The rebased reference absorbs the new mix: continuing is quiet.
        for _ in 0..100 {
            assert!(d.observe("olap").is_none());
        }
    }

    #[test]
    fn gradual_drift_below_threshold_is_tolerated() {
        let mut d = ShiftDetector::new(40, 0.5);
        let mut signals = 0;
        for i in 0..400 {
            // Mix moves from 90/10 to 70/30 — a mild drift.
            let olap_share = 10 + (i / 40);
            let class = if i % 100 < olap_share { "olap" } else { "oltp" };
            if d.observe(class).is_some() {
                signals += 1;
            }
        }
        assert_eq!(signals, 0, "mild drift below threshold must not alarm");
    }

    #[test]
    fn new_class_appearance_detected() {
        let mut d = ShiftDetector::new(20, 0.3);
        for _ in 0..50 {
            d.observe("reporting");
        }
        let mut signalled = false;
        for _ in 0..30 {
            if d.observe("adhoc").is_some() {
                signalled = true;
                break;
            }
        }
        assert!(signalled, "a brand-new query class is a shift");
    }

    #[test]
    #[should_panic(expected = "window too small")]
    fn tiny_window_rejected() {
        ShiftDetector::new(2, 0.3);
    }
}
