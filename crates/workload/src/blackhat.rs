//! "Black Hat Query Optimization" workloads (Lohman, Cole, Chaudhuri, Kuno).
//!
//! The break-out's trap list, made executable: data and queries engineered to
//! break the standard estimation assumptions —
//!
//! 1. **redundant pseudo-key** — a predicate fully implied by another (the
//!    "7 orders of magnitude" insurance-company war story);
//! 2. **within-table correlation** — two columns that always agree;
//! 3. **skewed equality** — a Zipf column where the per-bucket average is
//!    wrong at both the hot and the cold end;
//! 4. **skewed join keys** — a join whose containment-assumption estimate
//!    misses the hot-key blowup.
//!
//! Each [`Trap`] carries the query and enough metadata for the harness to
//! compare an estimator's guess against the true cardinality.

use crate::gen::{ColumnGen, TableBuilder};
use rqp_common::expr::{col, lit, Expr};
use rqp_common::rng::{child_seed, seeded};
use rqp_opt::QuerySpec;
use rqp_storage::Catalog;

/// One adversarial case.
pub struct Trap {
    /// Short identifier.
    pub name: &'static str,
    /// What assumption it attacks.
    pub description: &'static str,
    /// The query.
    pub spec: QuerySpec,
    /// Table whose output cardinality is the target (single-table traps),
    /// or `None` when the target is the join result.
    pub target_table: Option<&'static str>,
    /// The predicate under test (single-table traps).
    pub pred: Option<Expr>,
}

/// The adversarial database.
pub struct BlackHatDb {
    /// Catalog with `person` and `sales`.
    pub catalog: Catalog,
}

impl BlackHatDb {
    /// Generate with `rows` person rows (sales gets 4×).
    pub fn build(rows: usize, seed: u64) -> Self {
        let mut catalog = Catalog::new();
        let mut rng = seeded(child_seed(seed, "person"));
        // pseudo_key = lastname_id * 7 + 3: fully redundant with lastname_id.
        // twin_a / twin_b: perfectly correlated range columns.
        let person = TableBuilder::new("person")
            .column("id", ColumnGen::Sequential)
            .column("lastname_id", ColumnGen::UniformInt { lo: 0, hi: 99 })
            .column("pseudo_key", ColumnGen::Derived { source: 1, f: Box::new(|v| v * 7 + 3) })
            .column("twin_a", ColumnGen::UniformInt { lo: 0, hi: 99 })
            .column("twin_b", ColumnGen::Derived { source: 3, f: Box::new(|v| v) })
            .column("zipf", ColumnGen::ZipfInt { n: 1000, theta: 1.0 })
            .build(rows, &mut rng);
        catalog.add_table(person);

        let mut rng = seeded(child_seed(seed, "sales"));
        let sales = TableBuilder::new("sales")
            .column("id", ColumnGen::Sequential)
            .column("person_zipf", ColumnGen::ZipfInt { n: 1000, theta: 1.0 })
            .column("amount", ColumnGen::UniformFloat { lo: 0.0, hi: 1000.0 })
            .build(rows * 4, &mut rng);
        catalog.add_table(sales);
        BlackHatDb { catalog }
    }

    /// The trap list.
    pub fn traps(&self) -> Vec<Trap> {
        let mut out = Vec::new();

        // 1. Redundant pseudo-key: lastname_id = 42 AND pseudo_key = 297.
        let pred = col("person.lastname_id")
            .eq(lit(42i64))
            .and(col("person.pseudo_key").eq(lit(42i64 * 7 + 3)));
        out.push(Trap {
            name: "redundant_pseudo_key",
            description: "predicate implied by another; independence multiplies \
                          selectivities and underestimates by ~NDV(pseudo_key)",
            spec: QuerySpec::new().table("person").filter("person", pred.clone()),
            target_table: Some("person"),
            pred: Some(pred),
        });

        // 2. Correlated twin columns.
        let pred = col("person.twin_a")
            .lt(lit(10i64))
            .and(col("person.twin_b").lt(lit(10i64)));
        out.push(Trap {
            name: "correlated_range",
            description: "two identical columns; independence squares a 10% \
                          selectivity into 1%",
            spec: QuerySpec::new().table("person").filter("person", pred.clone()),
            target_table: Some("person"),
            pred: Some(pred),
        });

        // 3a. Skewed equality, hot key.
        let pred = col("person.zipf").eq(lit(1i64));
        out.push(Trap {
            name: "skew_eq_hot",
            description: "Zipf hot key: per-bucket average underestimates the head",
            spec: QuerySpec::new().table("person").filter("person", pred.clone()),
            target_table: Some("person"),
            pred: Some(pred),
        });

        // 3b. Skewed equality, cold key.
        let pred = col("person.zipf").eq(lit(997i64));
        out.push(Trap {
            name: "skew_eq_cold",
            description: "Zipf cold key: per-bucket average overestimates the tail",
            spec: QuerySpec::new().table("person").filter("person", pred.clone()),
            target_table: Some("person"),
            pred: Some(pred),
        });

        // 4. Skewed join keys: person.zipf = sales.person_zipf.
        out.push(Trap {
            name: "skewed_join",
            description: "Zipf ⋈ Zipf: containment assumption misses the \
                          hot-key quadratic blowup",
            spec: QuerySpec::new().join("person", "zipf", "sales", "person_zipf"),
            target_table: None,
            pred: None,
        });

        out
    }

    /// True output cardinality of a trap.
    pub fn true_cardinality(&self, trap: &Trap) -> usize {
        match (&trap.target_table, &trap.pred) {
            (Some(t), Some(p)) => self
                .catalog
                .table(t)
                .expect("trap table exists")
                .count_where(p)
                .expect("trap predicate binds"),
            _ => {
                // Join trap: exact key-count convolution.
                let person = self.catalog.table("person").expect("person");
                let sales = self.catalog.table("sales").expect("sales");
                let mut counts = std::collections::HashMap::new();
                for v in person.column_by_name("zipf").unwrap().as_int_slice().unwrap() {
                    counts.entry(*v).or_insert((0usize, 0usize)).0 += 1;
                }
                for v in sales
                    .column_by_name("person_zipf")
                    .unwrap()
                    .as_int_slice()
                    .unwrap()
                {
                    counts.entry(*v).or_insert((0, 0)).1 += 1;
                }
                counts.values().map(|&(a, b)| a * b).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_stats::{CardEstimator, StatsEstimator, TableStatsRegistry};
    use std::rc::Rc;

    fn db() -> BlackHatDb {
        BlackHatDb::build(5000, 13)
    }

    fn estimator(db: &BlackHatDb) -> StatsEstimator {
        StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 32)))
    }

    #[test]
    fn trap_list_complete() {
        let db = db();
        let traps = db.traps();
        assert_eq!(traps.len(), 5);
        for t in &traps {
            assert!(!t.name.is_empty());
            t.spec.validate().unwrap();
        }
    }

    #[test]
    fn redundant_pseudo_key_underestimates_massively() {
        let db = db();
        let est = estimator(&db);
        let trap = &db.traps()[0];
        let truth = db.true_cardinality(trap) as f64;
        let guess = est.filtered_rows("person", trap.pred.as_ref().unwrap());
        // Truth ≈ rows/100 ≈ 50; independence guess ≈ truth / NDV(pseudo).
        assert!(truth >= 10.0);
        let q = rqp_stats::q_error(guess, truth);
        assert!(q > 20.0, "expected a large underestimate, q-error {q}");
        assert!(guess < truth, "direction: underestimate");
    }

    #[test]
    fn correlated_range_underestimates() {
        let db = db();
        let est = estimator(&db);
        let trap = &db.traps()[1];
        let truth = db.true_cardinality(trap) as f64;
        let guess = est.filtered_rows("person", trap.pred.as_ref().unwrap());
        // Truth ≈ 10%; independence ≈ 1%.
        let q = rqp_stats::q_error(guess, truth);
        assert!(q > 5.0, "q-error {q}");
    }

    #[test]
    fn skew_traps_err_in_opposite_directions() {
        let db = db();
        let est = estimator(&db);
        let traps = db.traps();
        let hot_truth = db.true_cardinality(&traps[2]) as f64;
        let hot_guess = est.filtered_rows("person", traps[2].pred.as_ref().unwrap());
        let cold_truth = db.true_cardinality(&traps[3]) as f64;
        let cold_guess = est.filtered_rows("person", traps[3].pred.as_ref().unwrap());
        assert!(hot_truth > 300.0, "zipf head is hot: {hot_truth}");
        // A fine equi-depth histogram largely resolves the head (that is the
        // point of quantile buckets); the trap bites coarse/sampled stats.
        assert!(hot_guess > 50.0, "head not absurdly underestimated: {hot_guess}");
        assert!(cold_truth <= 5.0, "tail is cold: {cold_truth}");
        assert!(cold_guess >= cold_truth, "tail not underestimated");
    }

    #[test]
    fn skewed_join_blows_past_containment_estimate() {
        let db = db();
        let est = estimator(&db);
        let trap = &db.traps()[4];
        let truth = db.true_cardinality(trap) as f64;
        let guess = est.table_rows("person")
            * est.table_rows("sales")
            * est.join_selectivity("person", "zipf", "sales", "person_zipf");
        assert!(
            truth > guess * 3.0,
            "hot-key blowup: truth {truth}, containment guess {guess}"
        );
    }
}
