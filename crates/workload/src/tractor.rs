//! The tractor-pull benchmark (Kersten, Kemper, Markl, Nica, Poess, Sattler).
//!
//! "The tractor pull suite is formulated to evaluate a system systematically
//! against an increasingly complex workload": each round increases the load
//! (bigger tables, more joins), the sled gets heavier, and the metric is the
//! *increasing variance in response time* until the system stalls against a
//! budget. The distance travelled before the stall, and how gracefully
//! variance grows, compare systems' robustness rather than raw speed.

use crate::star::{StarDb, StarParams};
use rand::Rng;
use rqp_common::rng::{child_seed, seeded};
use rqp_common::Result;
use rqp_exec::{AggSpec, ExecContext};
use rqp_opt::{plan, PlannerConfig, QuerySpec};
use rqp_stats::{StatsEstimator, TableStatsRegistry};
use std::rc::Rc;

/// Configuration of a tractor pull.
#[derive(Debug, Clone, Copy)]
pub struct TractorConfig {
    /// Maximum rounds to attempt.
    pub max_rounds: usize,
    /// Fact rows in round 0.
    pub base_rows: usize,
    /// Fact-row multiplier per round (the heavier sled).
    pub growth: f64,
    /// Query instances per round (with jittered parameters).
    pub queries_per_round: usize,
    /// Cost budget per query; exceeding the budget on average = stall.
    pub stall_budget: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for TractorConfig {
    fn default() -> Self {
        TractorConfig {
            max_rounds: 8,
            base_rows: 1000,
            growth: 2.0,
            queries_per_round: 5,
            stall_budget: 50_000.0,
            seed: 271,
        }
    }
}

/// Result of one round.
#[derive(Debug, Clone)]
pub struct TractorRound {
    /// Round number (0-based).
    pub round: usize,
    /// Fact rows this round.
    pub fact_rows: usize,
    /// Number of dimension joins this round (1–3).
    pub joins: usize,
    /// Mean query cost.
    pub mean_cost: f64,
    /// Coefficient of variation of query costs (the robustness signal).
    pub cv: f64,
    /// Worst query cost.
    pub max_cost: f64,
    /// Whether the round stalled (mean cost over budget).
    pub stalled: bool,
}

/// The tractor-pull driver.
pub struct TractorPull;

impl TractorPull {
    /// Run the pull; stops after the first stalled round (inclusive).
    pub fn run(cfg: TractorConfig) -> Result<Vec<TractorRound>> {
        let mut rounds = Vec::new();
        let mut rng = seeded(child_seed(cfg.seed, "tractor"));
        for round in 0..cfg.max_rounds {
            let fact_rows =
                ((cfg.base_rows as f64) * cfg.growth.powi(round as i32)).round() as usize;
            let joins = 1 + (round / 2).min(2);
            let db = StarDb::build(
                StarParams { fact_rows, ..Default::default() },
                child_seed(cfg.seed, &format!("round{round}")),
            );
            let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 16));
            let est = StatsEstimator::new(reg);

            let mut costs = Vec::with_capacity(cfg.queries_per_round);
            for _ in 0..cfg.queries_per_round {
                let ks: Vec<i64> = (0..3)
                    .map(|d| if d < joins { rng.gen_range(2..9) } else { 10 })
                    .collect();
                let spec = round_query(&db, joins, &ks);
                let p = plan(&spec, &db.catalog, &est, PlannerConfig::default())?;
                let ctx = ExecContext::unbounded();
                p.build(&db.catalog, &ctx, None)?.run();
                costs.push(ctx.clock.now());
            }
            let mean = costs.iter().sum::<f64>() / costs.len() as f64;
            let var = costs.iter().map(|c| (c - mean).powi(2)).sum::<f64>()
                / costs.len() as f64;
            let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
            let max_cost = costs.iter().cloned().fold(0.0, f64::max);
            let stalled = mean > cfg.stall_budget;
            rounds.push(TractorRound {
                round,
                fact_rows,
                joins,
                mean_cost: mean,
                cv,
                max_cost,
                stalled,
            });
            if stalled {
                break;
            }
        }
        Ok(rounds)
    }

    /// Distance metric: rounds completed before stalling.
    pub fn distance(rounds: &[TractorRound]) -> usize {
        rounds.iter().filter(|r| !r.stalled).count()
    }
}

fn round_query(db: &StarDb, joins: usize, ks: &[i64]) -> QuerySpec {
    use rqp_common::expr::{col, lit};
    let mut q = QuerySpec::new().table("fact");
    let dims = ["d1", "d2", "d3"];
    let fks = ["fk1", "fk2", "fk3"];
    for d in 0..joins {
        q = q.join("fact", fks[d], dims[d], "key");
        if ks[d] < 10 {
            q = q.filter(dims[d], col(format!("{}.attr", dims[d])).lt(lit(ks[d])));
        }
    }
    let _ = db;
    q.aggregate(&[], vec![AggSpec::count_star("n")])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_completes_rounds_and_costs_grow() {
        let rounds = TractorPull::run(TractorConfig {
            max_rounds: 4,
            base_rows: 500,
            growth: 2.0,
            queries_per_round: 3,
            stall_budget: 1e12,
            seed: 7,
        })
        .unwrap();
        assert_eq!(rounds.len(), 4);
        assert!(rounds.windows(2).all(|w| w[1].fact_rows > w[0].fact_rows));
        assert!(
            rounds.last().unwrap().mean_cost > rounds[0].mean_cost,
            "heavier sled costs more"
        );
        assert_eq!(TractorPull::distance(&rounds), 4);
    }

    #[test]
    fn stall_stops_the_pull() {
        let rounds = TractorPull::run(TractorConfig {
            max_rounds: 10,
            base_rows: 500,
            growth: 4.0,
            queries_per_round: 2,
            stall_budget: 200.0,
            seed: 7,
        })
        .unwrap();
        assert!(rounds.len() < 10, "must stall before 10 quadrupling rounds");
        assert!(rounds.last().unwrap().stalled);
        assert!(TractorPull::distance(&rounds) < rounds.len());
    }

    #[test]
    fn joins_escalate() {
        let rounds = TractorPull::run(TractorConfig {
            max_rounds: 5,
            base_rows: 300,
            growth: 1.5,
            queries_per_round: 2,
            stall_budget: 1e12,
            seed: 3,
        })
        .unwrap();
        assert_eq!(rounds[0].joins, 1);
        assert!(rounds[4].joins >= 2);
    }
}
