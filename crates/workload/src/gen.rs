//! Deterministic column and table generators.

use rand::rngs::StdRng;
use rand::Rng;
use rqp_common::rng::Zipf;
use rqp_common::{DataType, Field, Schema, Value};
use rqp_storage::{ColumnData, Table};

/// A column generator: how one column's values are produced.
pub enum ColumnGen {
    /// `0, 1, 2, …` (a synthetic key).
    Sequential,
    /// Uniform integers in `[lo, hi]`.
    UniformInt {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Zipf-skewed integers in `1..=n` with exponent `theta`.
    ZipfInt {
        /// Domain size.
        n: usize,
        /// Skew exponent (0 = uniform, 1 = heavy skew).
        theta: f64,
    },
    /// Uniform floats in `[lo, hi)`.
    UniformFloat {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// A deterministic function of another (already generated) column:
    /// `value = f(row_value_of(source))` — the correlation workhorse.
    Derived {
        /// Index of the source column in the builder.
        source: usize,
        /// The mapping applied to the source's integer value.
        f: Box<dyn Fn(i64) -> i64>,
    },
    /// Categorical strings `prefix0..prefix{n-1}`, uniform.
    Categorical {
        /// Prefix of each category label.
        prefix: String,
        /// Number of categories.
        n: usize,
    },
}

impl ColumnGen {
    fn data_type(&self) -> DataType {
        match self {
            ColumnGen::Sequential
            | ColumnGen::UniformInt { .. }
            | ColumnGen::ZipfInt { .. }
            | ColumnGen::Derived { .. } => DataType::Int,
            ColumnGen::UniformFloat { .. } => DataType::Float,
            ColumnGen::Categorical { .. } => DataType::Str,
        }
    }
}

/// Builds a table column by column from generators.
pub struct TableBuilder {
    name: String,
    columns: Vec<(String, ColumnGen)>,
}

impl TableBuilder {
    /// Start a builder for table `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder { name: name.into(), columns: Vec::new() }
    }

    /// Add a column.
    pub fn column(mut self, name: impl Into<String>, gen: ColumnGen) -> Self {
        self.columns.push((name.into(), gen));
        self
    }

    /// Generate `rows` rows with `rng`.
    ///
    /// Panics if a `Derived` column references a later or non-integer
    /// column (generator misuse is a programming error).
    pub fn build(self, rows: usize, rng: &mut StdRng) -> Table {
        let fields: Vec<Field> = self
            .columns
            .iter()
            .map(|(n, g)| Field::new(n.clone(), g.data_type()))
            .collect();
        let schema = Schema::new(fields);
        let mut data: Vec<ColumnData> = Vec::with_capacity(self.columns.len());
        for (ci, (_, gen)) in self.columns.iter().enumerate() {
            let col = match gen {
                ColumnGen::Sequential => {
                    ColumnData::Int((0..rows as i64).collect())
                }
                ColumnGen::UniformInt { lo, hi } => {
                    ColumnData::Int((0..rows).map(|_| rng.gen_range(*lo..=*hi)).collect())
                }
                ColumnGen::ZipfInt { n, theta } => {
                    let z = Zipf::new(*n, *theta);
                    ColumnData::Int((0..rows).map(|_| z.sample(rng) as i64).collect())
                }
                ColumnGen::UniformFloat { lo, hi } => ColumnData::Float(
                    (0..rows).map(|_| rng.gen_range(*lo..*hi)).collect(),
                ),
                ColumnGen::Derived { source, f } => {
                    assert!(*source < ci, "Derived must reference an earlier column");
                    let src = data[*source]
                        .as_int_slice()
                        .expect("Derived source must be an integer column");
                    ColumnData::Int(src.iter().map(|&v| f(v)).collect())
                }
                ColumnGen::Categorical { prefix, n } => ColumnData::Str(
                    (0..rows)
                        .map(|_| format!("{prefix}{}", rng.gen_range(0..*n)))
                        .collect(),
                ),
            };
            data.push(col);
        }
        Table::from_columns(self.name, schema, data).expect("generated columns are consistent")
    }
}

/// Convenience: a single-column integer table.
pub fn int_table(name: &str, column: &str, values: Vec<i64>) -> Table {
    let schema = Schema::from_pairs(&[(column, DataType::Int)]);
    let mut t = Table::new(name, schema);
    for v in values {
        t.append(vec![Value::Int(v)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::rng::seeded;

    #[test]
    fn builder_produces_consistent_table() {
        let mut rng = seeded(42);
        let t = TableBuilder::new("t")
            .column("id", ColumnGen::Sequential)
            .column("u", ColumnGen::UniformInt { lo: 0, hi: 9 })
            .column("z", ColumnGen::ZipfInt { n: 100, theta: 1.0 })
            .column("f", ColumnGen::UniformFloat { lo: 0.0, hi: 1.0 })
            .column("c", ColumnGen::Categorical { prefix: "cat".into(), n: 5 })
            .build(1000, &mut rng);
        assert_eq!(t.nrows(), 1000);
        assert_eq!(t.schema().len(), 5);
        assert_eq!(t.column_by_name("id").unwrap().get(7), Value::Int(7));
        let u = t.column_by_name("u").unwrap();
        assert!(u.iter_values().all(|v| (0..=9).contains(&v.as_int().unwrap())));
    }

    #[test]
    fn derived_column_is_perfectly_correlated() {
        let mut rng = seeded(7);
        let t = TableBuilder::new("t")
            .column("a", ColumnGen::UniformInt { lo: 0, hi: 99 })
            .column("b", ColumnGen::Derived { source: 0, f: Box::new(|v| v * 2 + 1) })
            .build(500, &mut rng);
        let a = t.column_by_name("a").unwrap().as_int_slice().unwrap().to_vec();
        let b = t.column_by_name("b").unwrap().as_int_slice().unwrap().to_vec();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(*y, x * 2 + 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut rng = seeded(99);
            TableBuilder::new("t")
                .column("z", ColumnGen::ZipfInt { n: 50, theta: 0.8 })
                .build(200, &mut rng)
        };
        let a = build();
        let b = build();
        assert_eq!(
            a.column(0).as_int_slice().unwrap(),
            b.column(0).as_int_slice().unwrap()
        );
    }

    #[test]
    fn zipf_column_is_skewed() {
        let mut rng = seeded(3);
        let t = TableBuilder::new("t")
            .column("z", ColumnGen::ZipfInt { n: 1000, theta: 1.0 })
            .build(10_000, &mut rng);
        let z = t.column_by_name("z").unwrap().as_int_slice().unwrap();
        let ones = z.iter().filter(|&&v| v == 1).count();
        assert!(ones > 800, "rank-1 should dominate, got {ones}");
    }

    #[test]
    #[should_panic(expected = "Derived must reference an earlier column")]
    fn derived_forward_reference_panics() {
        let mut rng = seeded(1);
        TableBuilder::new("t")
            .column("b", ColumnGen::Derived { source: 0, f: Box::new(|v| v) })
            .build(10, &mut rng);
    }

    #[test]
    fn int_table_helper() {
        let t = int_table("x", "v", vec![3, 1, 2]);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.value(1, "v").unwrap(), Value::Int(1));
    }
}
