//! Workload management: MPL admission, weighted processor sharing, and the
//! FMT / FPT resource tests.
//!
//! The seminar's "Measuring the Effects of Dynamic Activities" break-out
//! defines two resource-robustness tests over TPC-H-like workloads:
//!
//! * **FMT** (Fluctuating Memory Test) — run the workload while the
//!   available memory changes; a robust system's performance stays between
//!   the all-memory upper baseline (*memUBL*) and the minimum-memory lower
//!   baseline (*memLBL*);
//! * **FPT** (Fluctuating degree-of-Parallelism Test) — measure how a
//!   running query `Qi` degrades when a competing `Qm` takes processes away.
//!
//! [`WorkloadManager`] is a deterministic discrete-event simulator: jobs
//! carry *service demands in cost units* (measured by really executing plans
//! on the cost clock), and the manager schedules them under an MPL gate with
//! priority admission and weighted processor sharing.

use rqp_common::{Result, RqpError};
use rqp_exec::ExecContext;
use rqp_opt::{plan, PlannerConfig, QuerySpec};
use rqp_stats::CardEstimator;
use rqp_storage::Catalog;

/// A unit of work for the manager.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Identifier.
    pub id: usize,
    /// Arrival time.
    pub arrival: f64,
    /// Service demand in cost units.
    pub demand: f64,
    /// Priority (0 = highest); admission prefers higher priority.
    pub priority: u8,
    /// Share weight while running (its "degree of parallelism").
    pub weight: f64,
}

/// Per-job simulation outcome.
#[derive(Debug, Clone, Copy)]
pub struct JobOutcome {
    /// Job id.
    pub id: usize,
    /// Time admitted to the run set.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
    /// Response time (finish − arrival).
    pub response: f64,
}

/// Aggregate simulation outcome.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-job outcomes, by job id order.
    pub jobs: Vec<JobOutcome>,
    /// Time the last job finished.
    pub makespan: f64,
}

impl SimOutcome {
    /// Mean response time.
    pub fn mean_response(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.jobs.iter().map(|j| j.response).sum::<f64>() / self.jobs.len() as f64
        }
    }

    /// Outcome of one job.
    pub fn job(&self, id: usize) -> Option<&JobOutcome> {
        self.jobs.iter().find(|j| j.id == id)
    }
}

/// The manager: MPL gate + priority queue + weighted processor sharing.
///
/// ```
/// use rqp_workload::{Job, WorkloadManager};
///
/// let mgr = WorkloadManager::new(1, 10.0); // serial machine, 10 units/s
/// let out = mgr.simulate(&[
///     Job { id: 0, arrival: 0.0, demand: 100.0, priority: 1, weight: 1.0 },
///     Job { id: 1, arrival: 1.0, demand: 10.0, priority: 0, weight: 1.0 },
/// ]);
/// // The high-priority latecomer runs right after the first job finishes.
/// assert!(out.job(1).unwrap().start >= 10.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WorkloadManager {
    /// Maximum concurrent jobs.
    pub mpl: usize,
    /// Total service capacity (cost units per time unit).
    pub capacity: f64,
}

impl WorkloadManager {
    /// New manager.
    pub fn new(mpl: usize, capacity: f64) -> Self {
        assert!(mpl > 0 && capacity > 0.0);
        WorkloadManager { mpl, capacity }
    }

    /// Simulate to completion.
    pub fn simulate(&self, jobs: &[Job]) -> SimOutcome {
        #[derive(Debug, Clone, Copy)]
        struct Running {
            job: Job,
            start: f64,
            left: f64,
        }
        let mut pending: Vec<Job> = jobs.to_vec();
        pending.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        pending.reverse(); // pop() = earliest
        let mut waiting: Vec<Job> = Vec::new();
        let mut running: Vec<Running> = Vec::new();
        let mut done: Vec<JobOutcome> = Vec::new();
        let mut t: f64 = 0.0;

        let admit = |waiting: &mut Vec<Job>, running: &mut Vec<Running>, mpl: usize, t: f64| {
            // Highest priority (lowest number), FIFO within priority.
            waiting.sort_by(|a, b| {
                a.priority
                    .cmp(&b.priority)
                    .then(a.arrival.total_cmp(&b.arrival))
            });
            while running.len() < mpl && !waiting.is_empty() {
                let j = waiting.remove(0);
                running.push(Running { job: j, start: t, left: j.demand });
            }
        };

        while !pending.is_empty() || !waiting.is_empty() || !running.is_empty() {
            // Every arrival due by now joins the wait queue *before* anyone
            // is admitted, so a batch arriving together is admitted in
            // priority order rather than list order.
            while pending.last().is_some_and(|j| j.arrival <= t) {
                let j = pending.pop().expect("checked");
                waiting.push(j);
            }
            admit(&mut waiting, &mut running, self.mpl, t);
            if running.is_empty() {
                // Idle until the next arrival.
                let j = pending.pop().expect("loop invariant: work exists");
                t = t.max(j.arrival);
                waiting.push(j);
                continue;
            }
            let total_weight: f64 = running.iter().map(|r| r.job.weight.max(1e-9)).sum();
            // Per-job service rate under weighted sharing.
            let rate = |r: &Running| self.capacity * r.job.weight.max(1e-9) / total_weight;
            let next_finish = running
                .iter()
                .map(|r| t + r.left / rate(r))
                .fold(f64::INFINITY, f64::min);
            let next_arrival = pending.last().map(|j| j.arrival).unwrap_or(f64::INFINITY);
            let t_next = next_finish.min(next_arrival.max(t));
            let dt = (t_next - t).max(0.0);
            for r in &mut running {
                r.left -= rate(r) * dt;
            }
            t = t_next;
            running.retain(|r| {
                if r.left <= 1e-9 {
                    done.push(JobOutcome {
                        id: r.job.id,
                        start: r.start,
                        finish: t,
                        response: t - r.job.arrival,
                    });
                    false
                } else {
                    true
                }
            });
        }
        done.sort_by_key(|j| j.id);
        SimOutcome { jobs: done, makespan: t }
    }
}

// ---------------------------------------------------------------------------
// FMT
// ---------------------------------------------------------------------------

/// Result of the fluctuating-memory test.
#[derive(Debug, Clone)]
pub struct FmtReport {
    /// Total workload cost with maximal memory (upper baseline — best case).
    pub mem_ubl_cost: f64,
    /// Total workload cost with minimal memory (lower baseline — worst case).
    pub mem_lbl_cost: f64,
    /// Per-query `(memory, cost)` under the fluctuating schedule.
    pub scheduled: Vec<(f64, f64)>,
}

impl FmtReport {
    /// Total cost under the schedule.
    pub fn scheduled_cost(&self) -> f64 {
        self.scheduled.iter().map(|&(_, c)| c).sum()
    }

    /// The robustness check: the scheduled run must land between the
    /// baselines (small tolerance for page rounding).
    pub fn within_bounds(&self) -> bool {
        let s = self.scheduled_cost();
        s >= self.mem_ubl_cost * 0.999 && s <= self.mem_lbl_cost * 1.001
    }

    /// Normalized position in `[0, 1]`: 0 = at the upper baseline (best),
    /// 1 = at the lower baseline (worst).
    pub fn position(&self) -> f64 {
        let span = self.mem_lbl_cost - self.mem_ubl_cost;
        if span <= 0.0 {
            0.0
        } else {
            ((self.scheduled_cost() - self.mem_ubl_cost) / span).clamp(0.0, 1.0)
        }
    }
}

/// Run the FMT: execute `specs` three times — max memory, min memory, and
/// under `schedule` (memory per query, cycled).
pub fn fluctuating_memory_test(
    catalog: &Catalog,
    est: &dyn CardEstimator,
    specs: &[QuerySpec],
    schedule: &[f64],
    max_memory: f64,
    min_memory: f64,
) -> Result<FmtReport> {
    fluctuating_memory_test_with(catalog, est, specs, schedule, max_memory, min_memory, &|| {})
}

/// [`fluctuating_memory_test`] with a hook invoked before every measured
/// run. The FMT's bound (UBL ≤ scheduled ≤ LBL) presumes each run's cost
/// depends only on its memory grant — stateful storage (a buffer pool
/// warmed by one run and charged to the next) breaks that. The hook lets
/// the caller restore storage to one fixed state (e.g. re-attach a freshly
/// warmed pool) so every run is measured from identical residency.
#[allow(clippy::too_many_arguments)]
pub fn fluctuating_memory_test_with(
    catalog: &Catalog,
    est: &dyn CardEstimator,
    specs: &[QuerySpec],
    schedule: &[f64],
    max_memory: f64,
    min_memory: f64,
    before_run: &dyn Fn(),
) -> Result<FmtReport> {
    if schedule.is_empty() || specs.is_empty() {
        return Err(RqpError::Invalid("FMT needs queries and a schedule".into()));
    }
    let run_at = |mem: f64, spec: &QuerySpec| -> Result<f64> {
        before_run();
        let cfg = PlannerConfig { memory_rows: mem, ..Default::default() };
        let p = plan(spec, catalog, est, cfg)?;
        let ctx = ExecContext::with_memory(mem);
        p.build(catalog, &ctx, None)?.run();
        Ok(ctx.clock.now())
    };
    let mut ubl = 0.0;
    let mut lbl = 0.0;
    let mut scheduled = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        ubl += run_at(max_memory, spec)?;
        lbl += run_at(min_memory, spec)?;
        let mem = schedule[i % schedule.len()].clamp(min_memory, max_memory);
        scheduled.push((mem, run_at(mem, spec)?));
    }
    Ok(FmtReport { mem_ubl_cost: ubl, mem_lbl_cost: lbl, scheduled })
}

// ---------------------------------------------------------------------------
// FPT
// ---------------------------------------------------------------------------

/// Result of the fluctuating-parallelism test.
#[derive(Debug, Clone)]
pub struct FptReport {
    /// `Qi`'s response when running alone with full weight.
    pub solo_response: f64,
    /// `(Qm weight, Qi response)` for each contention level.
    pub contended: Vec<(f64, f64)>,
}

impl FptReport {
    /// Slowdown factors relative to solo.
    pub fn slowdowns(&self) -> Vec<f64> {
        self.contended
            .iter()
            .map(|&(_, r)| r / self.solo_response)
            .collect()
    }
}

/// Run the FPT: `Qi` (demand `qi_demand`, weight 1) runs from t=0; a
/// competitor `Qm` (demand `qm_demand`) arrives at `qm_arrival` with each of
/// the given weights ("how many processes it demands").
pub fn fluctuating_parallelism_test(
    qi_demand: f64,
    qm_demand: f64,
    qm_arrival: f64,
    qm_weights: &[f64],
    capacity: f64,
) -> FptReport {
    let mgr = WorkloadManager::new(8, capacity);
    let solo = mgr.simulate(&[Job {
        id: 0,
        arrival: 0.0,
        demand: qi_demand,
        priority: 1,
        weight: 1.0,
    }]);
    let solo_response = solo.jobs[0].response;
    let contended = qm_weights
        .iter()
        .map(|&w| {
            let out = mgr.simulate(&[
                Job { id: 0, arrival: 0.0, demand: qi_demand, priority: 1, weight: 1.0 },
                Job { id: 1, arrival: qm_arrival, demand: qm_demand, priority: 1, weight: w },
            ]);
            (w, out.job(0).expect("Qi completes").response)
        })
        .collect();
    FptReport { solo_response, contended }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{TpchDb, TpchParams};
    use rqp_stats::{StatsEstimator, TableStatsRegistry};
    use std::rc::Rc;

    #[test]
    fn single_job_runs_at_capacity() {
        let mgr = WorkloadManager::new(4, 10.0);
        let out = mgr.simulate(&[Job {
            id: 0,
            arrival: 5.0,
            demand: 100.0,
            priority: 0,
            weight: 1.0,
        }]);
        let j = out.job(0).unwrap();
        assert!((j.finish - 15.0).abs() < 1e-9);
        assert!((j.response - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mpl_gate_queues_excess_jobs() {
        let mgr = WorkloadManager::new(1, 10.0);
        let jobs: Vec<Job> = (0..3)
            .map(|i| Job { id: i, arrival: 0.0, demand: 100.0, priority: 0, weight: 1.0 })
            .collect();
        let out = mgr.simulate(&jobs);
        // Serial: finishes at 10, 20, 30.
        let mut finishes: Vec<f64> = out.jobs.iter().map(|j| j.finish).collect();
        finishes.sort_by(f64::total_cmp);
        assert!((finishes[0] - 10.0).abs() < 1e-9);
        assert!((finishes[2] - 30.0).abs() < 1e-9);
        assert!((out.makespan - 30.0).abs() < 1e-9);
    }

    #[test]
    fn priorities_jump_the_queue() {
        let mgr = WorkloadManager::new(1, 10.0);
        let jobs = vec![
            Job { id: 0, arrival: 0.0, demand: 100.0, priority: 1, weight: 1.0 },
            Job { id: 1, arrival: 1.0, demand: 100.0, priority: 1, weight: 1.0 },
            Job { id: 2, arrival: 2.0, demand: 100.0, priority: 0, weight: 1.0 },
        ];
        let out = mgr.simulate(&jobs);
        // Job 2 (high priority) must start before job 1 despite arriving later.
        assert!(out.job(2).unwrap().start < out.job(1).unwrap().start);
    }

    #[test]
    fn weighted_sharing_splits_capacity() {
        let mgr = WorkloadManager::new(4, 10.0);
        let jobs = vec![
            Job { id: 0, arrival: 0.0, demand: 100.0, priority: 0, weight: 3.0 },
            Job { id: 1, arrival: 0.0, demand: 100.0, priority: 0, weight: 1.0 },
        ];
        let out = mgr.simulate(&jobs);
        // Job 0 gets 7.5/s → finishes ~13.33; then job 1 runs alone.
        assert!(out.job(0).unwrap().finish < out.job(1).unwrap().finish);
        assert!((out.job(0).unwrap().finish - 100.0 / 7.5).abs() < 1e-6);
    }

    #[test]
    fn empty_job_list_is_a_quiet_noop() {
        let out = WorkloadManager::new(4, 10.0).simulate(&[]);
        assert!(out.jobs.is_empty());
        assert_eq!(out.makespan, 0.0);
        assert_eq!(out.mean_response(), 0.0);
    }

    #[test]
    fn mpl_one_does_not_preempt_a_running_low_priority_job() {
        // Priority inversion at the gate, deliberately: priorities pick who
        // is admitted *next*, they never preempt a job already running.
        let mgr = WorkloadManager::new(1, 10.0);
        let jobs = vec![
            Job { id: 0, arrival: 0.0, demand: 100.0, priority: 9, weight: 1.0 },
            Job { id: 1, arrival: 1.0, demand: 100.0, priority: 0, weight: 1.0 },
        ];
        let out = mgr.simulate(&jobs);
        let low = out.job(0).unwrap();
        let high = out.job(1).unwrap();
        assert!((low.finish - 10.0).abs() < 1e-9, "low-priority job runs to completion");
        assert!((high.start - low.finish).abs() < 1e-9, "high priority waits for the slot");
        assert!((high.finish - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_job_still_finishes() {
        // Weights are clamped to a positive floor, so a zero-weight job
        // starves *relative* to its competitor but never deadlocks the
        // simulation.
        let mgr = WorkloadManager::new(4, 10.0);
        let jobs = vec![
            Job { id: 0, arrival: 0.0, demand: 100.0, priority: 0, weight: 0.0 },
            Job { id: 1, arrival: 0.0, demand: 100.0, priority: 0, weight: 1.0 },
        ];
        let out = mgr.simulate(&jobs);
        assert_eq!(out.jobs.len(), 2);
        let starved = out.job(0).unwrap();
        let fed = out.job(1).unwrap();
        assert!((fed.finish - 10.0).abs() < 1e-6, "weighted job runs ~alone");
        assert!(starved.finish > fed.finish, "zero weight yields the machine");
        assert!(starved.finish.is_finite(), "but still completes");
        assert!((out.makespan - starved.finish).abs() < 1e-9);
    }

    #[test]
    fn fpt_slowdown_grows_with_competitor_weight() {
        let r = fluctuating_parallelism_test(1000.0, 1000.0, 0.0, &[0.5, 1.0, 3.0], 10.0);
        let s = r.slowdowns();
        assert!(s.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{s:?}");
        assert!(s[0] > 1.0, "any competitor slows Qi down");
        assert!((r.solo_response - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fmt_bounds_hold() {
        let db = TpchDb::build(TpchParams { lineitem_rows: 3000, ..Default::default() }, 5);
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 16));
        let est = StatsEstimator::new(reg);
        let mut rng = rqp_common::rng::seeded(5);
        let specs = db.analytic_mix(6, &mut rng);
        let report = fluctuating_memory_test(
            &db.catalog,
            &est,
            &specs,
            &[200.0, 5000.0, 50_000.0],
            1e9,
            150.0,
        )
        .unwrap();
        assert!(report.mem_ubl_cost <= report.mem_lbl_cost);
        assert!(report.within_bounds(), "position {}", report.position());
        assert!((0.0..=1.0).contains(&report.position()));
    }

    #[test]
    fn fmt_rejects_empty() {
        let db = TpchDb::build(TpchParams { lineitem_rows: 500, ..Default::default() }, 5);
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 16));
        let est = StatsEstimator::new(reg);
        assert!(fluctuating_memory_test(&db.catalog, &est, &[], &[1.0], 10.0, 1.0).is_err());
    }
}
