//! # rqp-workload
//!
//! Everything the robustness experiments need to *drive* the engine:
//!
//! * [`gen`] — deterministic column/table generators: uniform, Zipf-skewed,
//!   correlated, sequential — the data shapes whose mismatch with optimizer
//!   assumptions (uniformity, independence) causes the estimation failures
//!   the seminar catalogues;
//! * [`tpch`] — a TPC-H-like schema (`lineitem`, `orders`, `customer`,
//!   `part`, `supplier`) with parameterized query templates, standing in for
//!   the benchmark the break-outs build their proposals on;
//! * [`star`] — a star schema (fact + dimensions) for the black-hat and
//!   plan-diagram experiments;
//! * [`oltp`] — an order-entry transaction generator (TPC-C-flavoured) for
//!   the mixed-workload (TPC-CH-like) experiment;
//! * [`blackhat`] — adversarial generators: redundant pseudo-key predicates,
//!   cross-table correlation, skewed join keys (the "Black Hat Query
//!   Optimization" session's trap list);
//! * [`tractor`] — the **tractor-pull benchmark**: escalating workload
//!   rounds until the system "stalls";
//! * [`manager`] — a deterministic MPL / priority workload-manager
//!   simulation over cost-clock service demands, plus the **FMT**
//!   (fluctuating memory) and **FPT** (fluctuating parallelism) tests;
//! * [`shift`] — workload-shift detection (the trigger for re-tuning
//!   self-managing components when the mix changes).

#![warn(missing_docs)]

pub mod blackhat;
pub mod gen;
pub mod manager;
pub mod oltp;
pub mod shift;
pub mod star;
pub mod tpch;
pub mod tractor;

pub use blackhat::BlackHatDb;
pub use gen::{ColumnGen, TableBuilder};
pub use manager::{FmtReport, FptReport, Job, SimOutcome, WorkloadManager};
pub use oltp::OltpSimulator;
pub use shift::{ShiftDetector, ShiftEvent};
pub use star::StarDb;
pub use tpch::TpchDb;
pub use tractor::{TractorPull, TractorRound};
