//! Live service introspection: the per-query registry + flight recorder.
//!
//! The completion log ([`QueryService::completions`]
//! (crate::QueryService::completions)) describes queries that have already
//! *ended*; a long-running service also has to answer "what is the service
//! doing right now?" — for the STATS/INSPECT/EVENTS wire frames and the
//! `rqp-top` dashboard. [`ServiceStats`] is that answer, in two halves:
//!
//! * a **live registry** of in-flight queries: phase
//!   ([`QueryPhase::Queued`] at the admission gate, [`QueryPhase::Running`]
//!   on an execution thread, [`QueryPhase::Paging`] while results stream to
//!   a wire client), cost-clock ticks, workspace held, deadline headroom —
//!   each [`snapshot`](ServiceStats::snapshot)-able mid-run because the
//!   underlying instruments (cost clock, governor, tracer) are all
//!   `Arc`-over-atomics;
//! * the service [`FlightRecorder`], through which every subsystem
//!   publishes sequenced events (`query.*`, `admission.*`, `broker.*`,
//!   `pager.*`, plus span-carried adaptive decisions republished at query
//!   end), stamped with wall-clock service uptime.
//!
//! Everything here is advisory observation: registry methods are called on
//! query/pager threads but never block execution on a reader, and an
//! unregistered query id is a no-op everywhere (solo runs bypass the
//! registry by design).

use rqp_common::{CancelToken, SharedClock};
use rqp_exec::MemoryGovernor;
use rqp_telemetry::{FlightRecorder, Tracer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where an in-flight query currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPhase {
    /// Waiting at the admission gate.
    Queued,
    /// Executing on a query thread.
    Running,
    /// Finished executing; results are being paged to a wire client.
    Paging,
}

impl QueryPhase {
    /// Stable numeric encoding (wire frames and the phase atomic).
    pub fn as_u8(self) -> u8 {
        match self {
            QueryPhase::Queued => 0,
            QueryPhase::Running => 1,
            QueryPhase::Paging => 2,
        }
    }

    /// Decode [`as_u8`](Self::as_u8); unknown values read as `Queued`.
    pub fn from_u8(v: u8) -> QueryPhase {
        match v {
            1 => QueryPhase::Running,
            2 => QueryPhase::Paging,
            _ => QueryPhase::Queued,
        }
    }

    /// Lowercase label for dashboards.
    pub fn label(self) -> &'static str {
        match self {
            QueryPhase::Queued => "queued",
            QueryPhase::Running => "running",
            QueryPhase::Paging => "paging",
        }
    }
}

/// Execution-side instruments installed once a query starts running.
struct LiveExec {
    clock: SharedClock,
    gov: Arc<MemoryGovernor>,
    tracer: Tracer,
}

struct LiveEntry {
    session: u64,
    priority: u8,
    phase: AtomicU8,
    cancel: CancelToken,
    exec: Mutex<Option<LiveExec>>,
}

/// One in-flight query's live state, as snapshotted for STATS.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveQueryStats {
    /// Service-wide query id.
    pub query: u64,
    /// Owning session id.
    pub session: u64,
    /// Effective admission priority.
    pub priority: u8,
    /// Current phase.
    pub phase: QueryPhase,
    /// Cost charged to the query's virtual clock so far (0 while queued).
    pub ticks: f64,
    /// Workspace rows currently granted out of the query's governor.
    pub granted: f64,
    /// The query's current broker share (its governor budget).
    pub share: f64,
    /// Cost-clock headroom to the deadline, if one is set.
    pub deadline_remaining: Option<f64>,
}

/// The live half of the observatory: in-flight registry + flight recorder.
#[derive(Debug)]
pub struct ServiceStats {
    live: Mutex<HashMap<u64, Arc<LiveEntry>>>,
    recorder: FlightRecorder,
    started: Instant,
}

impl std::fmt::Debug for LiveEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveEntry")
            .field("session", &self.session)
            .field("phase", &QueryPhase::from_u8(self.phase.load(Ordering::Relaxed)))
            .finish()
    }
}

impl ServiceStats {
    /// A registry whose flight recorder retains `recorder_capacity` events.
    pub fn new(recorder_capacity: usize) -> Self {
        ServiceStats {
            live: Mutex::new(HashMap::new()),
            recorder: FlightRecorder::new(recorder_capacity),
            started: Instant::now(),
        }
    }

    fn table(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<LiveEntry>>> {
        self.live.lock().expect("service stats lock")
    }

    /// The service flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Wall-clock seconds since the service came up — the `at` domain of
    /// every event published through [`publish`](Self::publish).
    pub fn uptime(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Publish one event to the flight recorder, stamped with the current
    /// uptime. `query` is 0 for service-wide events.
    pub fn publish(&self, query: u64, kind: &str, detail: &str) -> u64 {
        self.recorder.publish(self.uptime(), query, kind, detail)
    }

    /// Publish an event with an explicit timestamp (republished span events
    /// keep their cost-clock positions).
    pub fn publish_at(&self, at: f64, query: u64, kind: &str, detail: &str) -> u64 {
        self.recorder.publish(at, query, kind, detail)
    }

    /// Enter `query` into the live registry (phase `Queued`) and publish
    /// its `query.submit` lifecycle event.
    pub fn register(&self, query: u64, session: u64, priority: u8, cancel: &CancelToken) {
        let entry = Arc::new(LiveEntry {
            session,
            priority,
            phase: AtomicU8::new(QueryPhase::Queued.as_u8()),
            cancel: cancel.clone(),
            exec: Mutex::new(None),
        });
        self.table().insert(query, entry);
        self.publish(query, "query.submit", &format!("s{session} prio {priority}"));
    }

    /// Install the execution-side instruments and flip `query` to
    /// `Running`. No-op for unregistered ids (solo runs).
    pub fn mark_running(
        &self,
        query: u64,
        clock: SharedClock,
        gov: Arc<MemoryGovernor>,
        tracer: Tracer,
    ) {
        let Some(entry) = self.table().get(&query).cloned() else { return };
        *entry.exec.lock().expect("live exec lock") = Some(LiveExec { clock, gov, tracer });
        entry.phase.store(QueryPhase::Running.as_u8(), Ordering::Relaxed);
    }

    /// Remove `query` from the registry, publishing its `query.finish`
    /// event with the terminal `status` label.
    pub fn deregister(&self, query: u64, status: &str) {
        self.table().remove(&query);
        self.publish(query, "query.finish", status);
    }

    /// Re-enter a finished wire query as `Paging` while its results stream
    /// out. The execution thread is gone by now, so the entry is
    /// lightweight: phase only.
    pub fn begin_paging(&self, query: u64, session: u64) {
        let entry = Arc::new(LiveEntry {
            session,
            priority: 0,
            phase: AtomicU8::new(QueryPhase::Paging.as_u8()),
            cancel: CancelToken::new(),
            exec: Mutex::new(None),
        });
        self.table().insert(query, entry);
    }

    /// Remove a `Paging` entry once the terminal frame is on the wire.
    pub fn end_paging(&self, query: u64) {
        self.table().remove(&query);
    }

    /// The live tracer and clock of a running query, for INSPECT's
    /// mid-flight `EXPLAIN ANALYZE`. `None` while queued or paging.
    pub fn live_tracer(&self, query: u64) -> Option<(Tracer, SharedClock)> {
        let entry = self.table().get(&query).cloned()?;
        let exec = entry.exec.lock().expect("live exec lock");
        exec.as_ref().map(|e| (e.tracer.clone(), Arc::clone(&e.clock)))
    }

    /// The current phase of `query`, if it is in the registry.
    pub fn phase(&self, query: u64) -> Option<QueryPhase> {
        self.table()
            .get(&query)
            .map(|e| QueryPhase::from_u8(e.phase.load(Ordering::Relaxed)))
    }

    /// Number of queries currently in the registry.
    pub fn live_count(&self) -> usize {
        self.table().len()
    }

    /// Snapshot every in-flight query, ordered by query id.
    pub fn snapshot(&self) -> Vec<LiveQueryStats> {
        let entries: Vec<(u64, Arc<LiveEntry>)> =
            self.table().iter().map(|(q, e)| (*q, Arc::clone(e))).collect();
        let mut out: Vec<LiveQueryStats> = entries
            .into_iter()
            .map(|(query, entry)| {
                let (ticks, granted, share) = {
                    let exec = entry.exec.lock().expect("live exec lock");
                    match exec.as_ref() {
                        Some(e) => (e.clock.now(), e.gov.outstanding(), e.gov.budget()),
                        None => (0.0, 0.0, 0.0),
                    }
                };
                let deadline = entry.cancel.deadline();
                LiveQueryStats {
                    query,
                    session: entry.session,
                    priority: entry.priority,
                    phase: QueryPhase::from_u8(entry.phase.load(Ordering::Relaxed)),
                    ticks,
                    granted,
                    share,
                    deadline_remaining: deadline.is_finite().then_some(deadline - ticks),
                }
            })
            .collect();
        out.sort_by_key(|s| s.query);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::CostClock;

    #[test]
    fn registry_tracks_phases_and_instruments() {
        let stats = ServiceStats::new(64);
        let cancel = CancelToken::new();
        cancel.set_deadline(100.0);
        stats.register(7, 3, 1, &cancel);
        let snap = stats.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].phase, QueryPhase::Queued);
        assert_eq!(snap[0].ticks, 0.0);
        assert_eq!(snap[0].deadline_remaining, Some(100.0));

        let clock = CostClock::default_clock();
        clock.charge_seq_pages(5.0);
        let gov = MemoryGovernor::new(1_000.0);
        gov.grant(400.0);
        stats.mark_running(7, Arc::clone(&clock), Arc::clone(&gov), Tracer::new());
        let snap = stats.snapshot();
        assert_eq!(snap[0].phase, QueryPhase::Running);
        assert_eq!(snap[0].ticks, 5.0);
        assert_eq!(snap[0].granted, 400.0);
        assert_eq!(snap[0].share, 1_000.0);
        assert_eq!(snap[0].deadline_remaining, Some(95.0));
        assert!(stats.live_tracer(7).is_some());
        assert!(stats.live_tracer(8).is_none(), "unknown id");

        stats.deregister(7, "completed");
        assert_eq!(stats.live_count(), 0);
        // Lifecycle events landed in the recorder.
        let kinds: Vec<String> =
            stats.recorder().tail(0, 100).events.into_iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["query.submit", "query.finish"]);
    }

    #[test]
    fn paging_entries_are_lightweight() {
        let stats = ServiceStats::new(64);
        stats.begin_paging(9, 2);
        let snap = stats.snapshot();
        assert_eq!(snap[0].phase, QueryPhase::Paging);
        assert_eq!(snap[0].session, 2);
        assert!(snap[0].deadline_remaining.is_none());
        assert!(stats.live_tracer(9).is_none(), "no execution instruments");
        stats.end_paging(9);
        assert_eq!(stats.live_count(), 0);
    }

    #[test]
    fn unregistered_ids_are_noops() {
        let stats = ServiceStats::new(64);
        stats.mark_running(
            99,
            CostClock::default_clock(),
            MemoryGovernor::new(0.0),
            Tracer::new(),
        );
        stats.deregister(99, "failed");
        stats.end_paging(99);
        assert_eq!(stats.live_count(), 0);
    }

    #[test]
    fn phase_round_trips_through_u8() {
        for p in [QueryPhase::Queued, QueryPhase::Running, QueryPhase::Paging] {
            assert_eq!(QueryPhase::from_u8(p.as_u8()), p);
        }
        assert_eq!(QueryPhase::from_u8(200), QueryPhase::Queued);
    }
}
