//! `rqp-server` — a concurrent query service over the rqp engine.
//!
//! Everything below this crate executes **one query at a time** on a
//! deterministic virtual clock; everything the seminar says about workload
//! robustness, though, is about what happens when queries *share* the
//! system. This crate is that layer, built from four cooperating pieces:
//!
//! * [`AdmissionController`] — the MPL gate with priority queueing. At most
//!   `mpl` queries run at once; excess submissions wait, highest priority
//!   (then FIFO) first. Its policy deliberately mirrors the
//!   [`WorkloadManager`](rqp_workload::WorkloadManager) simulator so traces
//!   replay identically through both.
//! * [`MemoryBroker`] — cross-query workspace brokering. Each admitted
//!   query gets a private [`MemoryGovernor`](rqp_exec::MemoryGovernor)
//!   budgeted at its fair share of the service budget; admissions shrink
//!   running queries' shares (their operators shed workspace via the
//!   pressure-epoch renegotiation machinery), completions grow them back.
//! * [`PlanCache`] — fingerprint-keyed plans invalidated when executed
//!   q-error drifts past a threshold: the LEO plan→observe→replan loop at
//!   service granularity.
//! * Cooperative cancellation — every submission carries a
//!   [`CancelToken`](rqp_common::CancelToken) with an optional cost-unit
//!   deadline; operators poll it at their charging checkpoints and unwind
//!   with typed [`RqpError::Cancelled`](rqp_common::RqpError::Cancelled) /
//!   [`RqpError::DeadlineExceeded`](rqp_common::RqpError::DeadlineExceeded),
//!   releasing workspace on the way out.
//!
//! A query's life: [`Session::submit`] spawns a thread → admission gate →
//! broker reservation → plan cache (or plan under the feedback estimator)
//! → execute → merge its span tree into the service
//! [`Tracer`](rqp_telemetry::Tracer), feed actuals back to LEO, note drift
//! on the plan cache → release the reservation and the MPL slot.
//!
//! Latency gauges ([`QueryService::schedule_report`]) are derived by
//! replaying the completion log through the simulator in virtual time, so
//! they are bit-deterministic and scoreboard-gateable even though real
//! threads race.

#![warn(missing_docs)]

pub mod admission;
pub mod broker;
pub mod cache;
pub mod service;
pub mod session;
pub mod stats;
pub mod subs;

pub use admission::{AdmissionController, AdmissionPermit};
pub use broker::MemoryBroker;
pub use cache::PlanCache;
pub use service::{CompletedQuery, QueryService, QueryStatus, ServiceConfig, ServiceReport};
pub use session::{QueryHandle, QueryOptions, QueryOutcome, Session};
pub use stats::{LiveQueryStats, QueryPhase, ServiceStats};
pub use subs::{SubscribeOptions, Subscription, SubscriptionRegistry};

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, RqpError, Schema, Value};
    use rqp_opt::QuerySpec;
    use rqp_storage::{Catalog, Table};

    fn catalog(rows: i64) -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..rows {
            t.append(vec![Value::Int(i), Value::Int(i % 13)]);
        }
        c.add_table(t);
        c
    }

    fn spec() -> QuerySpec {
        QuerySpec::new().table("t").filter("t", col("t.k").lt(lit(700)))
    }

    #[test]
    fn solo_and_concurrent_results_agree() {
        let svc = QueryService::new(&catalog(1_000), ServiceConfig::default());
        let solo = svc.run_solo(&spec()).unwrap();
        assert_eq!(solo.rows.len(), 700);
        let s = svc.session(1);
        let handles: Vec<_> =
            (0..4).map(|_| s.submit(spec(), QueryOptions::default())).collect();
        for h in handles {
            let got = h.join().unwrap();
            assert_eq!(got.rows, solo.rows, "concurrent result identical to solo");
            assert!(got.plan_cached, "solo run warmed the plan cache");
        }
        assert_eq!(svc.reserved(), 0.0, "all reservations returned");
        let report = svc.schedule_report();
        assert_eq!(report.completed, 4);
        assert!(report.peak_mpl <= svc.config().mpl);
    }

    #[test]
    fn deadline_zero_aborts_immediately() {
        let svc = QueryService::new(&catalog(1_000), ServiceConfig::default());
        let s = svc.session(0);
        let h = s.submit(spec(), QueryOptions::with_deadline(0.0));
        assert_eq!(h.join().unwrap_err(), RqpError::DeadlineExceeded);
        assert_eq!(svc.reserved(), 0.0);
        let c = &svc.completions()[0];
        assert_eq!(c.status, QueryStatus::DeadlineExceeded);
        assert!(c.cancel_latency.is_some());
    }

    #[test]
    fn report_is_deterministic_for_a_fixed_trace() {
        let run = || {
            // No page budget: replay determinism is a claim about the
            // scheduler, and it needs deterministic per-query costs. A
            // *constrained* shared pool makes refault charges depend on
            // which queries' scans interleaved (the paging contract only
            // guarantees row-identity below budget), so the CI paging leg
            // must not turn this into a flake.
            let svc = QueryService::new(&catalog(2_000), ServiceConfig {
                mpl: 2,
                page_budget: None,
                ..ServiceConfig::default()
            });
            svc.pause_admission();
            let s = svc.session(1);
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    s.submit(spec(), QueryOptions::default().at(i as f64 * 10.0))
                })
                .collect();
            while svc.queue_depth() != 3 {
                std::thread::yield_now();
            }
            svc.resume_admission();
            for h in handles {
                h.join().unwrap();
            }
            let r = svc.schedule_report();
            (r.latency_p50, r.latency_p99, r.tail_amplification, r.admission_wait_p99)
        };
        assert_eq!(run(), run(), "virtual-time replay is bit-deterministic");
    }
}
