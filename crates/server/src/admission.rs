//! MPL admission gate with priority queueing.
//!
//! The seminar's workload-management break-out frames admission control as
//! the first line of robustness defense: past a saturation MPL, *running*
//! more queries makes *every* query slower, so a gate that queues the excess
//! keeps the system on the good side of the thrashing cliff. The
//! [`WorkloadManager`](rqp_workload::WorkloadManager) simulates that policy;
//! this controller enforces it for real threads.
//!
//! The policy mirrors the simulator exactly — at most `mpl` queries run at
//! once, and when a slot frees the waiter with the smallest
//! `(priority, submission sequence)` wins (priority 0 is highest; ties are
//! FIFO). That correspondence is load-bearing: `tests/service.rs` replays a
//! trace through both and asserts the completion orders agree.

use rqp_common::{CancelToken, Result};
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug, Clone, Copy)]
struct Ticket {
    priority: u8,
    seq: u64,
}

#[derive(Debug, Default)]
struct State {
    running: usize,
    paused: bool,
    next_seq: u64,
    waiting: Vec<Ticket>,
    peak_running: usize,
    admitted: u64,
}

/// The MPL gate: blocks submitters until a slot is free and they are the
/// highest-priority waiter. See the module docs for the policy.
#[derive(Debug)]
pub struct AdmissionController {
    mpl: usize,
    /// Behind an `Arc` so cancel wakers can lock it: notifying while holding
    /// this mutex is what makes the cancel wakeup race-free (see `admit`).
    state: Arc<Mutex<State>>,
    /// Shared with cancel wakers: a token latched while its query is queued
    /// nudges this condvar so the waiter wakes and leaves, with no polling.
    cv: Arc<Condvar>,
}

impl AdmissionController {
    /// A gate admitting at most `mpl` concurrent queries (clamped to ≥ 1).
    pub fn new(mpl: usize) -> Self {
        AdmissionController {
            mpl: mpl.max(1),
            state: Arc::new(Mutex::new(State::default())),
            cv: Arc::new(Condvar::new()),
        }
    }

    /// The configured multiprogramming limit.
    pub fn mpl(&self) -> usize {
        self.mpl
    }

    /// Block until admitted (or the token trips while queued). The returned
    /// permit occupies one MPL slot until dropped.
    ///
    /// The wait is a pure condvar sleep — no timeout polling. Every event
    /// that can change admittability notifies the condvar: a slot release, a
    /// [`resume`](Self::resume), and — via a [`CancelToken::on_cancel`]
    /// waker registered here — the waiter's own token latching, so a queued
    /// query that is cancelled leaves the queue with the token's latched
    /// cause instead of occupying it as a zombie.
    pub fn admit(&self, priority: u8, cancel: &CancelToken) -> Result<AdmissionPermit<'_>> {
        // Register before queueing: if the token latches at any point after
        // this, the condvar is nudged and the loop below observes it. The
        // waker outlives the wait (it lives as long as the token); stray
        // notifies after admission are harmless.
        //
        // The waker takes the state lock (an empty critical section) before
        // notifying: a waiter is then either before its `is_cancelled` check
        // — it holds the lock and will observe the latch — or already parked
        // in `cv.wait`, which the notify wakes. Without the lock the notify
        // could land in the window between check and sleep and be lost,
        // leaving a cancelled waiter asleep until some unrelated release.
        let cv = Arc::clone(&self.cv);
        let state = Arc::clone(&self.state);
        cancel.on_cancel(move || {
            let _sync = state.lock();
            cv.notify_all();
        });
        let mut st = self.state.lock().expect("admission lock");
        let seq = st.next_seq;
        st.next_seq += 1;
        st.waiting.push(Ticket { priority, seq });
        loop {
            if cancel.is_cancelled() {
                st.waiting.retain(|t| t.seq != seq);
                self.cv.notify_all();
                // A queued query has spent no cost yet, so only a latched
                // cause can surface here; `check(0.0)` reports it.
                cancel.check(0.0)?;
                unreachable!("is_cancelled implies a latched cause");
            }
            let head = st
                .waiting
                .iter()
                .min_by_key(|t| (t.priority, t.seq))
                .map(|t| t.seq);
            if !st.paused && st.running < self.mpl && head == Some(seq) {
                st.waiting.retain(|t| t.seq != seq);
                st.running += 1;
                st.peak_running = st.peak_running.max(st.running);
                st.admitted += 1;
                // More slots may remain; wake the next head.
                self.cv.notify_all();
                return Ok(AdmissionPermit { ctl: self });
            }
            st = self.cv.wait(st).expect("admission lock");
        }
    }

    /// Stop admitting (running queries are unaffected). With the gate
    /// paused, a batch of submissions can queue up and then be released in
    /// strict `(priority, seq)` order by [`resume`](Self::resume) — how the
    /// deterministic trace tests remove submission-timing races.
    pub fn pause(&self) {
        self.state.lock().expect("admission lock").paused = true;
    }

    /// Resume admitting queued queries.
    pub fn resume(&self) {
        self.state.lock().expect("admission lock").paused = false;
        self.cv.notify_all();
    }

    /// Queries currently executing (admitted, not yet completed).
    pub fn running(&self) -> usize {
        self.state.lock().expect("admission lock").running
    }

    /// High-water mark of concurrently admitted queries — the number the
    /// MPL-gate acceptance test compares against [`mpl`](Self::mpl).
    pub fn peak_running(&self) -> usize {
        self.state.lock().expect("admission lock").peak_running
    }

    /// Queries waiting at the gate right now.
    pub fn queue_depth(&self) -> usize {
        self.state.lock().expect("admission lock").waiting.len()
    }

    /// Total queries ever admitted.
    pub fn admitted(&self) -> u64 {
        self.state.lock().expect("admission lock").admitted
    }

    fn release(&self) {
        let mut st = self.state.lock().expect("admission lock");
        st.running = st.running.saturating_sub(1);
        self.cv.notify_all();
    }
}

/// One occupied MPL slot; dropping it releases the slot and wakes waiters.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    ctl: &'a AdmissionController,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.ctl.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::RqpError;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn gate_never_exceeds_mpl() {
        let ctl = Arc::new(AdmissionController::new(2));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (ctl, live, peak) = (Arc::clone(&ctl), Arc::clone(&live), Arc::clone(&peak));
                std::thread::spawn(move || {
                    let token = CancelToken::new();
                    let permit = ctl.admit(1, &token).unwrap();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    // Widen the overlap window without a wall-clock sleep;
                    // the MPL bound must hold regardless of timing.
                    for _ in 0..64 {
                        std::thread::yield_now();
                    }
                    live.fetch_sub(1, Ordering::SeqCst);
                    drop(permit);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "externally observed MPL");
        assert!(ctl.peak_running() <= 2, "controller-tracked MPL");
        assert_eq!(ctl.admitted(), 8);
        assert_eq!(ctl.running(), 0);
        assert_eq!(ctl.queue_depth(), 0);
    }

    #[test]
    fn paused_gate_releases_in_priority_then_fifo_order() {
        let ctl = Arc::new(AdmissionController::new(1));
        ctl.pause();
        let order = Arc::new(Mutex::new(Vec::new()));
        // Submit in a known sequence: ids 0..3 with priorities 2,0,2,1.
        // Expected admission order: 1 (prio 0), 3 (prio 1), 0, 2 (FIFO).
        let mut handles = Vec::new();
        for (id, priority) in [(0u8, 2u8), (1, 0), (2, 2), (3, 1)] {
            let (c, o) = (Arc::clone(&ctl), Arc::clone(&order));
            handles.push(std::thread::spawn(move || {
                let token = CancelToken::new();
                let permit = c.admit(priority, &token).unwrap();
                o.lock().unwrap().push(id);
                drop(permit);
            }));
            // Make the submission sequence (and hence seq numbers)
            // deterministic: wait until this one is queued.
            while ctl.queue_depth() != (id as usize) + 1 {
                std::thread::yield_now();
            }
        }
        ctl.resume();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn cancel_racing_the_wait_never_loses_the_wakeup() {
        // Hammer the window between the waiter's is_cancelled() check and
        // its cv.wait(): the gate stays paused the whole time, so only the
        // cancel notification can ever free a waiter — if that notify is
        // lost, the join below hangs and the test times out.
        let ctl = Arc::new(AdmissionController::new(1));
        ctl.pause();
        for _ in 0..200 {
            let token = CancelToken::new();
            let t2 = token.clone();
            let ctl2 = Arc::clone(&ctl);
            let waiter = std::thread::spawn(move || ctl2.admit(0, &t2).map(|_| ()));
            // No queue-depth handshake: let cancel land anywhere relative to
            // the waiter's registration, check, and sleep.
            token.cancel();
            assert_eq!(waiter.join().unwrap(), Err(RqpError::Cancelled));
        }
        assert_eq!(ctl.queue_depth(), 0);
        assert_eq!(ctl.admitted(), 0);
    }

    #[test]
    fn cancelled_waiter_leaves_the_queue() {
        let ctl = Arc::new(AdmissionController::new(1));
        ctl.pause();
        let token = CancelToken::new();
        let t2 = token.clone();
        let ctl2 = Arc::clone(&ctl);
        let h = std::thread::spawn(move || ctl2.admit(0, &t2).map(|_| ()));
        while ctl.queue_depth() != 1 {
            std::thread::yield_now();
        }
        token.cancel();
        assert_eq!(h.join().unwrap(), Err(RqpError::Cancelled));
        assert_eq!(ctl.queue_depth(), 0, "cancelled waiter removed");
        // The gate still works afterwards.
        ctl.resume();
        let fresh = CancelToken::new();
        drop(ctl.admit(0, &fresh).unwrap());
        assert_eq!(ctl.admitted(), 1);
    }
}
