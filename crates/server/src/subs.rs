//! Standing subscriptions: the registry tying delta circuits to the
//! service's admission, brokering and telemetry machinery.
//!
//! A subscription is "a query that never finishes": it is registered once
//! ([`QueryService::subscribe`](crate::QueryService::subscribe) compiles
//! the spec into a [`ViewCircuit`] and folds in the current table contents
//! under the catalog write lock, so the registration point is an exact
//! changelog epoch), then advanced by *polls* that drain the shared
//! [`Changelog`](rqp_storage::Changelog) through the circuit and emit
//! [`DeltaPacket`]s. The service pieces each subscription touches:
//!
//! * **Identity** — subscriptions draw ids from the same sequence as
//!   queries, so `broker.*` and `sub.*` flight-recorder events share one id
//!   space and `rqp-top` can attribute both.
//! * **Brokering** — each subscription holds a
//!   [`MemoryGovernor`](rqp_exec::MemoryGovernor) granted by the
//!   [`MemoryBroker`](crate::MemoryBroker), sized to the circuit's
//!   maintained state; registering a subscription shrinks running queries'
//!   shares exactly like admitting a query, and unsubscribing returns the
//!   grant (the teardown suites assert `reserved() == 0`).
//! * **Admission** — delta propagation competes for the MPL gate: every
//!   poll takes an admission permit at the subscription's priority, so a
//!   storm of deltas cannot starve ad-hoc queries (or vice versa — a
//!   high-priority subscription overtakes queued batch work).
//! * **Cancellation** — the subscription's [`CancelToken`] carries an
//!   optional cost-unit deadline against its own clock; a poll past the
//!   deadline (or after `cancel()`) tears the subscription down and
//!   reports the typed error, leaving no grants behind.

use rqp_common::{CancelToken, SharedClock};
use rqp_exec::MemoryGovernor;
use rqp_opt::QuerySpec;
use rqp_stream::ViewCircuit;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Per-subscription registration options.
#[derive(Debug, Clone, Default)]
pub struct SubscribeOptions {
    /// Admission priority for polls (0 = highest); defaults to the
    /// session's priority.
    pub priority: Option<u8>,
    /// Workspace reservation ask in rows; defaults to the service's
    /// `default_reservation`. The broker caps it at the fair share.
    pub reservation: Option<f64>,
    /// Deadline in cost units on the subscription's own clock: once the
    /// accumulated propagation cost charges past it, the next poll aborts
    /// with `DeadlineExceeded` and the subscription is torn down.
    pub deadline: Option<f64>,
}

impl SubscribeOptions {
    /// Options with a propagation-cost deadline.
    pub fn with_deadline(deadline: f64) -> Self {
        SubscribeOptions { deadline: Some(deadline), ..Default::default() }
    }
}

/// One standing subscription: a compiled circuit plus its service grants.
#[derive(Debug)]
pub struct Subscription {
    /// Service-wide id (drawn from the query-id sequence).
    pub(crate) id: u64,
    /// Owning session.
    pub(crate) session: u64,
    /// Admission priority of this subscription's polls.
    pub(crate) priority: u8,
    /// The delta circuit; locked per poll (polls for one subscription are
    /// serialized, polls for different subscriptions interleave).
    pub(crate) circuit: Mutex<ViewCircuit>,
    /// Propagation cost clock: initial load and every delta charge here.
    pub(crate) clock: SharedClock,
    /// Broker grant backing the circuit's maintained state.
    pub(crate) gov: Arc<MemoryGovernor>,
    /// Cancellation/deadline token checked at every poll.
    pub(crate) cancel: CancelToken,
    /// Total delta rows (inserted + retracted) emitted so far.
    pub(crate) deltas: AtomicU64,
    /// Non-empty packets emitted so far.
    pub(crate) packets: AtomicU64,
}

impl Subscription {
    /// Service-wide subscription id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Owning session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Admission priority of this subscription's polls.
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// The registered query spec.
    pub fn spec(&self) -> QuerySpec {
        self.circuit.lock().expect("circuit lock").spec().clone()
    }

    /// Total delta rows emitted over the subscription's lifetime.
    pub fn delta_rows(&self) -> u64 {
        self.deltas.load(Ordering::Relaxed)
    }

    /// Non-empty delta packets emitted over the subscription's lifetime.
    pub fn packets(&self) -> u64 {
        self.packets.load(Ordering::Relaxed)
    }

    /// Changelog epochs this subscription has folded in (its cursor).
    pub fn cursor(&self) -> u64 {
        self.circuit.lock().expect("circuit lock").cursor()
    }

    /// Propagation cost charged so far (initial load + all polls).
    pub fn cost(&self) -> f64 {
        self.clock.now()
    }

    /// The subscription's cancellation token (cancel it to have the next
    /// poll tear the subscription down).
    pub fn token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The current maintained view, canonically ordered.
    pub fn view(&self) -> Vec<rqp_common::Row> {
        self.circuit.lock().expect("circuit lock").snapshot()
    }
}

/// The service's subscription table: id → live subscription.
#[derive(Debug, Default)]
pub struct SubscriptionRegistry {
    subs: Mutex<BTreeMap<u64, Arc<Subscription>>>,
}

impl SubscriptionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SubscriptionRegistry::default()
    }

    fn table(&self) -> MutexGuard<'_, BTreeMap<u64, Arc<Subscription>>> {
        self.subs.lock().expect("subscription registry lock")
    }

    pub(crate) fn insert(&self, sub: Arc<Subscription>) {
        self.table().insert(sub.id, sub);
    }

    pub(crate) fn remove(&self, id: u64) -> Option<Arc<Subscription>> {
        self.table().remove(&id)
    }

    /// Look up a live subscription.
    pub fn get(&self, id: u64) -> Option<Arc<Subscription>> {
        self.table().get(&id).cloned()
    }

    /// Ids of all live subscriptions, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.table().keys().copied().collect()
    }

    /// Ids of the live subscriptions owned by `session`, ascending.
    pub fn ids_of_session(&self, session: u64) -> Vec<u64> {
        self.table().values().filter(|s| s.session == session).map(|s| s.id).collect()
    }

    /// Number of live subscriptions.
    pub fn count(&self) -> usize {
        self.table().len()
    }

    /// Total delta rows emitted across all live subscriptions.
    pub fn total_deltas(&self) -> u64 {
        self.table().values().map(|s| s.delta_rows()).sum()
    }

    /// The worst lag (changelog epochs published but not yet folded) across
    /// live subscriptions, given the changelog's current length.
    pub fn max_lag(&self, log_len: u64) -> u64 {
        self.table().values().map(|s| log_len.saturating_sub(s.cursor())).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{QueryService, ServiceConfig};
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, RqpError, Schema, Value};
    use rqp_storage::{Catalog, Table};
    use rqp_stream::canonicalize;

    fn service() -> QueryService {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..100i64 {
            t.append(vec![Value::Int(i), Value::Int(i % 7)]);
        }
        c.add_table(t);
        QueryService::new(&c, ServiceConfig { page_budget: None, ..ServiceConfig::default() })
    }

    fn spec() -> rqp_opt::QuerySpec {
        rqp_opt::QuerySpec::new()
            .table("t")
            .filter("t", col("t.v").lt(lit(3i64)))
            .project(&["t.k"])
    }

    #[test]
    fn subscription_view_tracks_appends_and_matches_rerun() {
        let svc = service();
        let id = svc.subscribe(&spec(), SubscribeOptions::default()).unwrap();
        let sub = svc.subscriptions().get(id).expect("registered");
        assert_eq!(sub.view().len(), 44, "initial load absorbed the table");
        assert!(sub.cost() > 0.0, "initial load charged the clock");

        let epoch = svc
            .append_rows(
                "t",
                vec![
                    vec![Value::Int(100), Value::Int(0)],
                    vec![Value::Int(101), Value::Int(6)],
                ],
            )
            .unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(svc.subscriptions().max_lag(svc.changelog().len()), 2);

        let (packet, lag) = svc.poll_subscription(id, 0).unwrap();
        assert_eq!(lag, 0);
        assert_eq!(packet.inserted, vec![vec![Value::Int(100)]], "v=6 filtered out");
        assert!(packet.retracted.is_empty());
        // View-consistency: the maintained view equals re-running the query.
        let rerun = canonicalize(svc.run_solo(&spec()).unwrap().rows);
        assert_eq!(sub.view(), rerun);
        assert_eq!(sub.delta_rows(), 1);

        assert!(svc.unsubscribe(id), "teardown");
        assert!(!svc.unsubscribe(id), "idempotent");
        assert_eq!(svc.subscriptions().count(), 0);
        assert_eq!(svc.reserved(), 0.0, "grant returned");
    }

    #[test]
    fn append_rejects_unknown_table_and_bad_arity() {
        let svc = service();
        assert!(svc.append_rows("missing", vec![vec![Value::Int(1)]]).is_err());
        assert!(svc.append_rows("t", vec![vec![Value::Int(1)]]).is_err(), "arity 1 != 2");
        assert_eq!(svc.changelog().len(), 0, "nothing published");
    }

    #[test]
    fn deadline_poll_tears_the_subscription_down() {
        let svc = service();
        // The initial load alone exhausts a deadline this small.
        let id = svc.subscribe(&spec(), SubscribeOptions::with_deadline(1e-6)).unwrap();
        svc.append_rows("t", vec![vec![Value::Int(100), Value::Int(0)]]).unwrap();
        assert_eq!(svc.poll_subscription(id, 0).unwrap_err(), RqpError::DeadlineExceeded);
        assert_eq!(svc.subscriptions().count(), 0, "registry empty after deadline");
        assert_eq!(svc.reserved(), 0.0, "no grant outlives the deadline");
        assert!(
            matches!(svc.poll_subscription(id, 0), Err(RqpError::Invalid(_))),
            "polling a torn-down subscription reports unknown id"
        );
    }

    #[test]
    fn cancelled_subscription_is_torn_down_at_next_poll() {
        let svc = service();
        let id = svc.subscribe(&spec(), SubscribeOptions::default()).unwrap();
        svc.subscriptions().get(id).unwrap().token().cancel();
        assert_eq!(svc.poll_subscription(id, 0).unwrap_err(), RqpError::Cancelled);
        assert_eq!(svc.subscriptions().count(), 0);
        assert_eq!(svc.reserved(), 0.0);
    }

    #[test]
    fn shutdown_unsubscribes_everything() {
        let svc = service();
        let s = svc.session(1);
        for _ in 0..3 {
            s.subscribe(&spec(), SubscribeOptions::default()).unwrap();
        }
        assert_eq!(svc.subscriptions().count(), 3);
        assert!(svc.reserved() > 0.0, "subscriptions hold grants while live");
        assert_eq!(svc.shutdown_subscriptions(), 3);
        assert_eq!(svc.subscriptions().count(), 0);
        assert_eq!(svc.reserved(), 0.0);
    }

    #[test]
    fn session_teardown_only_touches_that_sessions_subs() {
        let svc = service();
        let (s1, s2) = (svc.session(1), svc.session(1));
        let a = s1.subscribe(&spec(), SubscribeOptions::default()).unwrap();
        let b = s2.subscribe(&spec(), SubscribeOptions::default()).unwrap();
        assert_eq!(svc.unsubscribe_session(s1.id()), 1);
        assert!(svc.subscriptions().get(a).is_none());
        assert!(svc.subscriptions().get(b).is_some(), "other session untouched");
        svc.shutdown_subscriptions();
    }

    #[test]
    fn partial_polls_report_lag_and_converge() {
        let svc = service();
        let id = svc.subscribe(&spec(), SubscribeOptions::default()).unwrap();
        let rows: Vec<_> = (0..10i64).map(|i| vec![Value::Int(200 + i), Value::Int(0)]).collect();
        svc.append_rows("t", rows).unwrap();
        let (p1, lag1) = svc.poll_subscription(id, 4).unwrap();
        assert_eq!((p1.inserted.len(), lag1), (4, 6), "bounded poll leaves lag");
        let (p2, lag2) = svc.poll_subscription(id, 0).unwrap();
        assert_eq!((p2.inserted.len(), lag2), (6, 0), "unbounded poll drains");
        svc.refresh_live_gauges();
        let m = svc.metrics();
        assert_eq!(m.gauge("server.subs.count").get(), 1.0);
        assert_eq!(m.gauge("server.subs.deltas").get(), 10.0);
        assert_eq!(m.gauge("server.subs.max_lag").get(), 0.0);
        svc.unsubscribe(id);
    }
}
