//! The query service: wires admission, brokering, the plan cache, feedback
//! and telemetry around per-query execution threads.

use crate::admission::AdmissionController;
use crate::broker::MemoryBroker;
use crate::cache::PlanCache;
use crate::session::{QueryOptions, QueryOutcome, Session};
use crate::stats::ServiceStats;
use crate::subs::{SubscribeOptions, Subscription, SubscriptionRegistry};
use rqp_common::chaos::{install_quiet_panic_hook, ChaosPolicy};
use rqp_common::{CancelToken, CostClock, Result, Row, RqpError};
use rqp_exec::{ExecContext, MemoryGovernor};
use rqp_opt::{plan, PlannerConfig, QuerySpec};
use rqp_stats::{FeedbackEstimator, FeedbackRepo, StatsEstimator, TableStatsRegistry};
use rqp_storage::{Catalog, CatalogSnapshot, Changelog};
use rqp_stream::{DeltaPacket, ViewCircuit};
use rqp_telemetry::{MetricsRegistry, Tracer};
use rqp_workload::{Job, WorkloadManager};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Multiprogramming limit enforced by the admission gate.
    pub mpl: usize,
    /// Total workspace budget (rows) divided among running queries.
    pub memory_rows: f64,
    /// Default per-query workspace ask when a submission does not set one.
    pub default_reservation: f64,
    /// Plan-cache invalidation threshold on the executed max node q-error.
    pub drift_threshold: f64,
    /// Service capacity in cost units per virtual time unit, used by the
    /// deterministic schedule replay that derives the latency gauges.
    pub capacity: f64,
    /// Exponential-smoothing weight of new LEO feedback observations.
    pub feedback_smoothing: f64,
    /// Flight-recorder ring capacity (events retained for EVENTS tailing).
    pub recorder_capacity: usize,
    /// Page budget (frames) of the brokered buffer pool. `Some(n)` creates a
    /// [`BufferPool`] attached to every snapshot table and funded by the
    /// broker; `None` keeps the legacy always-resident storage path. The
    /// default reads `RQP_PAGE_BUDGET` so a whole service (including the
    /// wire server) can be squeezed below its data size from the
    /// environment.
    pub page_budget: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let page_budget = std::env::var("RQP_PAGE_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        ServiceConfig {
            mpl: 4,
            memory_rows: 40_000.0,
            default_reservation: 10_000.0,
            drift_threshold: 4.0,
            capacity: 1.0,
            feedback_smoothing: 0.5,
            recorder_capacity: 4096,
            page_budget,
        }
    }
}

/// How a query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Ran to completion and returned rows.
    Completed,
    /// Aborted by an explicit [`QueryHandle::cancel`](crate::QueryHandle::cancel).
    Cancelled,
    /// Aborted because it charged past its deadline.
    DeadlineExceeded,
    /// Failed with any other typed error.
    Failed,
}

/// Completion record of one query, kept for the schedule replay.
#[derive(Debug, Clone)]
pub struct CompletedQuery {
    /// Service-wide query id.
    pub query: u64,
    /// Owning session id.
    pub session: u64,
    /// Effective admission priority.
    pub priority: u8,
    /// Replay processor-sharing weight.
    pub weight: f64,
    /// Virtual arrival time (from [`QueryOptions::at`]).
    pub arrival: f64,
    /// Cost charged to the query's virtual clock before it ended.
    pub demand: f64,
    /// Terminal status.
    pub status: QueryStatus,
    /// For deadline aborts: cost charged *past* the deadline before the
    /// abort landed (cooperative-cancellation reaction time).
    pub cancel_latency: Option<f64>,
}

/// Aggregate latency/robustness report derived from the completion log.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Total queries recorded.
    pub queries: usize,
    /// Queries that completed.
    pub completed: usize,
    /// Queries cancelled explicitly.
    pub cancelled: usize,
    /// Queries aborted at their deadline.
    pub deadline_aborted: usize,
    /// Queries that failed otherwise.
    pub failed: usize,
    /// Median response time under the replayed schedule.
    pub latency_p50: f64,
    /// Tail (p99) response time under the replayed schedule.
    pub latency_p99: f64,
    /// Tail (p99) solo response time (demand / capacity, no contention).
    pub solo_p99: f64,
    /// `latency_p99 / solo_p99`: how much concurrency stretches the tail.
    pub tail_amplification: f64,
    /// Mean admission-queue wait (start − arrival) in the replay.
    pub admission_wait_mean: f64,
    /// Tail (p99) admission-queue wait in the replay.
    pub admission_wait_p99: f64,
    /// Worst observed cancellation reaction time (cost past the deadline).
    pub cancel_latency_max: f64,
    /// Mean response time in the replay.
    pub mean_response: f64,
    /// Replay makespan.
    pub makespan: f64,
    /// High-water mark of concurrently running queries.
    pub peak_mpl: usize,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses.
    pub plan_cache_misses: u64,
    /// Plan-cache drift invalidations.
    pub plan_cache_invalidations: u64,
}

pub(crate) struct ServiceInner {
    pub(crate) config: ServiceConfig,
    /// The serving catalog. Reads (query planning/execution, subscription
    /// registration) take the read lock; [`QueryService::append_rows`]
    /// takes the write lock, so a subscription's initial load and its
    /// changelog cursor are captured atomically with respect to appends.
    pub(crate) snapshot: RwLock<CatalogSnapshot>,
    /// Epoch-sequenced mutation feed, attached to every snapshot table.
    pub(crate) changelog: Arc<Changelog>,
    /// Live standing subscriptions.
    pub(crate) subs: SubscriptionRegistry,
    pub(crate) stats: TableStatsRegistry,
    pub(crate) admission: AdmissionController,
    pub(crate) broker: MemoryBroker,
    pub(crate) plan_cache: PlanCache,
    pub(crate) feedback: Mutex<FeedbackRepo>,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) tracer: Tracer,
    pub(crate) live: Arc<ServiceStats>,
    /// Serializes "open root span + adopt + close" so concurrent queries
    /// interleave whole span trees, never halves of them.
    trace_merge: Mutex<()>,
    next_query: AtomicU64,
    next_session: AtomicU64,
    completions: Mutex<Vec<CompletedQuery>>,
}

impl std::fmt::Debug for ServiceInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceInner")
            .field("config", &self.config)
            .field("running", &self.admission.running())
            .field("queued", &self.admission.queue_depth())
            .finish()
    }
}

impl ServiceInner {
    pub(crate) fn next_query_id(&self) -> u64 {
        self.next_query.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn record(&self, c: CompletedQuery) {
        match c.status {
            QueryStatus::Completed => self.metrics.counter("server.queries.completed").inc(),
            QueryStatus::Cancelled => self.metrics.counter("server.queries.cancelled").inc(),
            QueryStatus::DeadlineExceeded => {
                self.metrics.counter("server.queries.deadline_aborted").inc()
            }
            QueryStatus::Failed => self.metrics.counter("server.queries.failed").inc(),
        }
        self.metrics.histogram("server.query.demand").observe(c.demand);
        if let Some(l) = c.cancel_latency {
            self.metrics.histogram("server.cancel.latency").observe(l);
        }
        self.completions.lock().expect("completions lock").push(c);
    }
}

/// A multi-session query service over an immutable catalog snapshot.
///
/// Construction takes a one-time [`CatalogSnapshot`] and ANALYZE pass; after
/// that, every query thread rebuilds a thread-local [`Catalog`] from the
/// shared `Arc`s (tables are immutable, so this is cheap) and plans against
/// the shared statistics + feedback repository. See the crate docs for the
/// full admission → brokering → execution → telemetry pipeline.
#[derive(Debug)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

impl QueryService {
    pub(crate) fn from_inner(inner: Arc<ServiceInner>) -> Self {
        QueryService { inner }
    }

    /// Stand up a service over `catalog` (snapshotted and analyzed here).
    pub fn new(catalog: &Catalog, config: ServiceConfig) -> Self {
        let snapshot = catalog.snapshot();
        let stats = TableStatsRegistry::analyze_catalog(catalog, 32);
        let shared = MemoryGovernor::new(config.memory_rows);
        let live = Arc::new(ServiceStats::new(config.recorder_capacity));
        let mut broker = MemoryBroker::new(shared).with_observer(Arc::clone(&live));
        if let Some(pages) = config.page_budget {
            // One pool for the whole service: attached to the snapshot's
            // table Arcs, so every per-query thread-local catalog rebuild
            // pins through it; funded (and shrunk under concurrency) by the
            // broker, outside the workspace ledger.
            let pool = rqp_storage::BufferPool::new(pages);
            snapshot.attach_pool(&pool);
            broker = broker.with_page_pool(pool, pages);
        }
        // Every table publishes mutations into one service changelog, the
        // total order standing subscriptions replay.
        let changelog = Arc::new(Changelog::new());
        snapshot.attach_changelog(&changelog);
        let inner = ServiceInner {
            snapshot: RwLock::new(snapshot),
            changelog,
            subs: SubscriptionRegistry::new(),
            admission: AdmissionController::new(config.mpl),
            broker,
            live,
            plan_cache: PlanCache::new(config.drift_threshold),
            feedback: Mutex::new(FeedbackRepo::new(config.feedback_smoothing)),
            metrics: MetricsRegistry::new(),
            tracer: Tracer::new(),
            trace_merge: Mutex::new(()),
            next_query: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
            completions: Mutex::new(Vec::new()),
            stats,
            config,
        };
        QueryService { inner: Arc::new(inner) }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Open a session with the given default admission priority
    /// (0 = highest).
    pub fn session(&self, priority: u8) -> Session {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        Session { inner: Arc::clone(&self.inner), id, priority }
    }

    /// Execute `spec` on the calling thread, bypassing admission and the
    /// broker (full `memory_rows` budget, no contention). This is the
    /// "solo" baseline the tail-amplification gauge compares against, and
    /// it shares the plan cache, statistics and feedback repository with
    /// concurrent execution — so solo and concurrent runs of the same spec
    /// execute the same physical plan.
    pub fn run_solo(&self, spec: &QuerySpec) -> Result<QueryOutcome> {
        let query = self.inner.next_query_id();
        let gov = MemoryGovernor::new(self.inner.config.memory_rows);
        let cancel = CancelToken::new();
        let (result, _demand, _lat) = execute(&self.inner, 0, query, spec, gov, &cancel);
        result
    }

    /// Service metrics (per-query counters plus the report gauges).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The merged span forest: one `query` root per executed query.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// The live half of the observatory: the in-flight query registry and
    /// the service flight recorder.
    pub fn stats(&self) -> &ServiceStats {
        &self.inner.live
    }

    /// Refresh the `server.live.*` / `server.recorder.*` gauges from the
    /// admission gate, broker and recorder. Called by the STATS wire
    /// handler (and anyone else about to snapshot the registry) so the
    /// snapshot reflects the service *now*, not at the last completion.
    pub fn refresh_live_gauges(&self) {
        let inner = &self.inner;
        let m = &inner.metrics;
        m.gauge("server.live.running").set(inner.admission.running() as f64);
        m.gauge("server.live.queued").set(inner.admission.queue_depth() as f64);
        m.gauge("server.live.admitted").set(inner.admission.admitted() as f64);
        m.gauge("server.live.peak_mpl").set(inner.admission.peak_running() as f64);
        m.gauge("server.live.reserved").set(inner.broker.reserved());
        m.gauge("server.live.population").set(inner.broker.population() as f64);
        m.gauge("server.live.inflight").set(inner.live.live_count() as f64);
        m.gauge("server.recorder.published").set(inner.live.recorder().head() as f64);
        m.gauge("server.recorder.dropped").set(inner.live.recorder().dropped() as f64);
        if let Some(pool) = inner.broker.page_pool() {
            let s = pool.stats();
            m.gauge("server.pager.budget").set(pool.budget() as f64);
            m.gauge("server.pager.resident").set(pool.resident() as f64);
            m.gauge("server.pager.pinned").set(pool.pins() as f64);
            m.gauge("server.pager.faults").set(s.faults() as f64);
            m.gauge("server.pager.refaults").set(s.refaults as f64);
            m.gauge("server.pager.evictions").set(s.evictions as f64);
            m.gauge("server.pager.io_retries").set(s.io_retries as f64);
            m.gauge("server.pager.hit_rate").set(s.hit_rate());
        }
        m.gauge("server.subs.count").set(inner.subs.count() as f64);
        m.gauge("server.subs.deltas").set(inner.subs.total_deltas() as f64);
        m.gauge("server.subs.max_lag").set(inner.subs.max_lag(inner.changelog.len()) as f64);
    }

    /// The service's epoch-sequenced mutation feed.
    pub fn changelog(&self) -> &Arc<Changelog> {
        &self.inner.changelog
    }

    /// The live subscription registry.
    pub fn subscriptions(&self) -> &SubscriptionRegistry {
        &self.inner.subs
    }

    /// Append `rows` to `table` under the catalog write lock, publishing
    /// each row to the changelog. Returns the changelog length after the
    /// append (the epoch one past the last published record). Running
    /// queries keep their frozen table handles (snapshot isolation);
    /// queries planned after this call see the new rows, and standing
    /// subscriptions pick them up at their next poll.
    pub fn append_rows(&self, table: &str, rows: Vec<Row>) -> Result<u64> {
        let inner = &self.inner;
        let count = rows.len();
        let mut guard = inner.snapshot.write().expect("snapshot lock");
        let t = guard.table_mut(table)?;
        let arity = t.schema().fields().len();
        if let Some(bad) = rows.iter().find(|r| r.len() != arity) {
            return Err(RqpError::Invalid(format!(
                "append to '{table}': row arity {} != table arity {arity}",
                bad.len()
            )));
        }
        for row in rows {
            t.append(row);
        }
        let epoch = inner.changelog.len();
        drop(guard);
        inner.metrics.counter("server.appends.rows").add(count as u64);
        inner.live.publish(0, "table.append", &format!("{table} +{count} epoch {epoch}"));
        Ok(epoch)
    }

    /// Register a standing subscription for `spec` on behalf of `session`
    /// (0 for service-local subscribers): compile the delta circuit, fold
    /// in the current table contents (under an admission permit — the
    /// initial load is a scan and competes like any query), capture the
    /// changelog cursor atomically with that load, and fund the circuit's
    /// maintained state from the memory broker. Returns the subscription
    /// id, drawn from the query-id sequence.
    pub fn subscribe_for(
        &self,
        session: u64,
        priority: u8,
        spec: &QuerySpec,
        opts: SubscribeOptions,
    ) -> Result<u64> {
        let inner = &self.inner;
        let id = inner.next_query_id();
        let priority = opts.priority.unwrap_or(priority);
        let cancel = CancelToken::new();
        if let Some(d) = opts.deadline {
            cancel.set_deadline(d);
        }
        let permit = inner.admission.admit(priority, &cancel)?;
        let want = opts.reservation.unwrap_or(inner.config.default_reservation);
        let gov = inner.broker.admit(id, want);
        let clock = CostClock::default_clock();
        let loaded = (|| {
            let guard = inner.snapshot.read().expect("snapshot lock");
            let catalog = guard.to_catalog();
            let mut circuit = ViewCircuit::compile(spec, &catalog)?;
            circuit.load_initial(&catalog, &clock)?;
            // The read lock excludes appends, so the cursor is exactly the
            // epoch of the state the circuit just absorbed.
            circuit.set_cursor(inner.changelog.len());
            Ok(circuit)
        })();
        drop(permit);
        let circuit = match loaded {
            Ok(c) => c,
            Err(e) => {
                inner.broker.complete(id);
                return Err(e);
            }
        };
        gov.grant(circuit.view_rows() as f64);
        let cursor = circuit.cursor();
        let view_rows = circuit.view_rows();
        inner.subs.insert(Arc::new(Subscription {
            id,
            session,
            priority,
            circuit: Mutex::new(circuit),
            clock,
            gov,
            cancel,
            deltas: AtomicU64::new(0),
            packets: AtomicU64::new(0),
        }));
        inner.metrics.counter("server.subs.registered").inc();
        inner.live.publish(
            id,
            "sub.register",
            &format!("s{session} prio {priority} cursor {cursor} view {view_rows}"),
        );
        Ok(id)
    }

    /// [`subscribe_for`](Self::subscribe_for) with no owning session and
    /// default priority 1 — the in-process subscriber entry point.
    pub fn subscribe(&self, spec: &QuerySpec, opts: SubscribeOptions) -> Result<u64> {
        self.subscribe_for(0, 1, spec, opts)
    }

    /// Tear down subscription `id`: remove it from the registry, return
    /// its broker grant, and cancel its token. Returns `false` if the id
    /// is not a live subscription. After this returns the service holds
    /// nothing for the subscription — no registry entry, no reservation,
    /// no pins.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let inner = &self.inner;
        let Some(sub) = inner.subs.remove(id) else { return false };
        inner.broker.complete(id);
        sub.cancel.cancel();
        inner.metrics.counter("server.subs.unregistered").inc();
        inner.live.publish(
            id,
            "sub.unregister",
            &format!("deltas {} cost {:.0}", sub.delta_rows(), sub.cost()),
        );
        true
    }

    /// Tear down every subscription owned by `session` (wire disconnect).
    pub fn unsubscribe_session(&self, session: u64) -> usize {
        let ids = self.inner.subs.ids_of_session(session);
        ids.iter().filter(|&&id| self.unsubscribe(id)).count()
    }

    /// Tear down every live subscription (service shutdown).
    pub fn shutdown_subscriptions(&self) -> usize {
        let ids = self.inner.subs.ids();
        ids.iter().filter(|&&id| self.unsubscribe(id)).count()
    }

    /// Advance subscription `id`: drain up to `max_records` changelog
    /// records (0 = all) through its circuit and return the resulting
    /// delta packet plus the lag (records still unfolded) left behind.
    ///
    /// Propagation shares the MPL gate: the poll takes an admission permit
    /// at the subscription's priority, so delta storms and ad-hoc queries
    /// arbitrate through the same gate. Costs charge the subscription's
    /// clock (and chaos inflates them with retry charges — deltas degrade
    /// in latency, never get dropped). A cancelled or deadline-exhausted
    /// subscription is torn down here and the typed error returned.
    pub fn poll_subscription(&self, id: u64, max_records: usize) -> Result<(DeltaPacket, u64)> {
        let inner = &self.inner;
        let sub = inner
            .subs
            .get(id)
            .ok_or_else(|| RqpError::Invalid(format!("unknown subscription {id}")))?;
        let teardown = |e: RqpError| {
            self.unsubscribe(id);
            Err(e)
        };
        if let Some(e) = sub.cancel.poll(sub.clock.now()) {
            return teardown(e);
        }
        let permit = match inner.admission.admit(sub.priority, &sub.cancel) {
            Ok(p) => p,
            Err(e) => return teardown(e),
        };
        let mut circuit = sub.circuit.lock().expect("circuit lock");
        let (recs, _) = inner.changelog.since(circuit.cursor());
        let take = if max_records == 0 { recs.len() } else { recs.len().min(max_records) };
        let chaos = ChaosPolicy::from_env();
        if chaos.is_enabled() {
            // Chaos never drops a delta; transient faults surface as retry
            // charges that inflate this subscription's propagation latency.
            for rec in &recs[..take] {
                let mut attempt = 0;
                while attempt < chaos.scan_max_retries()
                    && chaos.scan_fault(&rec.table, rec.epoch, attempt)
                {
                    sub.clock.charge_random_pages(1.0);
                    attempt += 1;
                }
            }
        }
        let packet = circuit.apply(&recs[..take], &sub.clock);
        // Renegotiate the broker grant to the maintained state's new size.
        let held = sub.gov.outstanding();
        let want = circuit.view_rows() as f64;
        if want > held {
            sub.gov.grant(want - held);
        } else {
            sub.gov.release(held - want);
        }
        let lag = inner.changelog.len().saturating_sub(circuit.cursor());
        drop(circuit);
        drop(permit);
        if !packet.is_empty() {
            sub.deltas.fetch_add(packet.delta_rows() as u64, Ordering::Relaxed);
            sub.packets.fetch_add(1, Ordering::Relaxed);
            inner.metrics.counter("server.subs.delta_rows").add(packet.delta_rows() as u64);
            inner.live.publish(
                id,
                "sub.delta",
                &format!(
                    "epoch {} +{} -{} lag {lag}",
                    packet.epoch,
                    packet.inserted.len(),
                    packet.retracted.len()
                ),
            );
        }
        if lag > 0 {
            inner.live.publish(id, "sub.lag", &format!("{lag} records behind"));
        }
        if let Some(e) = sub.cancel.poll(sub.clock.now()) {
            // The poll itself charged past the deadline: tear down now so
            // no grant outlives the budget.
            return teardown(e);
        }
        Ok((packet, lag))
    }

    /// The brokered buffer pool, when [`ServiceConfig::page_budget`] is set.
    pub fn pager(&self) -> Option<&Arc<rqp_storage::BufferPool>> {
        self.inner.broker.page_pool()
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.inner.plan_cache
    }

    /// The cross-query memory broker.
    pub fn broker(&self) -> &MemoryBroker {
        &self.inner.broker
    }

    /// Workspace rows currently reserved across all running queries.
    pub fn reserved(&self) -> f64 {
        self.inner.broker.reserved()
    }

    /// High-water mark of concurrently admitted queries.
    pub fn peak_concurrency(&self) -> usize {
        self.inner.admission.peak_running()
    }

    /// Queries waiting at the admission gate right now.
    pub fn queue_depth(&self) -> usize {
        self.inner.admission.queue_depth()
    }

    /// Pause the admission gate (see [`AdmissionController::pause`]).
    pub fn pause_admission(&self) {
        self.inner.admission.pause();
    }

    /// Resume the admission gate.
    pub fn resume_admission(&self) {
        self.inner.admission.resume();
    }

    /// Completion records in completion order.
    pub fn completions(&self) -> Vec<CompletedQuery> {
        self.inner.completions.lock().expect("completions lock").clone()
    }

    /// Query ids in the order they completed.
    pub fn completion_order(&self) -> Vec<u64> {
        self.completions().iter().map(|c| c.query).collect()
    }

    /// Derive the latency/robustness report from the completion log.
    ///
    /// Real threads prove the *behavioral* properties (MPL gate, result
    /// identity, cancellation); wall-clock latencies on them are
    /// nondeterministic. So the gauges replay the recorded `(arrival,
    /// demand, priority, weight)` tuples through the
    /// [`WorkloadManager`](rqp_workload::WorkloadManager) — the simulator
    /// whose policy the admission gate mirrors — in virtual time. Same
    /// completion log → bit-identical report, which is what lets the
    /// scoreboard diff-gate these numbers.
    pub fn schedule_report(&self) -> ServiceReport {
        let inner = &self.inner;
        let completions = inner.completions.lock().expect("completions lock").clone();
        let mut report = ServiceReport {
            queries: completions.len(),
            peak_mpl: inner.admission.peak_running(),
            plan_cache_hits: inner.plan_cache.hits(),
            plan_cache_misses: inner.plan_cache.misses(),
            plan_cache_invalidations: inner.plan_cache.invalidations(),
            tail_amplification: 1.0,
            ..ServiceReport::default()
        };
        for c in &completions {
            match c.status {
                QueryStatus::Completed => report.completed += 1,
                QueryStatus::Cancelled => report.cancelled += 1,
                QueryStatus::DeadlineExceeded => report.deadline_aborted += 1,
                QueryStatus::Failed => report.failed += 1,
            }
            if let Some(l) = c.cancel_latency {
                report.cancel_latency_max = report.cancel_latency_max.max(l);
            }
        }
        // Cancelled-while-queued queries have zero demand and never held a
        // slot; everything that charged cost contends in the replay.
        let jobs: Vec<Job> = completions
            .iter()
            .filter(|c| c.demand > 0.0)
            .map(|c| Job {
                id: c.query as usize,
                arrival: c.arrival,
                demand: c.demand,
                priority: c.priority,
                weight: c.weight.max(1e-9),
            })
            .collect();
        if !jobs.is_empty() {
            let capacity = inner.config.capacity.max(1e-9);
            let sim = WorkloadManager::new(inner.admission.mpl(), capacity).simulate(&jobs);
            let arrivals: HashMap<usize, f64> = jobs.iter().map(|j| (j.id, j.arrival)).collect();
            let mut responses: Vec<f64> = sim.jobs.iter().map(|j| j.response).collect();
            let mut waits: Vec<f64> =
                sim.jobs.iter().map(|j| (j.start - arrivals[&j.id]).max(0.0)).collect();
            let mut solos: Vec<f64> = jobs.iter().map(|j| j.demand / capacity).collect();
            responses.sort_by(|a, b| a.total_cmp(b));
            waits.sort_by(|a, b| a.total_cmp(b));
            solos.sort_by(|a, b| a.total_cmp(b));
            report.latency_p50 = percentile(&responses, 50.0);
            report.latency_p99 = percentile(&responses, 99.0);
            report.solo_p99 = percentile(&solos, 99.0);
            if report.solo_p99 > 0.0 {
                report.tail_amplification = report.latency_p99 / report.solo_p99;
            }
            report.admission_wait_mean = waits.iter().sum::<f64>() / waits.len() as f64;
            report.admission_wait_p99 = percentile(&waits, 99.0);
            report.mean_response = sim.mean_response();
            report.makespan = sim.makespan;
        }
        let m = &inner.metrics;
        m.gauge("server.latency.p50").set(report.latency_p50);
        m.gauge("server.latency.p99").set(report.latency_p99);
        m.gauge("server.tail_amplification").set(report.tail_amplification);
        m.gauge("server.admission_wait.mean").set(report.admission_wait_mean);
        m.gauge("server.admission_wait.p99").set(report.admission_wait_p99);
        m.gauge("server.cancel.latency_max").set(report.cancel_latency_max);
        m.gauge("server.peak_mpl").set(report.peak_mpl as f64);
        m.gauge("server.plan_cache.hit_count").set(report.plan_cache_hits as f64);
        m.gauge("server.plan_cache.miss_count").set(report.plan_cache_misses as f64);
        m.gauge("server.plan_cache.invalidation_count")
            .set(report.plan_cache_invalidations as f64);
        report
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn status_of(e: &RqpError) -> QueryStatus {
    match e {
        RqpError::Cancelled => QueryStatus::Cancelled,
        RqpError::DeadlineExceeded => QueryStatus::DeadlineExceeded,
        _ => QueryStatus::Failed,
    }
}

fn status_label(s: QueryStatus) -> &'static str {
    match s {
        QueryStatus::Completed => "completed",
        QueryStatus::Cancelled => "cancelled",
        QueryStatus::DeadlineExceeded => "deadline_exceeded",
        QueryStatus::Failed => "failed",
    }
}

/// Body of one query thread: admission → brokering → execution → record.
pub(crate) fn run_query(
    svc: Arc<ServiceInner>,
    session: u64,
    query: u64,
    priority: u8,
    spec: QuerySpec,
    opts: QueryOptions,
    cancel: CancelToken,
) -> Result<QueryOutcome> {
    install_quiet_panic_hook();
    svc.live.register(query, session, priority, &cancel);
    svc.live.publish(
        query,
        "admission.enqueue",
        &format!("prio {priority} depth {}", svc.admission.queue_depth()),
    );
    let permit = match svc.admission.admit(priority, &cancel) {
        Ok(p) => p,
        Err(e) => {
            // Cancelled while queued: never held a slot or a reservation.
            svc.live.publish(query, "admission.cancel", &format!("{e:?}"));
            let status = status_of(&e);
            svc.live.deregister(query, status_label(status));
            svc.record(CompletedQuery {
                query,
                session,
                priority,
                weight: opts.weight,
                arrival: opts.arrival,
                demand: 0.0,
                status,
                cancel_latency: None,
            });
            return Err(e);
        }
    };
    svc.live.publish(
        query,
        "admission.admit",
        &format!("running {} of mpl {}", svc.admission.running(), svc.admission.mpl()),
    );
    let want = opts.reservation.unwrap_or(svc.config.default_reservation);
    let gov = svc.broker.admit(query, want);
    let (result, demand, cancel_latency) = execute(&svc, session, query, &spec, gov, &cancel);
    svc.broker.complete(query);
    let status = match &result {
        Ok(_) => QueryStatus::Completed,
        Err(e) => status_of(e),
    };
    svc.live.deregister(query, status_label(status));
    // Record while still holding the MPL slot: the completion log must
    // reflect admission order (the trace-agreement tests rely on it), so
    // the slot may not pass to the next waiter before this entry lands.
    svc.record(CompletedQuery {
        query,
        session,
        priority,
        weight: opts.weight,
        arrival: opts.arrival,
        demand,
        status,
        cancel_latency,
    });
    drop(permit);
    result
}

/// Plan (or fetch from the cache) and execute one query under `gov`.
/// Returns the outcome, the demand charged, and — for deadline aborts —
/// the cancellation reaction time.
fn execute(
    svc: &ServiceInner,
    session: u64,
    query: u64,
    spec: &QuerySpec,
    gov: Arc<MemoryGovernor>,
    cancel: &CancelToken,
) -> (Result<QueryOutcome>, f64, Option<f64>) {
    let mut ctx = ExecContext::new(CostClock::default_clock(), 0.0)
        .with_chaos(ChaosPolicy::from_env())
        .with_cancel(cancel.clone());
    ctx.memory = gov;
    // Flip the live registry to Running with handles to this query's own
    // instruments — INSPECT renders the span tree from them mid-flight.
    // No-op for solo runs, which are never registered.
    svc.live.mark_running(
        query,
        Arc::clone(&ctx.clock),
        Arc::clone(&ctx.memory),
        ctx.tracer.clone(),
    );
    let catalog = svc.snapshot.read().expect("snapshot lock").to_catalog();
    let key = spec.cache_key();
    let (phys, plan_cached) = match svc.plan_cache.lookup(&key) {
        Some(p) => (p, true),
        None => {
            let planned = {
                let repo = svc.feedback.lock().expect("feedback lock").clone();
                let est = FeedbackEstimator::new(
                    Box::new(StatsEstimator::new(Rc::new(svc.stats.clone()))),
                    Rc::new(RefCell::new(repo)),
                );
                let cfg = PlannerConfig {
                    memory_rows: svc.config.default_reservation,
                    ..PlannerConfig::default()
                };
                plan(spec, &catalog, &est, cfg)
            };
            match planned {
                Ok(p) => {
                    svc.plan_cache.insert(key.clone(), p.clone());
                    (p, false)
                }
                Err(e) => return (Err(e), 0.0, None),
            }
        }
    };
    let fingerprint = phys.fingerprint();
    type RunPayload = (Vec<rqp_common::Row>, f64, Vec<(String, f64, f64)>);
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<RunPayload> {
        let mut built = phys.build(&catalog, &ctx, None)?;
        let rows = built.run();
        let mut max_q = 1.0_f64;
        let mut observations = Vec::new();
        for m in &built.meters {
            let actual = m.actual_rows() as f64;
            let q = (m.est_rows.max(1.0) / actual.max(1.0))
                .max(actual.max(1.0) / m.est_rows.max(1.0));
            max_q = max_q.max(q);
            if let Some(sig) = &m.feedback_signature {
                observations.push((sig.clone(), m.est_rows, actual));
            }
        }
        Ok((rows, max_q, observations))
    }));
    let demand = ctx.clock.now();
    // Republish span-carried adaptive decisions (chaos injections, governor
    // pressure, POP/LEO corrections) to the flight recorder, keeping their
    // cost-clock positions — this is how per-operator events reach EVENTS
    // tailers without the recorder being threaded through the engine.
    for span in ctx.tracer.spans() {
        for ev in span.events() {
            svc.live.publish_at(ev.at, query, &ev.kind, &ev.detail);
        }
    }
    {
        // Merge the query's spans into the service forest under one root,
        // whatever the outcome — aborted queries leave their partial tree.
        let _merge = svc.trace_merge.lock().expect("trace merge lock");
        let qspan = svc.tracer.open("query", &ctx.clock);
        qspan.set_detail(&format!("q{query} s{session} {fingerprint}"));
        svc.tracer.adopt(&ctx.tracer, Some(qspan.id()));
        qspan.close(&ctx.clock);
    }
    match run {
        Ok(Ok((rows, max_q_error, observations))) => {
            {
                let mut repo = svc.feedback.lock().expect("feedback lock");
                for (sig, est, actual) in &observations {
                    repo.observe(sig, *est, *actual);
                }
            }
            svc.plan_cache.note_execution(&key, max_q_error);
            let outcome = QueryOutcome {
                query,
                session,
                rows,
                cost: demand,
                fingerprint,
                plan_cached,
                max_q_error,
            };
            (Ok(outcome), demand, None)
        }
        Ok(Err(e)) => (Err(e), demand, None),
        Err(payload) => match payload.downcast::<RqpError>() {
            Ok(e) => {
                let e = *e;
                let lat = (e == RqpError::DeadlineExceeded)
                    .then(|| (demand - cancel.deadline()).max(0.0));
                (Err(e), demand, lat)
            }
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}
