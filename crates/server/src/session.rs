//! Sessions and query handles: the client-facing API of the service.

use crate::service::{run_query, QueryService, ServiceInner};
use crate::subs::SubscribeOptions;
use rqp_common::{CancelToken, Result, Row};
use rqp_opt::QuerySpec;
use std::sync::Arc;

/// Per-query submission options.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Admission priority (0 = highest); defaults to the session's.
    pub priority: Option<u8>,
    /// Deadline in cost units on the query's own virtual clock. A query
    /// that charges past it aborts with
    /// [`RqpError::DeadlineExceeded`](rqp_common::RqpError::DeadlineExceeded).
    pub deadline: Option<f64>,
    /// Workspace reservation ask in rows; defaults to the service's
    /// `default_reservation`. The broker caps it at the fair share.
    pub reservation: Option<f64>,
    /// Virtual arrival time used by the deterministic schedule replay
    /// (latency gauges), not by the real gate — real admission is
    /// submission-ordered.
    pub arrival: f64,
    /// Processor-sharing weight in the schedule replay.
    pub weight: f64,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions { priority: None, deadline: None, reservation: None, arrival: 0.0, weight: 1.0 }
    }
}

impl QueryOptions {
    /// Options with a deadline (cost units).
    pub fn with_deadline(deadline: f64) -> Self {
        QueryOptions { deadline: Some(deadline), ..Default::default() }
    }

    /// Set the virtual arrival time (for the schedule replay).
    pub fn at(mut self, arrival: f64) -> Self {
        self.arrival = arrival;
        self
    }

    /// Set the replay processor-sharing weight.
    pub fn weighted(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Override the session priority for this query.
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Set the workspace reservation ask (rows).
    pub fn reserve(mut self, rows: f64) -> Self {
        self.reservation = Some(rows);
        self
    }
}

/// What a finished query returns.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Service-wide query id.
    pub query: u64,
    /// Owning session id (0 for solo runs).
    pub session: u64,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Total cost charged to the query's virtual clock (its "demand").
    pub cost: f64,
    /// Structural fingerprint of the executed plan.
    pub fingerprint: String,
    /// Whether the plan came from the plan cache.
    pub plan_cached: bool,
    /// Maximum per-node q-error observed during execution (LEO drift).
    pub max_q_error: f64,
}

/// A client session: a priority class plus a factory for query handles.
///
/// Sessions are cheap and `Send` — clone the service handle into as many
/// threads as needed. Each [`submit`](Session::submit) spawns a dedicated
/// query thread that goes through admission, brokering, planning (or the
/// plan cache) and execution; the returned [`QueryHandle`] joins or cancels
/// it.
#[derive(Debug)]
pub struct Session {
    pub(crate) inner: Arc<ServiceInner>,
    pub(crate) id: u64,
    pub(crate) priority: u8,
}

impl Session {
    /// This session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This session's default admission priority.
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// Submit a query for concurrent execution.
    pub fn submit(&self, spec: QuerySpec, opts: QueryOptions) -> QueryHandle {
        let inner = Arc::clone(&self.inner);
        let query = inner.next_query_id();
        let cancel = CancelToken::new();
        if let Some(d) = opts.deadline {
            cancel.set_deadline(d);
        }
        let (session, priority) = (self.id, opts.priority.unwrap_or(self.priority));
        let token = cancel.clone();
        let thread = std::thread::Builder::new()
            .name(format!("rqp-query-{query}"))
            .spawn(move || run_query(inner, session, query, priority, spec, opts, token))
            .expect("spawn query thread");
        QueryHandle { query, cancel, thread }
    }

    /// Register a standing subscription owned by this session, at the
    /// session's priority unless the options override it. Tearing down the
    /// session's subscriptions on disconnect is the owner's job
    /// ([`QueryService::unsubscribe_session`]
    /// (crate::QueryService::unsubscribe_session)).
    pub fn subscribe(&self, spec: &QuerySpec, opts: SubscribeOptions) -> Result<u64> {
        QueryService::from_inner(Arc::clone(&self.inner))
            .subscribe_for(self.id, self.priority, spec, opts)
    }
}

/// Handle to one in-flight query: cancel it, or join for its outcome.
#[derive(Debug)]
pub struct QueryHandle {
    query: u64,
    cancel: CancelToken,
    thread: std::thread::JoinHandle<Result<QueryOutcome>>,
}

impl QueryHandle {
    /// The service-wide query id.
    pub fn query(&self) -> u64 {
        self.query
    }

    /// Request cooperative cancellation: the query aborts with
    /// [`RqpError::Cancelled`](rqp_common::RqpError::Cancelled) at its next
    /// checkpoint (or leaves the admission queue if still waiting).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the query's cancellation token.
    pub fn token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Wait for the query to finish. Typed failures (including
    /// cancellation) come back as `Err`; a genuine panic on the query
    /// thread is propagated.
    pub fn join(self) -> Result<QueryOutcome> {
        match self.thread.join() {
            Ok(result) => result,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}
