//! Fingerprint-keyed plan cache with feedback-drift invalidation.
//!
//! Re-planning every submission of a repeated query wastes optimizer time —
//! but *never* re-planning is the classic plan-cache robustness hazard: the
//! cached plan was chosen under estimates that execution feedback (LEO) may
//! since have refuted. The cache splits the difference:
//!
//! * entries are keyed by [`QuerySpec::cache_key`](rqp_opt::QuerySpec::cache_key)
//!   (the deterministic query-shape fingerprint) and hold the planned
//!   [`PhysicalPlan`] — plain data, cheap to clone onto a query thread;
//! * after every execution the service reports the plan's observed maximum
//!   node q-error; when it exceeds the drift threshold the entry is
//!   **invalidated**, so the next submission re-plans under the by-then
//!   feedback-corrected estimator instead of riding the stale plan.
//!
//! That is the LEO loop at service granularity: plan → execute → observe →
//! drift past θ → replan.

use rqp_opt::PhysicalPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shared plan cache (module docs).
#[derive(Debug)]
pub struct PlanCache {
    drift_threshold: f64,
    entries: Mutex<HashMap<String, PhysicalPlan>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    /// A cache that invalidates entries whose executed max node q-error
    /// exceeds `drift_threshold` (clamped to ≥ 1, the perfect-estimate
    /// q-error).
    pub fn new(drift_threshold: f64) -> Self {
        PlanCache {
            drift_threshold: drift_threshold.max(1.0),
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The q-error ceiling above which entries are invalidated.
    pub fn drift_threshold(&self) -> f64 {
        self.drift_threshold
    }

    /// Cached plan for `key`, counting the hit/miss.
    pub fn lookup(&self, key: &str) -> Option<PhysicalPlan> {
        let cached = self.entries.lock().expect("plan cache lock").get(key).cloned();
        match &cached {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        cached
    }

    /// Insert (or refresh) the plan for `key`.
    pub fn insert(&self, key: String, plan: PhysicalPlan) {
        self.entries.lock().expect("plan cache lock").insert(key, plan);
    }

    /// Report an execution of `key`'s plan with the observed maximum node
    /// q-error. Past the drift threshold the entry is dropped; returns
    /// whether an invalidation happened.
    pub fn note_execution(&self, key: &str, max_q_error: f64) -> bool {
        if max_q_error.is_finite() && max_q_error <= self.drift_threshold {
            return false;
        }
        let removed = self.entries.lock().expect("plan cache lock").remove(key).is_some();
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drift invalidations so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache lock").len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Schema, Value};
    use rqp_opt::{plan, PlannerConfig, QuerySpec};
    use rqp_stats::{StatsEstimator, TableStatsRegistry};
    use rqp_storage::{Catalog, Table};
    use std::rc::Rc;

    fn fixture() -> (Catalog, QuerySpec, PhysicalPlan) {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..200 {
            t.append(vec![Value::Int(i), Value::Int(i % 7)]);
        }
        c.add_table(t);
        let reg = Rc::new(TableStatsRegistry::analyze_catalog(&c, 16));
        let est = StatsEstimator::new(reg);
        let spec = QuerySpec::new().table("t").filter("t", col("t.k").lt(lit(50)));
        let p = plan(&spec, &c, &est, PlannerConfig::default()).unwrap();
        (c, spec, p)
    }

    #[test]
    fn hit_miss_and_drift_invalidation() {
        let (_c, spec, p) = fixture();
        let cache = PlanCache::new(4.0);
        let key = spec.cache_key();
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.misses(), 1);

        cache.insert(key.clone(), p);
        assert!(cache.lookup(&key).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);

        // Mild drift keeps the entry; past the threshold it is dropped.
        assert!(!cache.note_execution(&key, 2.0));
        assert_eq!(cache.len(), 1);
        assert!(cache.note_execution(&key, 8.0));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidations(), 1);
        assert!(cache.lookup(&key).is_none(), "invalidated entry misses");
        // Re-invalidation of an absent key is a no-op.
        assert!(!cache.note_execution(&key, 100.0));
        assert_eq!(cache.invalidations(), 1);
    }

    #[test]
    fn nan_q_error_invalidates() {
        let (_c, spec, p) = fixture();
        let cache = PlanCache::new(4.0);
        let key = spec.cache_key();
        cache.insert(key.clone(), p);
        // A NaN q-error means the observation itself is broken — treat it
        // as drift rather than silently keeping the plan.
        assert!(cache.note_execution(&key, f64::NAN));
    }
}
