//! Cross-query workspace brokering against a shared memory budget.
//!
//! Every admitted query executes under its **own**
//! [`MemoryGovernor`](rqp_exec::MemoryGovernor) — operators inside a query
//! already know how to degrade gracefully when *their* governor shrinks
//! (the PR-4 pressure-epoch / [`WorkspaceLease::renegotiate`]
//! (rqp_exec::WorkspaceLease::renegotiate) machinery). The broker's job is
//! the layer above: it divides the *service's* budget among the running
//! queries and moves each per-query budget as the population changes.
//!
//! * **Admission shrinks grants**: when a new query is admitted, every
//!   running query's fair share drops; the broker calls `set_budget` on
//!   each per-query governor, which bumps its pressure epoch if the query
//!   holds more than the new share — and its sorts/joins shed the overflow
//!   (as spill) at their next output row. No revocation, no blocking:
//!   exactly the "grow & shrink memory" response the FMT test rewards.
//! * **Completion returns them**: when a query finishes, the survivors'
//!   shares grow again (growth needs no renegotiation).
//!
//! The service-wide governor is used as the reservation *ledger*: each
//! query's current share is `grant`ed from it at admission and `release`d at
//! completion, so `outstanding()` on the shared governor always equals the
//! sum of the running queries' budgets — and drops to zero when the service
//! is idle, which the deadline-abort acceptance test checks.

use crate::stats::ServiceStats;
use rqp_exec::MemoryGovernor;
use rqp_storage::BufferPool;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Entry {
    query: u64,
    gov: Arc<MemoryGovernor>,
    /// Current share, as recorded in the shared ledger.
    share: f64,
    /// What the query asked for (its share never exceeds this).
    want: f64,
}

/// Divides a shared workspace budget among running queries (module docs).
#[derive(Debug)]
pub struct MemoryBroker {
    shared: Arc<MemoryGovernor>,
    /// No query's budget falls below this (one page): the same progress
    /// floor the governor's own grants enforce.
    floor: f64,
    running: Mutex<Vec<Entry>>,
    /// Flight-recorder home for `broker.*` events; brokering works the same
    /// with or without one (tests construct bare brokers).
    observer: Option<Arc<ServiceStats>>,
    /// Page pool funded alongside the workspace shares: `(pool, full page
    /// budget)`. The pool's frames are accounted *outside* the workspace
    /// ledger (an idle service still reports `reserved() == 0`); rebalances
    /// shrink the pool as the query population grows, evicting cold pages
    /// and bumping the pool's budget epoch like a workspace-lease shrink.
    pool: Option<(Arc<BufferPool>, usize)>,
}

impl MemoryBroker {
    /// A broker dividing `shared`'s base budget among admitted queries.
    pub fn new(shared: Arc<MemoryGovernor>) -> Self {
        MemoryBroker {
            shared,
            floor: 100.0,
            running: Mutex::new(Vec::new()),
            observer: None,
            pool: None,
        }
    }

    /// Publish `broker.grant` / `broker.shrink` / `broker.epoch` events to
    /// `observer`'s flight recorder on every rebalance.
    pub fn with_observer(mut self, observer: Arc<ServiceStats>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Fund `pool` from this broker: an idle service leaves it at its full
    /// `pages` budget; each admitted query halves the concurrent working
    /// sets the pool must serve, so its budget becomes
    /// `max(pages / population, pages / 4, 1)` and shrinks evict cold pages
    /// through the pool's own clock sweep (struct docs).
    pub fn with_page_pool(mut self, pool: Arc<BufferPool>, pages: usize) -> Self {
        pool.set_budget(pages.max(1));
        self.pool = Some((pool, pages.max(1)));
        self
    }

    /// The brokered page pool, if one is funded.
    pub fn page_pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref().map(|(p, _)| p)
    }

    fn publish(&self, query: u64, kind: &str, detail: &str) {
        if let Some(obs) = &self.observer {
            obs.publish(query, kind, detail);
        }
    }

    /// The shared ledger governor.
    pub fn shared(&self) -> &Arc<MemoryGovernor> {
        &self.shared
    }

    /// Admit `query` with a workspace ask of `want` rows. Returns the
    /// query's private governor, budgeted at `min(want, fair share)`;
    /// every other running query is rebalanced downward (shedding via its
    /// own pressure epoch) to make room.
    pub fn admit(&self, query: u64, want: f64) -> Arc<MemoryGovernor> {
        let mut running = self.running.lock().expect("broker lock");
        let gov = MemoryGovernor::new(0.0);
        running.push(Entry { query, gov: Arc::clone(&gov), share: 0.0, want: want.max(0.0) });
        self.rebalance(&mut running);
        gov
    }

    /// Return `query`'s reservation to the pool and grow the survivors.
    pub fn complete(&self, query: u64) {
        let mut running = self.running.lock().expect("broker lock");
        if let Some(pos) = running.iter().position(|e| e.query == query) {
            let entry = running.remove(pos);
            self.shared.release(entry.share);
        }
        self.rebalance(&mut running);
    }

    /// Sum of the running queries' current shares (ledger `outstanding`).
    pub fn reserved(&self) -> f64 {
        self.shared.outstanding()
    }

    /// Number of queries currently holding reservations.
    pub fn population(&self) -> usize {
        self.running.lock().expect("broker lock").len()
    }

    /// Recompute every entry's share as `min(want, budget/n)` (floored at
    /// one page) and push the change into its governor and the ledger.
    fn rebalance(&self, running: &mut [Entry]) {
        if let Some((pool, full)) = &self.pool {
            // Idle (or single-query) service: the pool keeps its full frame
            // budget. Concurrency shrinks it — floored at a quarter of full
            // so the pager keeps making progress under any MPL.
            let n = running.len().max(1);
            let target = (*full / n).max(*full / 4).max(1);
            if target != pool.budget() {
                let epoch_before = pool.budget_epoch();
                let overcommitted = pool.set_budget(target);
                if pool.budget_epoch() != epoch_before {
                    self.publish(
                        0,
                        "broker.pool_shrink",
                        &format!(
                            "page budget -> {target} (epoch {}{})",
                            pool.budget_epoch(),
                            if overcommitted { ", pins overcommit" } else { "" }
                        ),
                    );
                } else {
                    self.publish(0, "broker.pool_grow", &format!("page budget -> {target}"));
                }
            }
        }
        if running.is_empty() {
            return;
        }
        let fair = self.shared.base_budget() / running.len() as f64;
        for e in running.iter_mut() {
            // Floored at one page even when oversubscribed (fair < floor):
            // the per-query governor would hand out the progress floor
            // anyway, so the reservation covers it honestly and the shared
            // ledger reports the oversubscription as overcommit.
            let target = e.want.min(fair).max(self.floor);
            if (target - e.share).abs() < 1e-9 {
                continue;
            }
            if target > e.share {
                self.shared.grant(target - e.share);
                self.publish(e.query, "broker.grant", &format!("{:.0} -> {target:.0}", e.share));
            } else {
                self.shared.release(e.share - target);
                self.publish(e.query, "broker.shrink", &format!("{:.0} -> {target:.0}", e.share));
            }
            e.share = target;
            // A shrink below what the query currently holds bumps its
            // pressure epoch; its leases shed at the next renegotiation.
            if e.gov.set_budget(target) {
                self.publish(
                    e.query,
                    "broker.epoch",
                    &format!("epoch {} overcommitted", e.gov.pressure_epoch()),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_shrink_on_admission_and_grow_on_completion() {
        let shared = MemoryGovernor::new(10_000.0);
        let broker = MemoryBroker::new(Arc::clone(&shared));
        let g1 = broker.admit(1, 50_000.0);
        assert_eq!(g1.budget(), 10_000.0, "alone, the query gets everything");
        assert_eq!(broker.reserved(), 10_000.0);

        let g2 = broker.admit(2, 50_000.0);
        assert_eq!(g1.budget(), 5_000.0, "admission shrank the running query");
        assert_eq!(g2.budget(), 5_000.0);
        assert_eq!(broker.reserved(), 10_000.0, "ledger conserves the budget");

        broker.complete(2);
        assert_eq!(g1.budget(), 10_000.0, "completion returned the share");
        assert_eq!(broker.reserved(), 10_000.0);
        broker.complete(1);
        assert_eq!(broker.reserved(), 0.0, "idle service holds nothing");
        assert_eq!(broker.population(), 0);
    }

    #[test]
    fn shrink_bumps_the_running_governor_pressure_epoch() {
        let shared = MemoryGovernor::new(10_000.0);
        let broker = MemoryBroker::new(Arc::clone(&shared));
        let g1 = broker.admit(1, 50_000.0);
        // The query materializes a big sort under its full share…
        let held = g1.grant(9_000.0);
        assert_eq!(held, 9_000.0);
        let epoch_before = g1.pressure_epoch();
        // …then a second query is admitted: the share halves, the governor
        // is overcommitted, and the epoch moves so leases renegotiate.
        let _g2 = broker.admit(2, 50_000.0);
        assert_eq!(g1.budget(), 5_000.0);
        assert!(g1.overcommitted());
        assert!(g1.pressure_epoch() > epoch_before);
    }

    #[test]
    fn page_pool_shrinks_with_population_and_stays_off_the_ledger() {
        let shared = MemoryGovernor::new(10_000.0);
        let broker =
            MemoryBroker::new(Arc::clone(&shared)).with_page_pool(BufferPool::new(40), 40);
        let pool = Arc::clone(broker.page_pool().expect("funded"));
        assert_eq!(pool.budget(), 40, "idle service funds the full page budget");
        assert_eq!(broker.reserved(), 0.0, "pool frames are not workspace reservations");

        broker.admit(1, 1_000.0);
        assert_eq!(pool.budget(), 40, "a lone query keeps the full pool");
        let epoch = pool.budget_epoch();
        broker.admit(2, 1_000.0);
        assert_eq!(pool.budget(), 20, "two queries halve the pool");
        assert!(pool.budget_epoch() > epoch, "shrink bumps the budget epoch");
        for q in 3..10 {
            broker.admit(q, 1_000.0);
        }
        assert_eq!(pool.budget(), 10, "floor: a quarter of the full budget");

        for q in 1..10 {
            broker.complete(q);
        }
        assert_eq!(pool.budget(), 40, "idle again: the pool grows back");
        assert_eq!(broker.reserved(), 0.0);
    }

    #[test]
    fn small_asks_leave_room_and_floors_apply() {
        let shared = MemoryGovernor::new(10_000.0);
        let broker = MemoryBroker::new(Arc::clone(&shared));
        let g1 = broker.admit(1, 300.0);
        assert_eq!(g1.budget(), 300.0, "ask below fair share is honored");
        let g2 = broker.admit(2, 50_000.0);
        assert_eq!(g2.budget(), 5_000.0);
        // Heavily oversubscribed: everyone still gets the one-page floor.
        for q in 3..200 {
            broker.admit(q, 50_000.0);
        }
        assert_eq!(g2.budget(), 100.0, "floor keeps queries progressing");
    }
}
