//! Standalone TCP query server over a generated TPC-H-like database.
//!
//! ```sh
//! rqp-netserver [--addr 127.0.0.1:0] [--rows 4000] [--seed 42]
//!               [--mpl 4] [--memory 20000] [--port-file PATH]
//! ```
//!
//! Prints `listening on <addr>` once ready (and writes the bare port number
//! to `--port-file`, if given, for scripted callers racing the ephemeral
//! port), then serves until killed. On SIGTERM/SIGKILL the OS reclaims the
//! sockets; in-flight queries die with their process — crash-consistency at
//! the *service* level is the admission/broker teardown exercised by the
//! in-process tests, not a wire concern.

use rqp_net::WireServer;
use rqp_server::{QueryService, ServiceConfig};
use rqp_workload::{tpch::TpchParams, TpchDb};
use std::sync::Arc;

struct Args {
    addr: String,
    rows: usize,
    seed: u64,
    mpl: usize,
    memory: f64,
    port_file: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:0".into(),
        rows: 4_000,
        seed: 42,
        mpl: 4,
        memory: 20_000.0,
        port_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = val("--addr"),
            "--rows" => args.rows = val("--rows").parse().expect("--rows"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed"),
            "--mpl" => args.mpl = val("--mpl").parse().expect("--mpl"),
            "--memory" => args.memory = val("--memory").parse().expect("--memory"),
            "--port-file" => args.port_file = Some(val("--port-file")),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let db = TpchDb::build(
        TpchParams { lineitem_rows: args.rows, ..Default::default() },
        args.seed,
    );
    let svc = Arc::new(QueryService::new(
        &db.catalog,
        ServiceConfig {
            mpl: args.mpl,
            memory_rows: args.memory,
            drift_threshold: 1e9,
            ..Default::default()
        },
    ));
    let server = WireServer::start(Arc::clone(&svc), &args.addr).expect("bind wire server");
    let port = server.port();
    if let Some(path) = &args.port_file {
        // Write to a temp name then rename: readers polling the path never
        // observe a half-written port.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{port}\n")).expect("write port file");
        std::fs::rename(&tmp, path).expect("rename port file");
    }
    println!("listening on 127.0.0.1:{port} (rows {}, mpl {})", args.rows, args.mpl);
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
