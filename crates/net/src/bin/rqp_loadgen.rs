//! Multi-process load generator for the wire server.
//!
//! ```sh
//! rqp-loadgen --addr 127.0.0.1:PORT [--clients 4] [--queries 4]
//!             [--mode closed|open] [--rate 1.0] [--churn 1] [--seed 7]
//!             [--subscribe]
//! ```
//!
//! With `--subscribe` each worker drives a *streaming* workload instead:
//! it registers a standing subscription over the (ORDER BY-stripped) query
//! menu, then alternates APPEND batches into `lineitem` with POLL rounds
//! that drain the subscription to zero lag, reporting
//! `subs=1 polls=… deltas=…`. Churn workers vanish with the subscription
//! still live, exercising the server's disconnect teardown of standing
//! state (the `wire.subs.torn_down` counter).
//!
//! The parent re-executes its own binary once per client with `--worker`,
//! so every client is a real OS *process* with its own TCP connection —
//! not a thread sharing the server's address space. Workers run a
//! deterministic query menu (chosen by `(seed, client, index)`), with:
//!
//! * **closed-loop** arrival: submit → drain → next (one query in flight);
//! * **open-loop** arrival: all queries submitted up front, then drained —
//!   arrival *timestamps* are virtual (`index / rate`), carried in the
//!   submission options for the server's deterministic schedule replay,
//!   while the submission burst itself is real;
//! * a **priority mix**: worker `i` uses priority `i % 3`;
//! * optional **churn**: the first `--churn` workers submit one extra
//!   query and then kill their own process while it is still queued or
//!   executing — no GOODBYE, no drain — exercising the server's
//!   abrupt-disconnect teardown (cancel, reap, release slot + grants).
//!
//! Each worker prints one machine-readable summary line
//! (`RQPLOAD client=… results=idx:checksum,…`); the parent relays them
//! (inherited stdout) and appends an aggregate `RQPLOAD total …` line.
//! With `--observe` the parent also runs an observer thread on its own
//! connection, tailing the server's flight recorder (EVENTS) for the
//! duration of the run; the total line then reports
//! `observer_events=N observer_gaps=G` — `G > 0` means the recorder ring
//! overwrote events faster than the observer drained them.
//! Checksums are [`rqp_net::rows_checksum`] over the wire encoding, so a
//! driver that also knows the menu can verify bit-identity against solo
//! runs without the rows ever being re-shipped.

use rqp_common::{Row, Value};
use rqp_net::loadgen::{menu, menu_index};
use rqp_net::proto::{WireQueryOptions, WireSubscribeOptions};
use rqp_net::{rows_checksum, WireClient};
use rqp_opt::QuerySpec;
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

#[derive(Clone)]
struct Args {
    addr: String,
    clients: usize,
    queries: usize,
    open_loop: bool,
    rate: f64,
    churn: usize,
    seed: u64,
    observe: bool,
    subscribe: bool,
    worker: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        clients: 4,
        queries: 4,
        open_loop: false,
        rate: 1.0,
        churn: 0,
        seed: 7,
        observe: false,
        subscribe: false,
        worker: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = val("--addr"),
            "--clients" => args.clients = val("--clients").parse().expect("--clients"),
            "--queries" => args.queries = val("--queries").parse().expect("--queries"),
            "--mode" => {
                args.open_loop = match val("--mode").as_str() {
                    "open" => true,
                    "closed" => false,
                    m => {
                        eprintln!("unknown mode {m} (open|closed)");
                        std::process::exit(2);
                    }
                }
            }
            "--rate" => args.rate = val("--rate").parse().expect("--rate"),
            "--churn" => args.churn = val("--churn").parse().expect("--churn"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed"),
            "--observe" => args.observe = true,
            "--subscribe" => args.subscribe = true,
            "--worker" => args.worker = Some(val("--worker").parse().expect("--worker")),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.addr.is_empty() {
        eprintln!("--addr is required");
        std::process::exit(2);
    }
    args
}

fn run_worker(args: &Args, id: usize) {
    let menu = menu();
    let priority = (id % 3) as u8;
    let mut client = match WireClient::connect(&args.addr, priority) {
        Ok(c) => c,
        Err(e) => {
            println!("RQPLOAD client={id} error=connect msg={e}");
            std::process::exit(1);
        }
    };
    if args.subscribe {
        run_subscriber(args, id, &mut client);
        return;
    }
    let mut results: Vec<(usize, u64)> = Vec::new();
    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut codes: Vec<u16> = Vec::new();

    let opts_for = |global_q: usize| WireQueryOptions {
        arrival: global_q as f64 / args.rate.max(1e-9),
        ..WireQueryOptions::default()
    };

    fn outcome_of(
        results: &mut Vec<(usize, u64)>,
        ok: &mut usize,
        failed: &mut usize,
        codes: &mut Vec<u16>,
        idx: usize,
        res: Result<rqp_net::RemoteOutcome, rqp_net::RemoteFailure>,
    ) {
        match res {
            Ok(out) => {
                results.push((idx, rows_checksum(&out.rows)));
                *ok += 1;
            }
            Err(f) => {
                codes.push(f.code);
                *failed += 1;
            }
        }
    }

    if args.open_loop {
        // Open loop: every query submitted before any is drained.
        let mut pending = Vec::new();
        for q in 0..args.queries {
            let idx = menu_index(args.seed, id, q, menu.len());
            let global_q = q * args.clients + id;
            match client.submit(&menu[idx], opts_for(global_q)) {
                Ok(query) => pending.push((idx, query)),
                Err(e) => {
                    println!("RQPLOAD client={id} error=submit msg={e}");
                    std::process::exit(1);
                }
            }
        }
        for (idx, query) in pending {
            match client.fetch(query) {
                Ok(res) => outcome_of(&mut results, &mut ok, &mut failed, &mut codes, idx, res),
                Err(e) => {
                    println!("RQPLOAD client={id} error=fetch msg={e}");
                    std::process::exit(1);
                }
            }
        }
    } else {
        // Closed loop: one query in flight at a time.
        for q in 0..args.queries {
            let idx = menu_index(args.seed, id, q, menu.len());
            let global_q = q * args.clients + id;
            match client.run(&menu[idx], opts_for(global_q)) {
                Ok(res) => outcome_of(&mut results, &mut ok, &mut failed, &mut codes, idx, res),
                Err(e) => {
                    println!("RQPLOAD client={id} error=run msg={e}");
                    std::process::exit(1);
                }
            }
        }
    }

    let disconnect = id < args.churn;
    if disconnect {
        // Submit one more query and die mid-flight: no GOODBYE, no fetch
        // drain, just a vanished peer. The server must cancel the query and
        // release its MPL slot and memory grants.
        let idx = menu_index(args.seed, id, args.queries, menu.len());
        let _ = client.submit(&menu[idx], WireQueryOptions::default());
        print_summary(id, ok, failed, true, &results, &codes);
        std::process::exit(0); // drops the TCP stream mid-query
    }

    print_summary(id, ok, failed, false, &results, &codes);
    let _ = client.goodbye();
}

/// The query menu with ORDER BY / LIMIT stripped: standing subscriptions
/// maintain order-canonical *sets*, so the server rejects ordered specs.
fn sub_menu() -> Vec<QuerySpec> {
    menu()
        .into_iter()
        .map(|mut s| {
            s.order_by.clear();
            s.limit = None;
            s
        })
        .collect()
}

/// A deterministic `lineitem` row for `(client, batch, row)`. Floats stay
/// dyadic so grouped SUM/AVG retraction is exact under churn.
fn lineitem_row(client: usize, batch: usize, r: usize) -> Row {
    let k = (client * 1_000 + batch * 10 + r) as i64;
    vec![
        Value::Int(k % 50),
        Value::Int(k % 20),
        Value::Int(k % 10),
        Value::Int(1 + k % 50),
        Value::Float(1_000.0 + (k % 100) as f64 * 0.25),
        Value::Float(0.0625),
        Value::Int(k % 2_400),
        Value::Int(k % 3),
    ]
}

/// Subscription workload for one worker: register a standing view over
/// the menu, then alternate APPEND batches into `lineitem` with POLL
/// rounds that drain the subscription to zero lag, counting delta rows.
/// Churn workers vanish without UNSUBSCRIBE or GOODBYE, exercising the
/// server's disconnect teardown of standing subscriptions.
fn run_subscriber(args: &Args, id: usize, client: &mut WireClient) {
    let menu = sub_menu();
    let idx = menu_index(args.seed, id, 0, menu.len());
    let sub = match client.subscribe(&menu[idx], WireSubscribeOptions::default()) {
        Ok(s) => s,
        Err(e) => {
            println!("RQPLOAD client={id} error=subscribe msg={e}");
            std::process::exit(1);
        }
    };
    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut polls = 0u64;
    let mut deltas = 0u64;
    for batch in 0..args.queries {
        let rows: Vec<Row> = (0..8).map(|r| lineitem_row(id, batch, r)).collect();
        match client.append("lineitem", rows) {
            Ok(Ok(_epoch)) => ok += 1,
            Ok(Err(_)) => failed += 1,
            Err(e) => {
                println!("RQPLOAD client={id} error=append msg={e}");
                std::process::exit(1);
            }
        }
        loop {
            polls += 1;
            match client.poll_sub(sub, 0) {
                Ok(Ok((delta, lag))) => {
                    deltas += (delta.inserted.len() + delta.retracted.len()) as u64;
                    if lag == 0 {
                        break;
                    }
                }
                Ok(Err(_)) => {
                    failed += 1;
                    break;
                }
                Err(e) => {
                    println!("RQPLOAD client={id} error=poll msg={e}");
                    std::process::exit(1);
                }
            }
        }
    }
    let disconnect = id < args.churn;
    println!(
        "RQPLOAD client={id} ok={ok} failed={failed} disconnected={} subs=1 polls={polls} deltas={deltas}",
        disconnect as u8
    );
    if disconnect {
        std::process::exit(0); // vanish with the subscription still live
    }
    let _ = client.unsubscribe(sub);
}

fn print_summary(
    id: usize,
    ok: usize,
    failed: usize,
    disconnected: bool,
    results: &[(usize, u64)],
    codes: &[u16],
) {
    let results_s = results
        .iter()
        .map(|(i, c)| format!("{i}:{c:016x}"))
        .collect::<Vec<_>>()
        .join(",");
    let codes_s = codes.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",");
    println!(
        "RQPLOAD client={id} ok={ok} failed={failed} disconnected={} results={results_s} codes={codes_s}",
        disconnected as u8
    );
}

/// Tail the server's flight recorder on a dedicated connection until told
/// to stop, then report `(events_seen, gaps)`. Read-only frames bypass
/// admission, so the observer never perturbs the workload's scheduling.
fn run_observer(
    addr: String,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<(u64, u64)> {
    std::thread::spawn(move || {
        let Ok(mut client) = WireClient::connect(&addr, 0) else { return (0, 0) };
        let mut cursor = 0u64;
        let mut events = 0u64;
        let mut gaps = 0u64;
        loop {
            let done = stop.load(std::sync::atomic::Ordering::SeqCst);
            // One last drain after the stop flag so nothing published
            // before the workload finished goes uncounted.
            loop {
                let Ok(tail) = client.events(cursor, 4096) else { return (events, gaps) };
                cursor = tail.next_cursor;
                events += tail.events.len() as u64;
                gaps += tail.gap;
                if tail.events.is_empty() {
                    break;
                }
            }
            if done {
                return (events, gaps);
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    })
}

fn run_parent(args: &Args) {
    let exe = std::env::current_exe().expect("current exe");
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observer = args
        .observe
        .then(|| run_observer(args.addr.clone(), std::sync::Arc::clone(&stop)));
    let mut children = Vec::new();
    for id in 0..args.clients {
        let mut cmd = Command::new(&exe);
        cmd.arg("--addr")
            .arg(&args.addr)
            .arg("--clients")
            .arg(args.clients.to_string())
            .arg("--queries")
            .arg(args.queries.to_string())
            .arg("--mode")
            .arg(if args.open_loop { "open" } else { "closed" })
            .arg("--rate")
            .arg(args.rate.to_string())
            .arg("--churn")
            .arg(args.churn.to_string())
            .arg("--seed")
            .arg(args.seed.to_string())
            .arg("--worker")
            .arg(id.to_string())
            .stdout(Stdio::piped());
        if args.subscribe {
            cmd.arg("--subscribe");
        }
        let child = cmd.spawn().expect("spawn worker process");
        children.push(child);
    }
    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut disconnected = 0usize;
    let mut hard_errors = 0usize;
    let mut deltas = 0u64;
    for mut child in children {
        let stdout = child.stdout.take().expect("worker stdout");
        for line in BufReader::new(stdout).lines() {
            let line = line.expect("read worker line");
            // Relay the worker's summary, then fold it into the aggregate.
            println!("{line}");
            if line.contains("error=") {
                hard_errors += 1;
                continue;
            }
            for tok in line.split_whitespace() {
                if let Some(v) = tok.strip_prefix("ok=") {
                    ok += v.parse::<usize>().unwrap_or(0);
                } else if let Some(v) = tok.strip_prefix("failed=") {
                    failed += v.parse::<usize>().unwrap_or(0);
                } else if let Some(v) = tok.strip_prefix("deltas=") {
                    deltas += v.parse::<u64>().unwrap_or(0);
                } else if tok == "disconnected=1" {
                    disconnected += 1;
                }
            }
        }
        let status = child.wait().expect("wait worker");
        if !status.success() {
            hard_errors += 1;
        }
    }
    let observed = observer.map(|handle| {
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        handle.join().expect("join observer thread")
    });
    let observer_s = match observed {
        Some((events, gaps)) => format!(" observer_events={events} observer_gaps={gaps}"),
        None => String::new(),
    };
    let subs_s = if args.subscribe { format!(" deltas={deltas}") } else { String::new() };
    println!(
        "RQPLOAD total clients={} ok={ok} failed={failed} disconnected={disconnected} errors={hard_errors}{observer_s}{subs_s}",
        args.clients
    );
    if hard_errors > 0 {
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    match args.worker {
        Some(id) => run_worker(&args, id),
        None => run_parent(&args),
    }
}
