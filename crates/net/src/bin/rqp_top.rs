//! `rqp-top` — a live terminal dashboard over a running wire server.
//!
//! ```sh
//! rqp-top --addr 127.0.0.1:PORT [--interval 1.0] [--once]
//!         [--events N] [--events-dump PATH]
//! ```
//!
//! Polls the read-only STATS and EVENTS introspection frames on a
//! dedicated connection (they bypass admission, so watching the service
//! never competes with it) and redraws a refreshing dashboard: admission
//! and broker gauges, the buffer-pool pager gauges (when the server runs
//! with a page budget), the standing-subscription gauges (`server.subs.*`,
//! when subscriptions are registered), the wire counters, every in-flight
//! query with its
//! phase / cost-clock ticks / grants / deadline headroom, and the newest
//! flight-recorder events. `--once` prints a single snapshot and exits —
//! the CI wire-smoke job greps that output for non-empty gauges.
//!
//! Every EVENTS reply's `gap` is accumulated and shown: if this observer
//! falls behind the ring, the loss is visible, never silent. With
//! `--events-dump` the full tail collected so far is rewritten to PATH as
//! an events-dump JSON document after every poll; `rqp-report show PATH`
//! renders it with the run-report event formatter.

use rqp_net::WireClient;
use rqp_telemetry::{EventTail, MetricValue, RecordedEvent};

struct Args {
    addr: String,
    interval: f64,
    once: bool,
    /// Newest events shown per refresh.
    events_shown: usize,
    events_dump: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        interval: 1.0,
        once: false,
        events_shown: 12,
        events_dump: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = val("--addr"),
            "--interval" => args.interval = val("--interval").parse().expect("--interval"),
            "--once" => args.once = true,
            "--events" => args.events_shown = val("--events").parse().expect("--events"),
            "--events-dump" => args.events_dump = Some(val("--events-dump")),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.addr.is_empty() {
        eprintln!("usage: rqp-top --addr HOST:PORT [--interval SECS] [--once] [--events N] [--events-dump PATH]");
        std::process::exit(2);
    }
    args
}

fn metric_line(name: &str, value: &MetricValue) -> String {
    match value {
        MetricValue::Counter(n) => format!("  {name} = {n}\n"),
        MetricValue::Gauge(x) => format!("  {name} = {x}\n"),
        MetricValue::Histogram { count, sum, max, buckets } => format!(
            "  {name}: count {count}, mean {:.2}, max {max:.2}, p50 {:.2}, p99 {:.2}\n",
            if *count > 0 { sum / *count as f64 } else { f64::NAN },
            rqp_telemetry::bucket_quantile(buckets, 0.50),
            rqp_telemetry::bucket_quantile(buckets, 0.99),
        ),
    }
}

fn event_line(e: &RecordedEvent) -> String {
    format!("  #{:<8} @{:<10.3} q{:<5} {:<18} {}\n", e.seq, e.at, e.query, e.kind, e.detail)
}

/// One full dashboard frame as a string (rendered off-screen, printed in
/// one write so a refresh never shows a half-drawn frame).
fn render(
    addr: &str,
    snap: &rqp_net::ServiceSnapshot,
    recent: &[RecordedEvent],
    polls: u64,
    total_events: u64,
    total_gap: u64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "rqp-top — {addr}   poll {polls}   events seen {total_events}   lost {total_gap}\n\n"
    ));

    out.push_str("service:\n");
    for (name, value) in &snap.metrics {
        if name.starts_with("server.live.") || name.starts_with("server.recorder.") {
            out.push_str(&metric_line(name, value));
        }
    }
    out.push_str("wire:\n");
    for (name, value) in &snap.metrics {
        if name.starts_with("wire.") {
            out.push_str(&metric_line(name, value));
        }
    }
    let pager: Vec<&(String, MetricValue)> = snap
        .metrics
        .iter()
        .filter(|(n, _)| n.starts_with("server.pager."))
        .collect();
    if !pager.is_empty() {
        out.push_str("pager:\n");
        for (name, value) in pager {
            out.push_str(&metric_line(name, value));
        }
    }
    let subs: Vec<&(String, MetricValue)> = snap
        .metrics
        .iter()
        .filter(|(n, _)| n.starts_with("server.subs."))
        .collect();
    if !subs.is_empty() {
        out.push_str("subs:\n");
        for (name, value) in subs {
            out.push_str(&metric_line(name, value));
        }
    }
    let rest: Vec<&(String, MetricValue)> = snap
        .metrics
        .iter()
        .filter(|(n, _)| {
            !n.starts_with("server.live.")
                && !n.starts_with("server.recorder.")
                && !n.starts_with("server.pager.")
                && !n.starts_with("server.subs.")
                && !n.starts_with("wire.")
        })
        .collect();
    if !rest.is_empty() {
        out.push_str("metrics:\n");
        for (name, value) in rest {
            out.push_str(&metric_line(name, value));
        }
    }

    out.push_str(&format!("\nin-flight queries ({}):\n", snap.live.len()));
    if !snap.live.is_empty() {
        out.push_str(
            "  query   sess  prio  phase    ticks        granted    share      deadline\n",
        );
        for q in &snap.live {
            let deadline = match q.deadline_remaining {
                Some(d) => format!("{d:.0}"),
                None => "-".into(),
            };
            out.push_str(&format!(
                "  {:<7} {:<5} {:<5} {:<8} {:<12.1} {:<10.0} {:<10.0} {deadline}\n",
                q.query,
                q.session,
                q.priority,
                q.phase.label(),
                q.ticks,
                q.granted,
                q.share,
            ));
        }
    }

    out.push_str(&format!("\nrecent events ({} shown):\n", recent.len()));
    for e in recent {
        out.push_str(&event_line(e));
    }
    out
}

fn main() {
    let args = parse_args();
    let mut client = match WireClient::connect(&args.addr, 0) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rqp-top: {e}");
            std::process::exit(1);
        }
    };
    let mut cursor = 0u64;
    let mut collected: Vec<RecordedEvent> = Vec::new();
    let mut total_gap = 0u64;
    let mut polls = 0u64;
    loop {
        let snap = match client.stats() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rqp-top: STATS failed: {e}");
                std::process::exit(1);
            }
        };
        // Drain the recorder completely each poll (the reply is capped per
        // frame, so keep tailing until it comes back empty).
        loop {
            let tail = match client.events(cursor, 4096) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("rqp-top: EVENTS failed: {e}");
                    std::process::exit(1);
                }
            };
            cursor = tail.next_cursor;
            total_gap += tail.gap;
            let done = tail.events.is_empty();
            collected.extend(tail.events);
            if done {
                break;
            }
        }
        polls += 1;

        if let Some(path) = &args.events_dump {
            let dump = EventTail {
                events: collected.clone(),
                next_cursor: cursor,
                gap: total_gap,
            };
            let tmp = format!("{path}.tmp");
            let write = std::fs::write(&tmp, dump.to_json().pretty())
                .and_then(|()| std::fs::rename(&tmp, path));
            if let Err(e) = write {
                eprintln!("rqp-top: write {path}: {e}");
                std::process::exit(1);
            }
        }

        let shown = &collected[collected.len().saturating_sub(args.events_shown)..];
        let frame =
            render(&args.addr, &snap, shown, polls, collected.len() as u64, total_gap);
        if args.once {
            print!("{frame}");
            return;
        }
        // Clear + home, then one frame per write.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_secs_f64(args.interval.max(0.05)));
    }
}
