//! Thread-per-connection TCP front door for a [`QueryService`].
//!
//! Each accepted connection runs one reader thread speaking the `proto`
//! message set. SUBMIT spawns a per-query *pager* thread that joins the
//! query's [`QueryHandle`](rqp_server::QueryHandle) and then serves result
//! pages strictly against client-granted credits: the pager encodes **one
//! page at a time, only while holding a credit**, so a client that stops
//! fetching stalls only its own query — the already-materialized result
//! rows wait in their (already broker-released) buffer and at most one
//! encoded page exists per query at any instant. The broker's shared
//! memory ledger is never held hostage by a slow consumer: `run_query`
//! returns every grant before paging begins.
//!
//! Disconnects — clean (GOODBYE) or abrupt (EOF/reset mid-query) — cancel
//! every live query's token and join its pager, which in turn means the
//! query thread has fully unwound: MPL slot surrendered, memory grants
//! returned. The churn counters this maintains
//! (`wire.queries.disconnected` / `wire.queries.recovered`) are what the
//! A07 experiment's churn-recovery gauge is derived from.

use crate::frame::{read_frame, write_frame, FrameError, MAX_PAYLOAD};
use crate::proto::{ClientMsg, RemoteFailure, ServerMsg};
use rqp_common::{CancelToken, CostClock, Row, RqpError};
use rqp_server::{QueryPhase, QueryService, Session};
use rqp_telemetry::{SpanSnapshot, TraceTree};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Rows per result page.
pub const PAGE_ROWS: usize = 256;

/// Credit ledger shared between a query's pager thread and the connection
/// reader (which deposits FETCH grants and kills the ledger on teardown).
#[derive(Debug, Default)]
struct Credits {
    state: Mutex<(u32, bool)>, // (credits, dead)
    cv: Condvar,
}

impl Credits {
    fn grant(&self, n: u32) {
        let mut st = self.state.lock().expect("credits lock");
        st.0 = st.0.saturating_add(n);
        self.cv.notify_all();
    }

    fn kill(&self) {
        self.state.lock().expect("credits lock").1 = true;
        self.cv.notify_all();
    }

    /// Whether an `acquire_one` right now would block (no credit, not
    /// dead). Advisory — the answer can be stale by the time it is used;
    /// the pager only uses it to publish `pager.stall` events.
    fn would_block(&self) -> bool {
        let st = self.state.lock().expect("credits lock");
        st.0 == 0 && !st.1
    }

    /// Block until one credit is available (consuming it) or the ledger is
    /// killed. Returns false on kill.
    fn acquire_one(&self) -> bool {
        let mut st = self.state.lock().expect("credits lock");
        loop {
            if st.1 {
                return false;
            }
            if st.0 > 0 {
                st.0 -= 1;
                return true;
            }
            st = self.cv.wait(st).expect("credits lock");
        }
    }
}

/// One in-flight query on a connection.
struct LiveQuery {
    token: CancelToken,
    credits: Arc<Credits>,
    finished: Arc<AtomicBool>,
    pager: std::thread::JoinHandle<()>,
}

struct ServerShared {
    svc: Arc<QueryService>,
    shutdown: AtomicBool,
    clock: rqp_common::SharedClock,
    next_conn: AtomicU64,
}

/// Cumulative wire-level statistics, all monotone counters except the peak.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WireStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections fully torn down.
    pub closed: u64,
    /// Queries still live when their connection died (mid-query churn).
    pub disconnected_queries: u64,
    /// Of those, queries whose pager (and thus query thread) was fully
    /// reaped — slot surrendered, grants returned.
    pub recovered_queries: u64,
    /// Peak number of encoded-but-unsent result pages held for any single
    /// query. 1 by construction of the credit loop; the A07 gauge asserts
    /// this stays bounded.
    pub peak_buffered_pages: u64,
    /// Protocol violations observed from peers.
    pub protocol_errors: u64,
}

/// A running TCP wire server. Dropping it (or calling
/// [`shutdown`](WireServer::shutdown)) stops the accept loop and joins
/// every connection thread.
pub struct WireServer {
    shared: Arc<ServerShared>,
    local: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    stats: Arc<Mutex<WireStats>>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer").field("addr", &self.local).finish()
    }
}

impl WireServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting connections against `svc`.
    pub fn start(svc: Arc<QueryService>, addr: &str) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            svc,
            shutdown: AtomicBool::new(false),
            clock: CostClock::default_clock(),
            next_conn: AtomicU64::new(0),
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(Mutex::new(WireStats::default()));
        let accept = {
            let (shared, conns, stats) = (Arc::clone(&shared), Arc::clone(&conns), Arc::clone(&stats));
            std::thread::Builder::new()
                .name("rqp-net-accept".into())
                .spawn(move || {
                    for incoming in listener.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match incoming {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed) + 1;
                        stats.lock().expect("stats lock").connections += 1;
                        shared.svc.metrics().counter("wire.connections").inc();
                        let (shared, stats) = (Arc::clone(&shared), Arc::clone(&stats));
                        let handle = std::thread::Builder::new()
                            .name(format!("rqp-net-conn-{conn_id}"))
                            .spawn(move || serve_connection(shared, stats, stream, conn_id))
                            .expect("spawn connection thread");
                        // Reap connections that have already ended before
                        // tracking the new one, so a long-lived server does
                        // not accumulate a handle per connection ever served.
                        let mut guard = conns.lock().expect("conns lock");
                        let mut i = 0;
                        while i < guard.len() {
                            if guard[i].is_finished() {
                                let _ = guard.swap_remove(i).join();
                            } else {
                                i += 1;
                            }
                        }
                        guard.push(handle);
                    }
                })
                .expect("spawn accept thread")
        };
        Ok(WireServer { shared, local, accept: Some(accept), conns, stats })
    }

    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.local.port()
    }

    /// A snapshot of the wire-level statistics.
    pub fn stats(&self) -> WireStats {
        *self.stats.lock().expect("stats lock")
    }

    /// Stop accepting, then join the accept loop and every connection
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection to the
        // address actually bound — a wildcard bind (0.0.0.0/[::]) is not
        // connectable as-is, so map it to the matching loopback.
        let mut target = self.local;
        if target.ip().is_unspecified() {
            target.set_ip(match target.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(target);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.conns.lock().expect("conns lock").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Best-effort framed send under the shared writer lock.
fn send(writer: &Mutex<TcpStream>, msg: &ServerMsg) -> Result<(), FrameError> {
    let (tag, payload) = msg.encode()?;
    let mut w = writer.lock().expect("writer lock");
    write_frame(&mut *w, tag, &payload)
}

fn failure_of(e: &RqpError) -> RemoteFailure {
    // Bound the message so an ERROR frame itself can always encode
    // (Writer::str rejects oversized strings); codes carry the semantics,
    // the text is advisory.
    let mut message = e.to_string();
    if message.len() > 4096 {
        let cut = (0..=4096).rev().find(|&i| message.is_char_boundary(i)).unwrap_or(0);
        message.truncate(cut);
        message.push('…');
    }
    RemoteFailure { code: e.wire_code(), message }
}

/// Drop (and join the pagers of) queries whose pager has finished. Called
/// opportunistically from the connection loop so a long-lived connection
/// does not accumulate a dead pager handle and credit ledger per query it
/// has ever run.
fn reap_finished(live: &mut HashMap<u64, LiveQuery>) {
    let done: Vec<u64> = live
        .iter()
        .filter(|(_, q)| q.finished.load(Ordering::SeqCst))
        .map(|(id, _)| *id)
        .collect();
    for id in done {
        if let Some(q) = live.remove(&id) {
            let _ = q.pager.join();
        }
    }
}

fn serve_connection(
    shared: Arc<ServerShared>,
    stats: Arc<Mutex<WireStats>>,
    stream: TcpStream,
    conn_id: u64,
) {
    let span = shared.svc.tracer().open("connection", &shared.clock);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    span.set_detail(&format!("conn {conn_id} peer {peer}"));

    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));

    // The session opens on HELLO; everything before that is a protocol error.
    let mut session: Option<Session> = None;
    let mut live: HashMap<u64, LiveQuery> = HashMap::new();
    let mut clean_exit = false;

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => break, // peer hung up
            Err(e) => {
                stats.lock().expect("stats lock").protocol_errors += 1;
                shared.svc.metrics().counter("wire.protocol_errors").inc();
                let _ = send(
                    &writer,
                    &ServerMsg::Error { query: 0, failure: failure_of(&e.into()) },
                );
                break;
            }
        };
        reap_finished(&mut live);
        let msg = match ClientMsg::decode(&frame) {
            Ok(m) => m,
            Err(e) => {
                stats.lock().expect("stats lock").protocol_errors += 1;
                shared.svc.metrics().counter("wire.protocol_errors").inc();
                let _ = send(
                    &writer,
                    &ServerMsg::Error { query: 0, failure: failure_of(&e.into()) },
                );
                break;
            }
        };
        match msg {
            ClientMsg::Hello { priority } => {
                if session.is_some() {
                    stats.lock().expect("stats lock").protocol_errors += 1;
                    shared.svc.metrics().counter("wire.protocol_errors").inc();
                    let e = RqpError::Protocol("duplicate HELLO".into());
                    let _ = send(&writer, &ServerMsg::Error { query: 0, failure: failure_of(&e) });
                    break;
                }
                let s = shared.svc.session(priority);
                let _ = send(&writer, &ServerMsg::HelloAck { session: s.id() });
                session = Some(s);
            }
            ClientMsg::Submit { spec, opts } => {
                let Some(s) = session.as_ref() else {
                    stats.lock().expect("stats lock").protocol_errors += 1;
                    shared.svc.metrics().counter("wire.protocol_errors").inc();
                    let e = RqpError::Protocol("SUBMIT before HELLO".into());
                    let _ = send(&writer, &ServerMsg::Error { query: 0, failure: failure_of(&e) });
                    break;
                };
                let session_id = s.id();
                let handle = s.submit(spec, opts.into());
                let query = handle.query();
                let token = handle.token();
                let credits = Arc::new(Credits::default());
                let finished = Arc::new(AtomicBool::new(false));
                let pager = {
                    let (shared, writer, credits, finished, stats) = (
                        Arc::clone(&shared),
                        Arc::clone(&writer),
                        Arc::clone(&credits),
                        Arc::clone(&finished),
                        Arc::clone(&stats),
                    );
                    std::thread::Builder::new()
                        .name(format!("rqp-net-pager-{query}"))
                        .spawn(move || {
                            page_results(&shared, &writer, query, session_id, handle, &credits, &stats);
                            finished.store(true, Ordering::SeqCst);
                        })
                        .expect("spawn pager thread")
                };
                live.insert(query, LiveQuery { token, credits, finished, pager });
                let _ = send(&writer, &ServerMsg::SubmitAck { query });
            }
            ClientMsg::Fetch { query, credits } => {
                if let Some(q) = live.get(&query) {
                    q.credits.grant(credits);
                }
                // A grant for an unknown/finished query is a no-op, not an
                // error: a client legitimately re-grants before it has read
                // the DONE/ERROR frame already in flight, so FETCH races
                // completion by design — exactly like CANCEL below.
            }
            ClientMsg::Cancel { query } => {
                if let Some(q) = live.get(&query) {
                    q.token.cancel();
                }
                // Cancelling an unknown/finished query is a no-op, not an
                // error: cancellation races completion by design.
            }
            ClientMsg::Goodbye => {
                let _ = send(&writer, &ServerMsg::GoodbyeAck);
                clean_exit = true;
                break;
            }
            // The three introspection frames are answered inline on the
            // reader thread, bypass admission entirely, and need no HELLO:
            // an observer connection never competes with the workload it
            // is watching.
            ClientMsg::Stats => {
                shared.svc.refresh_live_gauges();
                let _ = send(
                    &writer,
                    &ServerMsg::StatsReply {
                        metrics: shared.svc.metrics().snapshot(),
                        live: shared.svc.stats().snapshot(),
                    },
                );
            }
            ClientMsg::Inspect { query } => {
                let _ = send(&writer, &inspect_reply(&shared, query));
            }
            ClientMsg::Events { cursor, max } => {
                // Cap the tail length so one reply always fits a frame;
                // clients resume from `next_cursor` for the rest.
                let tail =
                    shared.svc.stats().recorder().tail(cursor, (max as usize).min(4096));
                let _ = send(
                    &writer,
                    &ServerMsg::EventsReply {
                        events: tail.events,
                        next_cursor: tail.next_cursor,
                        gap: tail.gap,
                    },
                );
            }
            ClientMsg::Subscribe { spec, opts } => {
                let Some(s) = session.as_ref() else {
                    stats.lock().expect("stats lock").protocol_errors += 1;
                    shared.svc.metrics().counter("wire.protocol_errors").inc();
                    let e = RqpError::Protocol("SUBSCRIBE before HELLO".into());
                    let _ = send(&writer, &ServerMsg::Error { query: 0, failure: failure_of(&e) });
                    break;
                };
                // Registration (including the initial view load) runs inline
                // on the reader thread: it goes through the same admission
                // gate as a query, and the connection cannot meaningfully
                // proceed until it knows the subscription id anyway.
                match s.subscribe(&spec, opts.into()) {
                    Ok(sub) => {
                        let _ = send(&writer, &ServerMsg::SubAck { sub });
                    }
                    Err(e) => {
                        let _ =
                            send(&writer, &ServerMsg::Error { query: 0, failure: failure_of(&e) });
                    }
                }
            }
            ClientMsg::Unsubscribe { sub } => {
                match owned_subscription(&shared, &session, sub) {
                    Ok(()) => {
                        shared.svc.unsubscribe(sub);
                        let _ = send(&writer, &ServerMsg::SubDone { sub, lag: 0 });
                    }
                    Err(e) => {
                        let _ =
                            send(&writer, &ServerMsg::Error { query: sub, failure: failure_of(&e) });
                    }
                }
            }
            ClientMsg::Poll { sub, max_records } => {
                // Strictly client-driven delta delivery: the poll is answered
                // inline with zero or more DELTA frames and a terminal
                // SUB_DONE carrying the remaining changelog lag. A stalled
                // subscriber therefore pins nothing server-side between
                // polls — deltas live in its circuit until it asks.
                let res = owned_subscription(&shared, &session, sub)
                    .and_then(|()| shared.svc.poll_subscription(sub, max_records as usize));
                match res {
                    Ok((packet, lag)) => stream_delta(
                        &writer,
                        sub,
                        packet.epoch,
                        &packet.inserted,
                        &packet.retracted,
                        lag,
                    ),
                    Err(e) => {
                        let _ =
                            send(&writer, &ServerMsg::Error { query: sub, failure: failure_of(&e) });
                    }
                }
            }
            ClientMsg::Append { table, rows } => {
                if session.is_none() {
                    stats.lock().expect("stats lock").protocol_errors += 1;
                    shared.svc.metrics().counter("wire.protocol_errors").inc();
                    let e = RqpError::Protocol("APPEND before HELLO".into());
                    let _ = send(&writer, &ServerMsg::Error { query: 0, failure: failure_of(&e) });
                    break;
                }
                match shared.svc.append_rows(&table, rows) {
                    Ok(epoch) => {
                        let _ = send(&writer, &ServerMsg::AppendAck { epoch });
                    }
                    Err(e) => {
                        let _ =
                            send(&writer, &ServerMsg::Error { query: 0, failure: failure_of(&e) });
                    }
                }
            }
        }
    }

    // Teardown: every live query is cancelled and its pager joined. Joining
    // the pager means handle.join() returned — the query thread has unwound
    // through run_query, so its MPL slot and memory grants are released.
    let mut disconnected = 0u64;
    let mut recovered = 0u64;
    for (_, q) in live.drain() {
        let was_live = !q.finished.load(Ordering::SeqCst);
        if was_live && !clean_exit {
            disconnected += 1;
        }
        q.token.cancel();
        q.credits.kill();
        let joined = q.pager.join().is_ok();
        if was_live && !clean_exit && joined {
            recovered += 1;
        }
    }
    {
        let mut st = stats.lock().expect("stats lock");
        st.closed += 1;
        st.disconnected_queries += disconnected;
        st.recovered_queries += recovered;
    }
    // Standing subscriptions die with their connection — clean or abrupt.
    // unsubscribe_session releases every broker grant, so a disconnected
    // subscriber pins zero pages and reserves zero workspace afterwards.
    let torn_down = match session.as_ref() {
        Some(s) => shared.svc.unsubscribe_session(s.id()) as u64,
        None => 0,
    };
    let m = shared.svc.metrics();
    m.counter("wire.connections.closed").inc();
    m.counter("wire.queries.disconnected").add(disconnected);
    m.counter("wire.queries.recovered").add(recovered);
    m.counter("wire.subs.torn_down").add(torn_down);
    span.close(&shared.clock);
}

/// Whether `sub` exists and belongs to this connection's session. Polls
/// and unsubscribes legitimately race subscription teardown (deadline,
/// server shutdown), so an unknown id is a typed error on the frame,
/// never a connection break.
fn owned_subscription(
    shared: &ServerShared,
    session: &Option<Session>,
    sub: u64,
) -> rqp_common::Result<()> {
    let Some(s) = session.as_ref() else {
        return Err(RqpError::Protocol("subscription frame before HELLO".into()));
    };
    match shared.svc.subscriptions().get(sub) {
        Some(live) if live.session() == s.id() => Ok(()),
        Some(_) => {
            Err(RqpError::Invalid(format!("subscription {sub} belongs to another session")))
        }
        None => Err(RqpError::Invalid(format!("unknown subscription {sub}"))),
    }
}

/// Send one delta packet as chunked DELTA frames terminated by SUB_DONE.
/// Inserted rows fill each frame first, then retracted ones; the page size
/// adapts downward when wide rows push the encoded size past the frame
/// limit, mirroring `stream_rows`. An empty packet sends only the
/// SUB_DONE, so a quiescent poll costs one small frame each way — and
/// because delivery is strictly poll-driven, at most one encoded delta
/// page exists per subscription at any instant.
fn stream_delta(
    writer: &Mutex<TcpStream>,
    sub: u64,
    epoch: u64,
    inserted: &[Row],
    retracted: &[Row],
    lag: u64,
) {
    let (mut ins, mut ret) = (0, 0);
    let mut page_rows = PAGE_ROWS;
    while ins < inserted.len() || ret < retracted.len() {
        let mut ni = page_rows.min(inserted.len() - ins);
        let mut nr = page_rows.saturating_sub(ni).min(retracted.len() - ret);
        let (tag, payload) = loop {
            let msg = ServerMsg::Delta {
                sub,
                epoch,
                inserted: inserted[ins..ins + ni].to_vec(),
                retracted: retracted[ret..ret + nr].to_vec(),
            };
            match msg.encode() {
                Ok((tag, payload)) if payload.len() <= MAX_PAYLOAD as usize => {
                    break (tag, payload)
                }
                Ok(_) if ni + nr > 1 => {
                    page_rows = ((ni + nr) / 2).max(1);
                    ni = page_rows.min(inserted.len() - ins);
                    nr = page_rows.saturating_sub(ni).min(retracted.len() - ret);
                }
                Ok(_) => {
                    let e = RqpError::Protocol(format!(
                        "delta row of subscription {sub} exceeds the {MAX_PAYLOAD}-byte frame limit"
                    ));
                    let _ = send(writer, &ServerMsg::Error { query: sub, failure: failure_of(&e) });
                    return;
                }
                Err(e) => {
                    let _ =
                        send(writer, &ServerMsg::Error { query: sub, failure: failure_of(&e.into()) });
                    return;
                }
            }
        };
        let res = {
            let mut w = writer.lock().expect("writer lock");
            write_frame(&mut *w, tag, &payload)
        };
        if res.is_err() {
            let e = RqpError::Protocol(format!("failed to deliver a delta of subscription {sub}"));
            let _ = send(writer, &ServerMsg::Error { query: sub, failure: failure_of(&e) });
            return;
        }
        ins += ni;
        ret += nr;
    }
    let _ = send(writer, &ServerMsg::SubDone { sub, lag });
}

/// Cap a rendered span tree so the INSPECT_REPLY payload always encodes
/// and fits one frame; the tree is advisory, truncation loses only depth.
fn clip_rendered(mut rendered: String) -> String {
    const MAX_RENDERED: usize = 64 * 1024;
    if rendered.len() > MAX_RENDERED {
        let cut = (0..=MAX_RENDERED)
            .rev()
            .find(|&i| rendered.is_char_boundary(i))
            .unwrap_or(0);
        rendered.truncate(cut);
        rendered.push('…');
    }
    rendered
}

/// The spans reachable from `root` in a forest snapshot. Spans are listed
/// in open order and adoption re-identifies children past their parents,
/// so a single forward pass finds the whole subtree.
fn subtree(spans: &[SpanSnapshot], root: usize) -> Vec<SpanSnapshot> {
    let mut ids = std::collections::HashSet::new();
    ids.insert(root);
    let mut keep = Vec::new();
    for s in spans {
        if s.id == root || s.parent.is_some_and(|p| ids.contains(&p)) {
            ids.insert(s.id);
            keep.push(s.clone());
        }
    }
    keep
}

/// Answer INSPECT: a live `EXPLAIN ANALYZE` for a running query (its
/// tracer and cost clock are `Arc`-over-atomics, so snapshotting mid-run
/// is safe), a phase-only reply for queued/paging queries, and the merged
/// service forest's adopted tree for queries that already finished.
fn inspect_reply(shared: &ServerShared, query: u64) -> ServerMsg {
    let stats = shared.svc.stats();
    if let Some((tracer, _clock)) = stats.live_tracer(query) {
        let rendered = clip_rendered(TraceTree::assemble(&tracer.snapshot()).render());
        return ServerMsg::InspectReply {
            query,
            found: true,
            phase: QueryPhase::Running.as_u8(),
            rendered,
        };
    }
    let phase = stats.phase(query);
    if phase == Some(QueryPhase::Queued) {
        // At the admission gate: nothing has executed, there is no tree.
        return ServerMsg::InspectReply {
            query,
            found: true,
            phase: QueryPhase::Queued.as_u8(),
            rendered: String::new(),
        };
    }
    // Paging (execution finished, results streaming out) or already gone:
    // either way the query's tree was adopted into the merged service
    // forest when `run_query` returned — render that.
    let spans = shared.svc.tracer().snapshot();
    let prefix = format!("q{query} ");
    let rendered = spans
        .iter()
        .find(|s| s.kind == "query" && s.detail.starts_with(&prefix))
        .map(|root| clip_rendered(TraceTree::assemble(&subtree(&spans, root.id)).render()))
        .unwrap_or_default();
    ServerMsg::InspectReply {
        query,
        found: phase.is_some() || !rendered.is_empty(),
        phase: phase.unwrap_or(QueryPhase::Queued).as_u8(),
        rendered,
    }
}

/// Pager thread body: join the query, then stream pages against credits.
/// While pages stream, the query lives in the registry as `Paging` (its
/// execution thread, MPL slot and grants are already gone).
fn page_results(
    shared: &ServerShared,
    writer: &Mutex<TcpStream>,
    query: u64,
    session: u64,
    handle: rqp_server::QueryHandle,
    credits: &Credits,
    stats: &Mutex<WireStats>,
) {
    let outcome = match handle.join() {
        Ok(o) => o,
        Err(e) => {
            // Failure frames are small and sent eagerly — a client blocked
            // in fetch() learns its fate without granting a credit.
            let _ = send(writer, &ServerMsg::Error { query, failure: failure_of(&e) });
            return;
        }
    };
    shared.svc.stats().begin_paging(query, session);
    stream_rows(shared, writer, query, outcome, credits, stats);
    shared.svc.stats().end_paging(query);
}

/// Stream one query's materialized rows against credits (module docs).
fn stream_rows(
    shared: &ServerShared,
    writer: &Mutex<TcpStream>,
    query: u64,
    outcome: rqp_server::QueryOutcome,
    credits: &Credits,
    stats: &Mutex<WireStats>,
) {
    let rows = outcome.rows;
    let total = rows.len();
    let mut sent = 0;
    // Rows per page, shrunk adaptively when wide rows push a page's
    // *encoded* size past the frame limit — the bound that matters is
    // bytes, not row count.
    let mut page_rows = PAGE_ROWS;
    // Pages encoded but not yet handed to the socket for THIS query; the
    // credit loop keeps it at 1, and the recorded peak proves it.
    let mut buffered: u64 = 0;
    while sent < total {
        if credits.would_block() {
            shared
                .svc
                .stats()
                .publish(query, "pager.stall", &format!("awaiting FETCH at {sent}/{total}"));
        }
        if !credits.acquire_one() {
            return; // connection torn down
        }
        // Encode exactly one page per held credit: at most one encoded page
        // per query exists at any instant, whatever the client does. If the
        // encoding fails or cannot fit a frame even at one row per page,
        // the stream MUST still terminate with an ERROR frame — a blocking
        // client is otherwise left waiting forever for a DONE that never
        // comes.
        let mut n = page_rows.min(total - sent);
        let (tag, payload) = loop {
            let msg = ServerMsg::Page { query, rows: rows[sent..sent + n].to_vec() };
            match msg.encode() {
                Ok((tag, payload)) if payload.len() <= MAX_PAYLOAD as usize => {
                    break (tag, payload)
                }
                Ok(_) if n > 1 => {
                    n /= 2;
                    page_rows = n;
                }
                Ok(_) => {
                    let e = RqpError::Protocol(format!(
                        "result row of query {query} exceeds the {MAX_PAYLOAD}-byte frame limit"
                    ));
                    let _ = send(writer, &ServerMsg::Error { query, failure: failure_of(&e) });
                    return;
                }
                Err(e) => {
                    let _ =
                        send(writer, &ServerMsg::Error { query, failure: failure_of(&e.into()) });
                    return;
                }
            }
        };
        buffered += 1;
        {
            let mut st = stats.lock().expect("stats lock");
            st.peak_buffered_pages = st.peak_buffered_pages.max(buffered);
            shared
                .svc
                .metrics()
                .gauge("wire.pages.peak_buffered")
                .set(st.peak_buffered_pages as f64);
        }
        let res = {
            let mut w = writer.lock().expect("writer lock");
            write_frame(&mut *w, tag, &payload)
        };
        if res.is_err() {
            // Socket-level failure: the connection is almost certainly dead,
            // but attempt a terminal ERROR anyway so a peer with a one-way
            // fault is not left hanging, then abandon the stream.
            let e = RqpError::Protocol(format!("failed to deliver a page of query {query}"));
            let _ = send(writer, &ServerMsg::Error { query, failure: failure_of(&e) });
            return;
        }
        buffered -= 1;
        shared
            .svc
            .stats()
            .publish(query, "pager.page", &format!("{n} rows at {sent}/{total}"));
        sent += n;
    }
    let _ = send(
        writer,
        &ServerMsg::Done {
            query,
            total_rows: total as u64,
            cost: outcome.cost,
            plan_cached: outcome.plan_cached,
        },
    );
}
