//! Binary payload codecs for the engine's structural types.
//!
//! A [`Writer`] appends big-endian primitives to a growable buffer; a
//! [`Reader`] is a checked cursor over a received payload. Reads are
//! *total*: every truncation, bad tag, or absurd length produces a
//! [`FrameError::Malformed`] — never a panic, and never an allocation
//! sized by an attacker-controlled length field (collections are grown
//! element by element, with each element read bounds-checked against the
//! remaining payload, so a claimed length of four billion fails on the
//! first missing byte instead of reserving memory up front).
//!
//! Recursive structures ([`Expr`]) carry an explicit depth limit
//! ([`MAX_EXPR_DEPTH`]) on both encode and decode: a deeply nested
//! hostile payload errors out instead of overflowing the stack.

use crate::frame::FrameError;
use rqp_common::expr::{ArithOp, CmpOp};
use rqp_common::{Expr, Row, Value};
use rqp_exec::{AggFunc, AggSpec};
use rqp_opt::{JoinEdge, QuerySpec};
use rqp_server::{LiveQueryStats, QueryPhase};
use rqp_telemetry::{MetricValue, MetricsSnapshot, RecordedEvent};

/// Maximum [`Expr`] nesting accepted on the wire.
pub const MAX_EXPR_DEPTH: usize = 64;

/// Maximum byte length of a single string on the wire (1 MiB).
pub const MAX_STR: u32 = 1024 * 1024;

type Result<T> = std::result::Result<T, FrameError>;

fn malformed(msg: impl Into<String>) -> FrameError {
    FrameError::Malformed(msg.into())
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Append-only payload builder (big-endian).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (big-endian).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a length-prefixed UTF-8 string. Mirrors [`Reader::str`]:
    /// strings over [`MAX_STR`] are rejected at encode time, so this side
    /// never emits a frame the peer is guaranteed to drop as malformed
    /// (and a ≥ 4 GiB string can never silently truncate its length).
    pub fn str(&mut self, s: &str) -> Result<()> {
        let len = u32::try_from(s.len())
            .map_err(|_| malformed(format!("string of {} bytes overflows u32", s.len())))?;
        if len > MAX_STR {
            return Err(malformed(format!("string of {len} bytes exceeds {MAX_STR}")));
        }
        self.u32(len);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    /// Append an `Option<f64>` (presence byte + value).
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }
}

/// Checked cursor over a received payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the whole payload was consumed — trailing garbage in a
    /// fixed-layout message means the peer and we disagree on the layout.
    pub fn finish(self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(malformed(format!("{} trailing bytes after message", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(malformed(format!(
                "need {n} bytes, {} remain in payload",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a big-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(malformed(format!("bool byte {b}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string. The length is validated against
    /// both [`MAX_STR`] and the remaining payload before any allocation.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()?;
        if len > MAX_STR {
            return Err(malformed(format!("string of {len} bytes exceeds {MAX_STR}")));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("invalid UTF-8 in string"))
    }

    /// Read an `Option<f64>`.
    pub fn opt_f64(&mut self) -> Result<Option<f64>> {
        Ok(if self.bool()? { Some(self.f64()?) } else { None })
    }
}

// ---------------------------------------------------------------------------
// Engine types
// ---------------------------------------------------------------------------

/// Encode a [`Value`]. Fails on a string value the wire cannot carry
/// (over [`MAX_STR`]), mirroring the decode-side bound.
pub fn put_value(w: &mut Writer, v: &Value) -> Result<()> {
    match v {
        Value::Null => w.u8(0),
        Value::Int(i) => {
            w.u8(1);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.u8(2);
            w.f64(*f);
        }
        Value::Str(s) => {
            w.u8(3);
            w.str(s)?;
        }
    }
    Ok(())
}

/// Decode a [`Value`].
pub fn get_value(r: &mut Reader) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Float(r.f64()?),
        3 => Value::Str(r.str()?),
        t => return Err(malformed(format!("value tag {t}"))),
    })
}

/// Encode a [`Row`].
pub fn put_row(w: &mut Writer, row: &Row) -> Result<()> {
    w.u32(row.len() as u32);
    for v in row {
        put_value(w, v)?;
    }
    Ok(())
}

/// Decode a [`Row`].
pub fn get_row(r: &mut Reader) -> Result<Row> {
    let n = r.u32()?;
    let mut row = Vec::new();
    for _ in 0..n {
        row.push(get_value(r)?);
    }
    Ok(row)
}

/// Encode a batch of rows.
pub fn put_rows(w: &mut Writer, rows: &[Row]) -> Result<()> {
    w.u32(rows.len() as u32);
    for row in rows {
        put_row(w, row)?;
    }
    Ok(())
}

/// Decode a batch of rows.
pub fn get_rows(r: &mut Reader) -> Result<Vec<Row>> {
    let n = r.u32()?;
    let mut rows = Vec::new();
    for _ in 0..n {
        rows.push(get_row(r)?);
    }
    Ok(rows)
}

fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_op_from(tag: u8) -> Result<CmpOp> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(malformed(format!("comparison operator tag {t}"))),
    })
}

fn arith_op_tag(op: ArithOp) -> u8 {
    match op {
        ArithOp::Add => 0,
        ArithOp::Sub => 1,
        ArithOp::Mul => 2,
    }
}

fn arith_op_from(tag: u8) -> Result<ArithOp> {
    Ok(match tag {
        0 => ArithOp::Add,
        1 => ArithOp::Sub,
        2 => ArithOp::Mul,
        t => return Err(malformed(format!("arithmetic operator tag {t}"))),
    })
}

/// Encode an [`Expr`]. Fails (rather than recursing unboundedly) past
/// [`MAX_EXPR_DEPTH`].
pub fn put_expr(w: &mut Writer, e: &Expr) -> Result<()> {
    put_expr_depth(w, e, 0)
}

fn put_expr_depth(w: &mut Writer, e: &Expr, depth: usize) -> Result<()> {
    if depth > MAX_EXPR_DEPTH {
        return Err(malformed(format!("expression deeper than {MAX_EXPR_DEPTH}")));
    }
    match e {
        Expr::Col(c) => {
            w.u8(0);
            w.str(c)?;
        }
        Expr::Lit(v) => {
            w.u8(1);
            put_value(w, v)?;
        }
        Expr::Cmp { op, lhs, rhs } => {
            w.u8(2);
            w.u8(cmp_op_tag(*op));
            put_expr_depth(w, lhs, depth + 1)?;
            put_expr_depth(w, rhs, depth + 1)?;
        }
        Expr::Between { expr, lo, hi } => {
            w.u8(3);
            put_expr_depth(w, expr, depth + 1)?;
            put_value(w, lo)?;
            put_value(w, hi)?;
        }
        Expr::InList { expr, list } => {
            w.u8(4);
            put_expr_depth(w, expr, depth + 1)?;
            w.u32(list.len() as u32);
            for v in list {
                put_value(w, v)?;
            }
        }
        Expr::And(v) => {
            w.u8(5);
            w.u32(v.len() as u32);
            for x in v {
                put_expr_depth(w, x, depth + 1)?;
            }
        }
        Expr::Or(v) => {
            w.u8(6);
            w.u32(v.len() as u32);
            for x in v {
                put_expr_depth(w, x, depth + 1)?;
            }
        }
        Expr::Not(x) => {
            w.u8(7);
            put_expr_depth(w, x, depth + 1)?;
        }
        Expr::Arith { op, lhs, rhs } => {
            w.u8(8);
            w.u8(arith_op_tag(*op));
            put_expr_depth(w, lhs, depth + 1)?;
            put_expr_depth(w, rhs, depth + 1)?;
        }
    }
    Ok(())
}

/// Decode an [`Expr`], enforcing [`MAX_EXPR_DEPTH`].
pub fn get_expr(r: &mut Reader) -> Result<Expr> {
    get_expr_depth(r, 0)
}

fn get_expr_depth(r: &mut Reader, depth: usize) -> Result<Expr> {
    if depth > MAX_EXPR_DEPTH {
        return Err(malformed(format!("expression deeper than {MAX_EXPR_DEPTH}")));
    }
    Ok(match r.u8()? {
        0 => Expr::Col(r.str()?),
        1 => Expr::Lit(get_value(r)?),
        2 => {
            let op = cmp_op_from(r.u8()?)?;
            let lhs = Box::new(get_expr_depth(r, depth + 1)?);
            let rhs = Box::new(get_expr_depth(r, depth + 1)?);
            Expr::Cmp { op, lhs, rhs }
        }
        3 => {
            let expr = Box::new(get_expr_depth(r, depth + 1)?);
            let lo = get_value(r)?;
            let hi = get_value(r)?;
            Expr::Between { expr, lo, hi }
        }
        4 => {
            let expr = Box::new(get_expr_depth(r, depth + 1)?);
            let n = r.u32()?;
            let mut list = Vec::new();
            for _ in 0..n {
                list.push(get_value(r)?);
            }
            Expr::InList { expr, list }
        }
        5 => {
            let n = r.u32()?;
            let mut v = Vec::new();
            for _ in 0..n {
                v.push(get_expr_depth(r, depth + 1)?);
            }
            Expr::And(v)
        }
        6 => {
            let n = r.u32()?;
            let mut v = Vec::new();
            for _ in 0..n {
                v.push(get_expr_depth(r, depth + 1)?);
            }
            Expr::Or(v)
        }
        7 => Expr::Not(Box::new(get_expr_depth(r, depth + 1)?)),
        8 => {
            let op = arith_op_from(r.u8()?)?;
            let lhs = Box::new(get_expr_depth(r, depth + 1)?);
            let rhs = Box::new(get_expr_depth(r, depth + 1)?);
            Expr::Arith { op, lhs, rhs }
        }
        t => return Err(malformed(format!("expression tag {t}"))),
    })
}

fn agg_func_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
    }
}

fn agg_func_from(tag: u8) -> Result<AggFunc> {
    Ok(match tag {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Avg,
        t => return Err(malformed(format!("aggregate function tag {t}"))),
    })
}

/// Encode a [`QuerySpec`]. Local predicates are emitted in sorted table
/// order so the same spec always encodes to the same bytes, whatever the
/// `HashMap` iteration order.
pub fn put_query_spec(w: &mut Writer, spec: &QuerySpec) -> Result<()> {
    w.u32(spec.tables.len() as u32);
    for t in &spec.tables {
        w.str(t)?;
    }
    let mut preds: Vec<(&String, &Expr)> = spec.local_preds.iter().collect();
    preds.sort_by_key(|(t, _)| (*t).clone());
    w.u32(preds.len() as u32);
    for (t, p) in preds {
        w.str(t)?;
        put_expr(w, p)?;
    }
    w.u32(spec.joins.len() as u32);
    for j in &spec.joins {
        w.str(&j.left_table)?;
        w.str(&j.left_col)?;
        w.str(&j.right_table)?;
        w.str(&j.right_col)?;
    }
    match &spec.projections {
        Some(cols) => {
            w.u8(1);
            w.u32(cols.len() as u32);
            for c in cols {
                w.str(c)?;
            }
        }
        None => w.u8(0),
    }
    w.u32(spec.group_by.len() as u32);
    for c in &spec.group_by {
        w.str(c)?;
    }
    w.u32(spec.aggs.len() as u32);
    for a in &spec.aggs {
        w.u8(agg_func_tag(a.func));
        match &a.col {
            Some(c) => {
                w.u8(1);
                w.str(c)?;
            }
            None => w.u8(0),
        }
        w.str(&a.alias)?;
    }
    w.u32(spec.order_by.len() as u32);
    for c in &spec.order_by {
        w.str(c)?;
    }
    match spec.limit {
        Some(n) => {
            w.u8(1);
            w.u64(n as u64);
        }
        None => w.u8(0),
    }
    Ok(())
}

/// Decode a [`QuerySpec`].
pub fn get_query_spec(r: &mut Reader) -> Result<QuerySpec> {
    let mut spec = QuerySpec::new();
    let n = r.u32()?;
    for _ in 0..n {
        spec.tables.push(r.str()?);
    }
    let n = r.u32()?;
    for _ in 0..n {
        let t = r.str()?;
        let p = get_expr(r)?;
        spec.local_preds.insert(t, p);
    }
    let n = r.u32()?;
    for _ in 0..n {
        let left_table = r.str()?;
        let left_col = r.str()?;
        let right_table = r.str()?;
        let right_col = r.str()?;
        spec.joins.push(JoinEdge::new(left_table, left_col, right_table, right_col));
    }
    if r.bool()? {
        let n = r.u32()?;
        let mut cols = Vec::new();
        for _ in 0..n {
            cols.push(r.str()?);
        }
        spec.projections = Some(cols);
    }
    let n = r.u32()?;
    for _ in 0..n {
        spec.group_by.push(r.str()?);
    }
    let n = r.u32()?;
    for _ in 0..n {
        let func = agg_func_from(r.u8()?)?;
        let col = if r.bool()? { Some(r.str()?) } else { None };
        let alias = r.str()?;
        spec.aggs.push(AggSpec { func, col, alias });
    }
    let n = r.u32()?;
    for _ in 0..n {
        spec.order_by.push(r.str()?);
    }
    if r.bool()? {
        spec.limit = Some(r.u64()? as usize);
    }
    Ok(spec)
}

// ---------------------------------------------------------------------------
// Introspection types (STATS / INSPECT / EVENTS payloads)
// ---------------------------------------------------------------------------

/// Encode a [`MetricValue`] (tag 0 = counter, 1 = gauge, 2 = histogram).
pub fn put_metric_value(w: &mut Writer, v: &MetricValue) -> Result<()> {
    match v {
        MetricValue::Counter(c) => {
            w.u8(0);
            w.u64(*c);
        }
        MetricValue::Gauge(g) => {
            w.u8(1);
            w.f64(*g);
        }
        MetricValue::Histogram { count, sum, max, buckets } => {
            w.u8(2);
            w.u64(*count);
            w.f64(*sum);
            w.f64(*max);
            w.u32(buckets.len() as u32);
            for (le, c) in buckets {
                w.f64(*le);
                w.u64(*c);
            }
        }
    }
    Ok(())
}

/// Decode a [`MetricValue`].
pub fn get_metric_value(r: &mut Reader) -> Result<MetricValue> {
    match r.u8()? {
        0 => Ok(MetricValue::Counter(r.u64()?)),
        1 => Ok(MetricValue::Gauge(r.f64()?)),
        2 => {
            let count = r.u64()?;
            let sum = r.f64()?;
            let max = r.f64()?;
            let n = r.u32()?;
            let mut buckets = Vec::new();
            for _ in 0..n {
                buckets.push((r.f64()?, r.u64()?));
            }
            Ok(MetricValue::Histogram { count, sum, max, buckets })
        }
        t => Err(malformed(format!("unknown metric value tag {t}"))),
    }
}

/// Encode a whole [`MetricsSnapshot`] (name + value pairs, in order).
pub fn put_metrics(w: &mut Writer, snap: &MetricsSnapshot) -> Result<()> {
    w.u32(snap.len() as u32);
    for (name, value) in snap {
        w.str(name)?;
        put_metric_value(w, value)?;
    }
    Ok(())
}

/// Decode a [`MetricsSnapshot`].
pub fn get_metrics(r: &mut Reader) -> Result<MetricsSnapshot> {
    let n = r.u32()?;
    let mut snap = Vec::new();
    for _ in 0..n {
        let name = r.str()?;
        let value = get_metric_value(r)?;
        snap.push((name, value));
    }
    Ok(snap)
}

/// Encode one in-flight query's live state.
pub fn put_live_query(w: &mut Writer, q: &LiveQueryStats) -> Result<()> {
    w.u64(q.query);
    w.u64(q.session);
    w.u8(q.priority);
    w.u8(q.phase.as_u8());
    w.f64(q.ticks);
    w.f64(q.granted);
    w.f64(q.share);
    w.opt_f64(q.deadline_remaining);
    Ok(())
}

/// Decode one in-flight query's live state.
pub fn get_live_query(r: &mut Reader) -> Result<LiveQueryStats> {
    Ok(LiveQueryStats {
        query: r.u64()?,
        session: r.u64()?,
        priority: r.u8()?,
        phase: QueryPhase::from_u8(r.u8()?),
        ticks: r.f64()?,
        granted: r.f64()?,
        share: r.f64()?,
        deadline_remaining: r.opt_f64()?,
    })
}

/// Encode a list of in-flight queries.
pub fn put_live_queries(w: &mut Writer, live: &[LiveQueryStats]) -> Result<()> {
    w.u32(live.len() as u32);
    for q in live {
        put_live_query(w, q)?;
    }
    Ok(())
}

/// Decode a list of in-flight queries.
pub fn get_live_queries(r: &mut Reader) -> Result<Vec<LiveQueryStats>> {
    let n = r.u32()?;
    let mut live = Vec::new();
    for _ in 0..n {
        live.push(get_live_query(r)?);
    }
    Ok(live)
}

/// Encode one flight-recorder event.
pub fn put_event(w: &mut Writer, e: &RecordedEvent) -> Result<()> {
    w.u64(e.seq);
    w.f64(e.at);
    w.u64(e.query);
    w.str(&e.kind)?;
    w.str(&e.detail)?;
    Ok(())
}

/// Decode one flight-recorder event.
pub fn get_event(r: &mut Reader) -> Result<RecordedEvent> {
    Ok(RecordedEvent {
        seq: r.u64()?,
        at: r.f64()?,
        query: r.u64()?,
        kind: r.str()?,
        detail: r.str()?,
    })
}

/// Encode a flight-recorder event batch.
pub fn put_events(w: &mut Writer, events: &[RecordedEvent]) -> Result<()> {
    w.u32(events.len() as u32);
    for e in events {
        put_event(w, e)?;
    }
    Ok(())
}

/// Decode a flight-recorder event batch.
pub fn get_events(r: &mut Reader) -> Result<Vec<RecordedEvent>> {
    let n = r.u32()?;
    let mut events = Vec::new();
    for _ in 0..n {
        events.push(get_event(r)?);
    }
    Ok(events)
}

/// Canonical FNV-1a checksum of a row batch over its wire encoding — the
/// result-identity currency of the wire experiments: a client-side checksum
/// equal to the server-side solo checksum proves bit-identical rows without
/// shipping the rows back again.
///
/// A batch that cannot legally encode (a string over [`MAX_STR`]) can never
/// cross the wire either, so no remote checksum can exist to compare it
/// against; the failure is folded into the hash deterministically instead
/// of making every comparison site fallible.
pub fn rows_checksum(rows: &[Row]) -> u64 {
    let mut w = Writer::new();
    let err = put_rows(&mut w, rows).err();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(&w.into_bytes());
    if let Some(e) = err {
        mix(e.to_string().as_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};

    fn sample_spec() -> QuerySpec {
        QuerySpec::new()
            .table("lineitem")
            .join("lineitem", "orderkey", "orders", "orderkey")
            .filter(
                "lineitem",
                col("lineitem.shipdate")
                    .between(10i64, 400i64)
                    .and(col("lineitem.discount").lt(lit(0.05)))
                    .and(col("lineitem.flag").in_list(vec![
                        Value::Str("A".into()),
                        Value::Null,
                    ]))
                    .and(col("lineitem.qty").mul(lit(2i64)).gt(lit(7i64)).not()),
            )
            .filter("orders", col("orders.seg").eq(lit(1i64)))
            .project(&["lineitem.shipdate", "orders.seg"])
            .aggregate(
                &["orders.seg"],
                vec![
                    AggSpec::count_star("n"),
                    AggSpec::on(AggFunc::Avg, "lineitem.discount", "avg_disc"),
                ],
            )
            .order(&["orders.seg"])
            .limit(10)
    }

    #[test]
    fn query_spec_round_trips_via_cache_key() {
        let spec = sample_spec();
        let mut w = Writer::new();
        put_query_spec(&mut w, &spec).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = get_query_spec(&mut r).unwrap();
        r.finish().unwrap();
        // cache_key covers tables, predicates, joins, projections, grouping,
        // aggregates, ordering and limit — equality of keys is structural
        // equality of everything the planner sees.
        assert_eq!(spec.cache_key(), back.cache_key());
    }

    #[test]
    fn values_and_rows_round_trip() {
        let row: Row = vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(-0.125),
            Value::Str("héllo".into()),
        ];
        let mut w = Writer::new();
        put_rows(&mut w, &[row.clone(), row.clone()]).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = get_rows(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, vec![row.clone(), row]);
    }

    #[test]
    fn introspection_payloads_round_trip_and_reject_truncation() {
        let metrics: MetricsSnapshot = vec![
            ("wire.connections".into(), MetricValue::Counter(3)),
            ("server.live.reserved".into(), MetricValue::Gauge(1234.5)),
            (
                "wire.page.rows".into(),
                MetricValue::Histogram {
                    count: 4,
                    sum: 700.0,
                    max: 256.0,
                    buckets: vec![(2.0, 1), (256.0, 3)],
                },
            ),
        ];
        let live = vec![
            LiveQueryStats {
                query: 7,
                session: 2,
                priority: 1,
                phase: QueryPhase::Running,
                ticks: 123.0,
                granted: 500.0,
                share: 2_500.0,
                deadline_remaining: Some(77.0),
            },
            LiveQueryStats {
                query: 9,
                session: 3,
                priority: 0,
                phase: QueryPhase::Paging,
                ticks: 0.0,
                granted: 0.0,
                share: 0.0,
                deadline_remaining: None,
            },
        ];
        let events = vec![
            RecordedEvent {
                seq: 41,
                at: 1.5,
                query: 7,
                kind: "admission.admit".into(),
                detail: "running 2 of mpl 4".into(),
            },
            RecordedEvent { seq: 42, at: 1.6, query: 0, kind: "pager.stall".into(), detail: String::new() },
        ];
        let mut w = Writer::new();
        put_metrics(&mut w, &metrics).unwrap();
        put_live_queries(&mut w, &live).unwrap();
        put_events(&mut w, &events).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_metrics(&mut r).unwrap(), metrics);
        assert_eq!(get_live_queries(&mut r).unwrap(), live);
        assert_eq!(get_events(&mut r).unwrap(), events);
        r.finish().unwrap();
        // Every truncation point fails with a typed error, never a panic.
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let res = get_metrics(&mut r)
                .and_then(|_| get_live_queries(&mut r))
                .and_then(|_| get_events(&mut r))
                .and_then(|_| r.finish());
            assert!(res.is_err(), "truncation at {cut} must not decode");
        }
        // Unknown metric-value tags are malformed, not panics.
        let mut w = Writer::new();
        w.u8(9);
        let bytes = w.into_bytes();
        assert!(get_metric_value(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn truncated_payloads_are_typed_not_panics() {
        let mut w = Writer::new();
        put_query_spec(&mut w, &sample_spec()).unwrap();
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let res = get_query_spec(&mut r).and_then(|_| r.finish());
            assert!(res.is_err(), "truncation at {cut} must not decode");
        }
    }

    #[test]
    fn adversarial_lengths_do_not_overallocate() {
        // A rows batch claiming u32::MAX rows with a 5-byte body: the decoder
        // must fail on the first missing byte, not reserve gigabytes.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        w.u8(0); // one Null value, then nothing
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(get_rows(&mut r).is_err());
        // A string claiming MAX_STR+1 bytes is rejected before allocation.
        let mut w = Writer::new();
        w.u32(MAX_STR + 1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.str().is_err());
    }

    #[test]
    fn oversized_strings_are_rejected_at_encode_time_too() {
        // Writer::str mirrors Reader::str: a string the peer would reject
        // as malformed never makes it into a payload in the first place.
        let big = "x".repeat(MAX_STR as usize + 1);
        let mut w = Writer::new();
        assert!(w.str(&big).is_err());
        let mut w = Writer::new();
        assert!(put_value(&mut w, &Value::Str(big.clone())).is_err());
        let mut w = Writer::new();
        assert!(put_rows(&mut w, &[vec![Value::Str(big.clone())]]).is_err());
        // And rows_checksum stays total: the unencodable batch still hashes
        // (to something different from a near-miss legal batch).
        let legal = vec![vec![Value::Str("x".repeat(MAX_STR as usize))]];
        assert_ne!(rows_checksum(&[vec![Value::Str(big)]]), rows_checksum(&legal));
        // Exactly MAX_STR is fine on both sides.
        let mut w = Writer::new();
        put_rows(&mut w, &legal).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_rows(&mut r).unwrap(), legal);
    }

    #[test]
    fn hostile_deep_expression_hits_the_depth_limit() {
        // Not(Not(Not(... Col))) deeper than the limit, hand-encoded so the
        // encoder's own limit can't refuse to produce it.
        let mut w = Writer::new();
        for _ in 0..(MAX_EXPR_DEPTH + 2) {
            w.u8(7); // Not
        }
        w.u8(0);
        w.str("c").unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = get_expr(&mut r).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err:?}");

        // And the encoder refuses the same shape.
        let mut e = col("c");
        for _ in 0..(MAX_EXPR_DEPTH + 2) {
            e = e.not();
        }
        let mut w = Writer::new();
        assert!(put_expr(&mut w, &e).is_err());
    }

    #[test]
    fn byte_soup_decodes_to_typed_errors() {
        let mut state = 0xdeadbeefdeadbeefu64;
        for trial in 0..256 {
            let mut bytes = Vec::new();
            for _ in 0..(trial % 40) {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                bytes.push((state >> 56) as u8);
            }
            let mut r = Reader::new(&bytes);
            let _ = get_query_spec(&mut r); // must not panic
            let mut r = Reader::new(&bytes);
            let _ = get_expr(&mut r);
            let mut r = Reader::new(&bytes);
            let _ = get_rows(&mut r);
        }
    }
}
