//! The load generator's deterministic query menu, shared between the
//! `rqp-loadgen` worker processes and any driver (the A07 experiment) that
//! wants to verify their reported result checksums: both sides derive the
//! same `(seed, client, index) → menu entry` mapping, so a checksum printed
//! by a worker process can be checked against a solo run without the rows
//! ever being re-shipped.

use rqp_opt::QuerySpec;
use rqp_workload::{tpch::TpchParams, TpchDb};

/// The deterministic query menu. Spec construction only needs the TPC-H
/// *parameters*, so the throwaway 64-row database is just a spec factory —
/// menu builders never materialize real data.
pub fn menu() -> Vec<QuerySpec> {
    let db = TpchDb::build(TpchParams { lineitem_rows: 64, ..Default::default() }, 1);
    vec![db.q1(30), db.q3(1, 400), db.q6(100, 0.05, 30), db.q1(90)]
}

/// Menu index for `(seed, client, query index)` — a splitmix64-style hash,
/// identical in every process that knows the seed.
pub fn menu_index(seed: u64, client: usize, q: usize, menu_len: usize) -> usize {
    let mut x = seed ^ ((client as u64) << 32) ^ (q as u64);
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)) as usize % menu_len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn menu_index_is_deterministic_and_in_range() {
        for client in 0..8 {
            for q in 0..8 {
                let a = menu_index(7, client, q, 4);
                let b = menu_index(7, client, q, 4);
                assert_eq!(a, b);
                assert!(a < 4);
            }
        }
        // Different seeds shuffle the assignment somewhere.
        let with_7: Vec<_> = (0..16).map(|q| menu_index(7, 0, q, 4)).collect();
        let with_8: Vec<_> = (0..16).map(|q| menu_index(8, 0, q, 4)).collect();
        assert_ne!(with_7, with_8, "seed must influence the menu draw");
    }
}
