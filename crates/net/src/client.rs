//! Blocking wire client.
//!
//! [`WireClient`] drives the client side of the protocol in lockstep:
//! connect + HELLO, then per query SUBMIT → FETCH (granting credits and
//! draining pages) → DONE/ERROR. Because the server only sends pages
//! against credits this client granted, and this client grants credits for
//! one query at a time, no demultiplexing is needed — every frame read
//! belongs to the conversation in progress.

use crate::frame::{read_frame, write_frame};
use crate::proto::{ClientMsg, RemoteFailure, ServerMsg, WireQueryOptions, WireSubscribeOptions};
use rqp_common::{Row, RqpError};
use rqp_opt::QuerySpec;
use rqp_server::{LiveQueryStats, QueryPhase};
use rqp_telemetry::{EventTail, MetricsSnapshot};
use std::collections::HashMap;
use std::net::TcpStream;

/// Credits granted per FETCH round trip.
const FETCH_CREDITS: u32 = 4;

/// The fully-drained result of one remote query.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteOutcome {
    /// Service-wide query id.
    pub query: u64,
    /// All result rows, page-assembled in order.
    pub rows: Vec<Row>,
    /// Cost charged to the query's virtual clock.
    pub cost: f64,
    /// Whether the server served the plan from its plan cache.
    pub plan_cached: bool,
}

/// One assembled delta from a subscription poll: the view changed by
/// retracting `retracted` and inserting `inserted`, as of changelog
/// `epoch`. Chunked DELTA frames are re-joined client-side, so a packet
/// of any size comes back whole.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RemoteDelta {
    /// Changelog epoch the maintained view now reflects.
    pub epoch: u64,
    /// Rows entering the view (with multiplicity).
    pub inserted: Vec<Row>,
    /// Rows leaving the view (with multiplicity).
    pub retracted: Vec<Row>,
}

/// A STATS reply: the server's metrics registry plus every in-flight
/// query's live state, as one consistent-enough snapshot (gauges are
/// refreshed server-side immediately before the snapshot is taken).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSnapshot {
    /// Service metrics, in registration order.
    pub metrics: MetricsSnapshot,
    /// In-flight queries, ordered by query id.
    pub live: Vec<LiveQueryStats>,
}

/// An INSPECT reply: the live (or final) `EXPLAIN ANALYZE` of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectOutcome {
    /// Whether the server knew the query id at all.
    pub found: bool,
    /// The query's phase at snapshot time (meaningful while in flight).
    pub phase: QueryPhase,
    /// Rendered span tree, possibly truncated server-side; empty while
    /// the query is queued (nothing has executed yet).
    pub rendered: String,
}

/// A blocking connection to a [`WireServer`](crate::WireServer).
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    session: u64,
    /// Failures the server reported eagerly for queries other than the one
    /// currently being driven (failure frames need no credit, so with
    /// several queries in flight — open-loop submission — they can arrive
    /// early). Consumed by the matching [`fetch`](Self::fetch).
    stashed_failures: HashMap<u64, RemoteFailure>,
}

impl WireClient {
    /// Connect to `addr` and open a session with the given admission
    /// priority (0 = highest).
    pub fn connect(addr: &str, priority: u8) -> Result<WireClient, RqpError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| RqpError::Protocol(format!("connect {addr}: {e}")))?;
        let mut client = WireClient { stream, session: 0, stashed_failures: HashMap::new() };
        client.send(&ClientMsg::Hello { priority })?;
        match client.recv()? {
            ServerMsg::HelloAck { session } => {
                client.session = session;
                Ok(client)
            }
            ServerMsg::Error { failure, .. } => Err(RqpError::Protocol(failure.to_string())),
            other => Err(RqpError::Protocol(format!("expected HELLO_ACK, got {other:?}"))),
        }
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Submit a query; returns its service-wide query id.
    pub fn submit(
        &mut self,
        spec: &QuerySpec,
        opts: WireQueryOptions,
    ) -> Result<u64, RqpError> {
        self.send(&ClientMsg::Submit { spec: spec.clone(), opts })?;
        loop {
            match self.recv()? {
                ServerMsg::SubmitAck { query } => return Ok(query),
                ServerMsg::Error { query: 0, failure } => {
                    return Err(RqpError::Protocol(failure.to_string()))
                }
                // An earlier in-flight query failed while we were waiting
                // for the ack; stash its failure for that query's fetch.
                ServerMsg::Error { query, failure } => {
                    self.stashed_failures.insert(query, failure);
                }
                other => {
                    return Err(RqpError::Protocol(format!(
                        "expected SUBMIT_ACK, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Drain `query` to completion: grant credits, collect pages, and
    /// return the assembled outcome — or the server-reported failure with
    /// its stable wire code.
    pub fn fetch(
        &mut self,
        query: u64,
    ) -> Result<Result<RemoteOutcome, RemoteFailure>, RqpError> {
        if let Some(failure) = self.stashed_failures.remove(&query) {
            return Ok(Err(failure));
        }
        let mut rows: Vec<Row> = Vec::new();
        let mut outstanding: u32 = 0;
        loop {
            if outstanding == 0 {
                self.send(&ClientMsg::Fetch { query, credits: FETCH_CREDITS })?;
                outstanding = FETCH_CREDITS;
            }
            match self.recv()? {
                ServerMsg::Page { query: q, rows: page } if q == query => {
                    rows.extend(page);
                    outstanding = outstanding.saturating_sub(1);
                }
                ServerMsg::Done { query: q, total_rows, cost, plan_cached } if q == query => {
                    if rows.len() as u64 != total_rows {
                        return Err(RqpError::Protocol(format!(
                            "server reported {total_rows} rows, received {}",
                            rows.len()
                        )));
                    }
                    return Ok(Ok(RemoteOutcome { query, rows, cost, plan_cached }));
                }
                ServerMsg::Error { query: q, failure } if q == query || q == 0 => {
                    return Ok(Err(failure));
                }
                ServerMsg::Error { query: q, failure } => {
                    self.stashed_failures.insert(q, failure);
                }
                other => {
                    return Err(RqpError::Protocol(format!(
                        "unexpected frame while fetching query {query}: {other:?}"
                    )));
                }
            }
        }
    }

    /// Grant exactly `credits` pages for `query` without waiting for
    /// completion — the building block of slow-consumer tests.
    pub fn fetch_partial(
        &mut self,
        query: u64,
        credits: u32,
    ) -> Result<Vec<Row>, RqpError> {
        self.send(&ClientMsg::Fetch { query, credits })?;
        let mut rows = Vec::new();
        for _ in 0..credits {
            match self.recv()? {
                ServerMsg::Page { query: q, rows: page } if q == query => rows.extend(page),
                ServerMsg::Done { .. } => break,
                ServerMsg::Error { failure, .. } => {
                    return Err(RqpError::Protocol(failure.to_string()))
                }
                other => {
                    return Err(RqpError::Protocol(format!("unexpected frame: {other:?}")))
                }
            }
        }
        Ok(rows)
    }

    /// Request cooperative cancellation of `query` (fire-and-forget).
    pub fn cancel(&mut self, query: u64) -> Result<(), RqpError> {
        self.send(&ClientMsg::Cancel { query })
    }

    /// Close the session cleanly (GOODBYE / GOODBYE_ACK).
    pub fn goodbye(mut self) -> Result<(), RqpError> {
        self.send(&ClientMsg::Goodbye)?;
        match self.recv()? {
            ServerMsg::GoodbyeAck => Ok(()),
            other => Err(RqpError::Protocol(format!("expected GOODBYE_ACK, got {other:?}"))),
        }
    }

    /// Snapshot the server's metrics and in-flight queries (STATS).
    ///
    /// Like all three introspection calls, this runs in lockstep on this
    /// connection: call it only when no query frames are outstanding here.
    /// Observers (`rqp-top`, loadgen `--observe`) use a dedicated
    /// connection so they never interleave with a query conversation.
    pub fn stats(&mut self) -> Result<ServiceSnapshot, RqpError> {
        self.send(&ClientMsg::Stats)?;
        match self.recv()? {
            ServerMsg::StatsReply { metrics, live } => Ok(ServiceSnapshot { metrics, live }),
            ServerMsg::Error { failure, .. } => Err(RqpError::Protocol(failure.to_string())),
            other => Err(RqpError::Protocol(format!("expected STATS_REPLY, got {other:?}"))),
        }
    }

    /// Live `EXPLAIN ANALYZE` of `query` (INSPECT): its span tree so far
    /// if running, its final tree if already completed.
    pub fn inspect(&mut self, query: u64) -> Result<InspectOutcome, RqpError> {
        self.send(&ClientMsg::Inspect { query })?;
        match self.recv()? {
            ServerMsg::InspectReply { found, phase, rendered, .. } => {
                Ok(InspectOutcome { found, phase: QueryPhase::from_u8(phase), rendered })
            }
            ServerMsg::Error { failure, .. } => Err(RqpError::Protocol(failure.to_string())),
            other => {
                Err(RqpError::Protocol(format!("expected INSPECT_REPLY, got {other:?}")))
            }
        }
    }

    /// Tail the server's flight recorder from `cursor` (EVENTS), up to
    /// `max` events. Resume from the returned `next_cursor`; a non-zero
    /// `gap` means the ring overwrote events this reader never saw.
    pub fn events(&mut self, cursor: u64, max: u32) -> Result<EventTail, RqpError> {
        self.send(&ClientMsg::Events { cursor, max })?;
        match self.recv()? {
            ServerMsg::EventsReply { events, next_cursor, gap } => {
                Ok(EventTail { events, next_cursor, gap })
            }
            ServerMsg::Error { failure, .. } => Err(RqpError::Protocol(failure.to_string())),
            other => Err(RqpError::Protocol(format!("expected EVENTS_REPLY, got {other:?}"))),
        }
    }

    /// Register a standing subscription (SUBSCRIBE); returns its
    /// service-wide id. The initial view is loaded server-side; deltas
    /// arrive only when [`poll_sub`](Self::poll_sub) asks for them.
    pub fn subscribe(
        &mut self,
        spec: &QuerySpec,
        opts: WireSubscribeOptions,
    ) -> Result<u64, RqpError> {
        self.send(&ClientMsg::Subscribe { spec: spec.clone(), opts })?;
        match self.recv()? {
            ServerMsg::SubAck { sub } => Ok(sub),
            ServerMsg::Error { failure, .. } => Err(RqpError::Protocol(failure.to_string())),
            other => Err(RqpError::Protocol(format!("expected SUB_ACK, got {other:?}"))),
        }
    }

    /// Tear down subscription `sub` (UNSUBSCRIBE). Idempotent from the
    /// caller's point of view: an id the server no longer knows comes back
    /// as a remote failure, not a protocol error.
    pub fn unsubscribe(
        &mut self,
        sub: u64,
    ) -> Result<Result<(), RemoteFailure>, RqpError> {
        self.send(&ClientMsg::Unsubscribe { sub })?;
        match self.recv()? {
            ServerMsg::SubDone { sub: s, .. } if s == sub => Ok(Ok(())),
            ServerMsg::Error { failure, .. } => Ok(Err(failure)),
            other => Err(RqpError::Protocol(format!("expected SUB_DONE, got {other:?}"))),
        }
    }

    /// Poll subscription `sub` for its next delta (POLL): applies up to
    /// `max_records` changelog records server-side (0 = all pending) and
    /// assembles the chunked DELTA frames into one [`RemoteDelta`]. Also
    /// returns the remaining changelog lag — non-zero means another poll
    /// has work waiting. Failures (cancelled, deadline, torn down) come
    /// back with their stable wire code.
    pub fn poll_sub(
        &mut self,
        sub: u64,
        max_records: u32,
    ) -> Result<Result<(RemoteDelta, u64), RemoteFailure>, RqpError> {
        self.send(&ClientMsg::Poll { sub, max_records })?;
        let mut delta = RemoteDelta::default();
        loop {
            match self.recv()? {
                ServerMsg::Delta { sub: s, epoch, inserted, retracted } if s == sub => {
                    delta.epoch = epoch;
                    delta.inserted.extend(inserted);
                    delta.retracted.extend(retracted);
                }
                ServerMsg::SubDone { sub: s, lag } if s == sub => {
                    return Ok(Ok((delta, lag)));
                }
                ServerMsg::Error { query: q, failure } if q == sub || q == 0 => {
                    return Ok(Err(failure));
                }
                other => {
                    return Err(RqpError::Protocol(format!(
                        "unexpected frame while polling subscription {sub}: {other:?}"
                    )));
                }
            }
        }
    }

    /// Append rows to a base table (APPEND); returns the changelog epoch
    /// after the append. Standing subscriptions over the table pick the
    /// rows up at their next poll.
    pub fn append(
        &mut self,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<Result<u64, RemoteFailure>, RqpError> {
        self.send(&ClientMsg::Append { table: table.into(), rows })?;
        match self.recv()? {
            ServerMsg::AppendAck { epoch } => Ok(Ok(epoch)),
            ServerMsg::Error { failure, .. } => Ok(Err(failure)),
            other => Err(RqpError::Protocol(format!("expected APPEND_ACK, got {other:?}"))),
        }
    }

    /// Convenience: submit and fully drain in one call.
    pub fn run(
        &mut self,
        spec: &QuerySpec,
        opts: WireQueryOptions,
    ) -> Result<Result<RemoteOutcome, RemoteFailure>, RqpError> {
        let query = self.submit(spec, opts)?;
        self.fetch(query)
    }

    fn send(&mut self, msg: &ClientMsg) -> Result<(), RqpError> {
        let (tag, payload) = msg.encode().map_err(RqpError::from)?;
        write_frame(&mut self.stream, tag, &payload).map_err(RqpError::from)
    }

    fn recv(&mut self) -> Result<ServerMsg, RqpError> {
        match read_frame(&mut self.stream) {
            Ok(Some(frame)) => ServerMsg::decode(&frame).map_err(RqpError::from),
            Ok(None) => Err(RqpError::Protocol("server closed the connection".into())),
            Err(e) => Err(e.into()),
        }
    }
}
