//! # rqp-net
//!
//! TCP front door for the rqp query service: a dependency-free,
//! length-prefixed binary wire protocol in front of
//! [`rqp_server::QueryService`].
//!
//! * [`frame`] — the frame layer: magic, version, type, length, payload;
//!   total decoding with typed [`frame::FrameError`]s and a hard payload
//!   bound checked before allocation;
//! * [`wire`] — binary codecs for the engine's structural types
//!   ([`rqp_opt::QuerySpec`], [`rqp_common::Expr`], [`rqp_common::Value`],
//!   rows) with checked cursors and recursion-depth limits;
//! * [`proto`] — the typed message set (HELLO/SUBMIT/FETCH/CANCEL/GOODBYE
//!   for one-shot queries, SUBSCRIBE/UNSUBSCRIBE/POLL/APPEND for standing
//!   subscriptions, and their server-side answers) plus
//!   [`proto::RemoteFailure`], the stable-code error report;
//! * [`server`] — [`server::WireServer`]: thread-per-connection serving
//!   with per-query pager threads and credit-based result paging (a
//!   stalled client holds at most one encoded page, never broker memory);
//! * [`client`] — [`client::WireClient`]: a blocking lockstep client.
//!
//! Beyond the query conversation, three read-only introspection frames —
//! STATS, INSPECT, EVENTS — are answered inline and bypass admission, so
//! an observer connection never competes with the workload it watches.
//! They feed the `rqp-top` live dashboard and the A08 observer-overhead
//! experiment.
//!
//! The `rqp-netserver` binary stands a server over a generated TPC-H-like
//! database; `rqp-loadgen` spawns N real client *processes* against it
//! (open/closed-loop arrival, priority mix, optional mid-query
//! disconnects, `--subscribe` for standing-subscription churn) — the
//! workload driver of the A07 experiment.
//!
//! See DESIGN.md ("Wire protocol") for the byte-level specification.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod wire;

pub use client::{InspectOutcome, RemoteDelta, RemoteOutcome, ServiceSnapshot, WireClient};
pub use frame::{Frame, FrameError, MAGIC, MAX_PAYLOAD, VERSION};
pub use proto::{ClientMsg, RemoteFailure, ServerMsg, WireQueryOptions, WireSubscribeOptions};
pub use server::{WireServer, WireStats, PAGE_ROWS};
pub use wire::rows_checksum;
