//! Typed wire messages on top of the frame layer.
//!
//! The conversation is strictly client-driven: the server only ever writes
//! in response to client frames (HELLO → HELLO_ACK, SUBMIT → SUBMIT_ACK,
//! FETCH credits → up to that many PAGE frames then DONE/ERROR, CANCEL is
//! fire-and-forget, GOODBYE → GOODBYE_ACK). Because result pages flow only
//! against explicitly granted credits, a client that stops fetching stops
//! *receiving* — its query's remaining rows wait server-side in their
//! already-accounted result buffer, and no unbounded queue of encoded
//! frames builds up (see `server`).
//!
//! Errors travel as a stable numeric code from
//! [`RqpError::wire_code`](rqp_common::RqpError::wire_code) plus the display
//! message, so clients classify failures by code — never by matching
//! message strings.

use crate::frame::{Frame, FrameError};
use crate::wire::{self, Reader, Writer};
use rqp_common::Row;
use rqp_opt::QuerySpec;
use rqp_server::LiveQueryStats;
use rqp_telemetry::{MetricsSnapshot, RecordedEvent};

type Result<T> = std::result::Result<T, FrameError>;

// Client → server message type tags.
const T_HELLO: u8 = 1;
const T_SUBMIT: u8 = 2;
const T_FETCH: u8 = 3;
const T_CANCEL: u8 = 4;
const T_GOODBYE: u8 = 5;
const T_STATS: u8 = 6;
const T_INSPECT: u8 = 7;
const T_EVENTS: u8 = 8;
const T_SUBSCRIBE: u8 = 9;
const T_UNSUBSCRIBE: u8 = 10;
const T_POLL: u8 = 11;
const T_APPEND: u8 = 12;

// Server → client message type tags.
const T_HELLO_ACK: u8 = 16;
const T_SUBMIT_ACK: u8 = 17;
const T_PAGE: u8 = 18;
const T_DONE: u8 = 19;
const T_ERROR: u8 = 20;
const T_GOODBYE_ACK: u8 = 21;
const T_STATS_REPLY: u8 = 22;
const T_INSPECT_REPLY: u8 = 23;
const T_EVENTS_REPLY: u8 = 24;
const T_SUB_ACK: u8 = 25;
const T_DELTA: u8 = 26;
const T_SUB_DONE: u8 = 27;
const T_APPEND_ACK: u8 = 28;

/// Per-query submission options carried on the wire; mirrors
/// [`rqp_server::QueryOptions`] field for field.
#[derive(Debug, Clone, PartialEq)]
pub struct WireQueryOptions {
    /// Admission priority override (0 = highest); `None` uses the session's.
    pub priority: Option<u8>,
    /// Deadline in cost units on the query's virtual clock.
    pub deadline: Option<f64>,
    /// Workspace reservation ask in rows.
    pub reservation: Option<f64>,
    /// Virtual arrival time for the deterministic schedule replay.
    pub arrival: f64,
    /// Processor-sharing weight in the schedule replay.
    pub weight: f64,
}

impl Default for WireQueryOptions {
    fn default() -> Self {
        WireQueryOptions {
            priority: None,
            deadline: None,
            reservation: None,
            arrival: 0.0,
            weight: 1.0,
        }
    }
}

impl From<WireQueryOptions> for rqp_server::QueryOptions {
    fn from(w: WireQueryOptions) -> Self {
        rqp_server::QueryOptions {
            priority: w.priority,
            deadline: w.deadline,
            reservation: w.reservation,
            arrival: w.arrival,
            weight: w.weight,
        }
    }
}

/// Subscription registration options carried on the wire; mirrors
/// [`rqp_server::SubscribeOptions`] field for field.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireSubscribeOptions {
    /// Admission-priority override for polls (0 = highest).
    pub priority: Option<u8>,
    /// Workspace reservation ask in rows.
    pub reservation: Option<f64>,
    /// Propagation-cost deadline on the subscription's clock.
    pub deadline: Option<f64>,
}

impl From<WireSubscribeOptions> for rqp_server::SubscribeOptions {
    fn from(w: WireSubscribeOptions) -> Self {
        rqp_server::SubscribeOptions {
            priority: w.priority,
            reservation: w.reservation,
            deadline: w.deadline,
        }
    }
}

/// A remote failure as reported by the server: the stable wire code of the
/// underlying [`RqpError`](rqp_common::RqpError) plus its display message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteFailure {
    /// Stable numeric code ([`RqpError::wire_code`](rqp_common::RqpError::wire_code)).
    pub code: u16,
    /// Human-readable message (display form of the server-side error).
    pub message: String,
}

impl RemoteFailure {
    /// The variant name behind [`code`](Self::code), if the code is known.
    pub fn name(&self) -> Option<&'static str> {
        rqp_common::RqpError::wire_code_name(self.code)
    }

    /// Whether the failure is a cooperative cancellation (explicit cancel or
    /// deadline abort) — classified *by code*, not by message text.
    pub fn is_cancellation(&self) -> bool {
        matches!(self.name(), Some("Cancelled") | Some("DeadlineExceeded"))
    }
}

impl std::fmt::Display for RemoteFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "remote error {} ({}): {}",
            self.code,
            self.name().unwrap_or("unknown"),
            self.message
        )
    }
}

/// Client → server messages.
///
/// `Submit` dominates the enum size through its inline `QuerySpec`, but
/// messages are decoded one at a time per connection and matched on
/// immediately — never collected — so the indirection a `Box` would buy
/// has nothing to amortize.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ClientMsg {
    /// Open a session with the given default admission priority.
    Hello {
        /// Session priority (0 = highest).
        priority: u8,
    },
    /// Submit a query for concurrent execution.
    Submit {
        /// The query.
        spec: QuerySpec,
        /// Submission options.
        opts: WireQueryOptions,
    },
    /// Grant `credits` more result pages for `query`.
    Fetch {
        /// Target query id (from `SubmitAck`).
        query: u64,
        /// Number of additional pages the client is ready to receive.
        credits: u32,
    },
    /// Cooperatively cancel `query`.
    Cancel {
        /// Target query id.
        query: u64,
    },
    /// Close the session cleanly.
    Goodbye,
    /// Read-only gauge snapshot (service metrics + in-flight queries).
    /// Answered inline, bypassing admission; no HELLO required.
    Stats,
    /// Live `EXPLAIN ANALYZE` of an in-flight query's span tree so far.
    /// Answered inline, bypassing admission; no HELLO required.
    Inspect {
        /// Target query id.
        query: u64,
    },
    /// Tail the flight recorder from a sequence-number cursor. Answered
    /// inline, bypassing admission; no HELLO required.
    Events {
        /// Resume cursor (0 = oldest retained event).
        cursor: u64,
        /// Maximum events in one reply (bounds the frame size; poll again
        /// from the returned cursor for more).
        max: u32,
    },
    /// Register a standing subscription (requires HELLO; owned by the
    /// session, torn down with it).
    Subscribe {
        /// The query to maintain incrementally. `ORDER BY`/`LIMIT` specs
        /// are rejected — standing views are unordered.
        spec: QuerySpec,
        /// Registration options.
        opts: WireSubscribeOptions,
    },
    /// Tear down a subscription this session owns.
    Unsubscribe {
        /// Subscription id (from `SubAck`).
        sub: u64,
    },
    /// Advance a subscription: fold pending changelog records through its
    /// circuit and stream the resulting delta. Deltas flow only in answer
    /// to POLL — the same client-driven discipline as FETCH credits — so a
    /// stalled subscriber has at most one encoded delta page outstanding.
    Poll {
        /// Subscription id.
        sub: u64,
        /// Changelog-record budget for this poll (0 = drain everything);
        /// leftover records are reported as `lag` in `SubDone`.
        max_records: u32,
    },
    /// Append rows to a base table (requires HELLO), feeding every
    /// standing subscription through the service changelog.
    Append {
        /// Target table name.
        table: String,
        /// Rows to append; arity-checked server-side.
        rows: Vec<Row>,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Session opened.
    HelloAck {
        /// Server-assigned session id.
        session: u64,
    },
    /// Query accepted and submitted.
    SubmitAck {
        /// Service-wide query id.
        query: u64,
    },
    /// One page of result rows (consumes one credit).
    Page {
        /// Owning query id.
        query: u64,
        /// Result rows in this page.
        rows: Vec<Row>,
    },
    /// Query finished; all pages delivered.
    Done {
        /// Owning query id.
        query: u64,
        /// Total rows delivered across all pages.
        total_rows: u64,
        /// Cost charged to the query's virtual clock.
        cost: f64,
        /// Whether the plan came from the plan cache.
        plan_cached: bool,
    },
    /// Query (or, with `query == 0`, the connection) failed.
    Error {
        /// Owning query id; 0 for connection-level protocol errors.
        query: u64,
        /// The failure, by stable code.
        failure: RemoteFailure,
    },
    /// Clean session shutdown acknowledged.
    GoodbyeAck,
    /// Gauge snapshot: the service metrics registry plus every in-flight
    /// query's live state.
    StatsReply {
        /// Service metrics, in registration order.
        metrics: MetricsSnapshot,
        /// In-flight queries, ordered by query id.
        live: Vec<LiveQueryStats>,
    },
    /// Live `EXPLAIN ANALYZE` of one query.
    InspectReply {
        /// The inspected query id.
        query: u64,
        /// Whether the id was known (in flight, or already in the service
        /// trace forest). When false the remaining fields are defaults.
        found: bool,
        /// Current phase ([`QueryPhase::as_u8`](rqp_server::QueryPhase::as_u8)
        /// encoding); meaningful only for in-flight queries.
        phase: u8,
        /// Rendered span tree so far (`TraceTree::render` output,
        /// truncated server-side to fit one frame).
        rendered: String,
    },
    /// A flight-recorder tail.
    EventsReply {
        /// Events with `seq >= cursor`, oldest first.
        events: Vec<RecordedEvent>,
        /// Cursor to resume the tail from.
        next_cursor: u64,
        /// Requested-but-overwritten events between the cursor and the
        /// first returned event (reader fell behind the ring).
        gap: u64,
    },
    /// Subscription registered.
    SubAck {
        /// Service-wide subscription id.
        sub: u64,
    },
    /// One page of a subscription's delta. A single POLL may be answered
    /// by several DELTA frames (each bounded by the page-row/frame-size
    /// limits), terminated by `SubDone`; the inserted/retracted splits of
    /// the frames in one poll concatenate into the full delta packet.
    Delta {
        /// Owning subscription id.
        sub: u64,
        /// One past the last changelog epoch folded into the view.
        epoch: u64,
        /// Rows the subscriber must add to its copy of the view.
        inserted: Vec<Row>,
        /// Rows the subscriber must remove from its copy of the view.
        retracted: Vec<Row>,
    },
    /// A poll (or unsubscribe) finished.
    SubDone {
        /// Owning subscription id.
        sub: u64,
        /// Changelog records still unfolded (0 after an unbounded poll).
        lag: u64,
    },
    /// Rows appended and published to the changelog.
    AppendAck {
        /// Changelog length after the append (one past the last record).
        epoch: u64,
    },
}

impl ClientMsg {
    /// Encode into a frame body (type tag + payload).
    pub fn encode(&self) -> Result<(u8, Vec<u8>)> {
        let mut w = Writer::new();
        let tag = match self {
            ClientMsg::Hello { priority } => {
                w.u8(*priority);
                T_HELLO
            }
            ClientMsg::Submit { spec, opts } => {
                wire::put_query_spec(&mut w, spec)?;
                match opts.priority {
                    Some(p) => {
                        w.u8(1);
                        w.u8(p);
                    }
                    None => w.u8(0),
                }
                w.opt_f64(opts.deadline);
                w.opt_f64(opts.reservation);
                w.f64(opts.arrival);
                w.f64(opts.weight);
                T_SUBMIT
            }
            ClientMsg::Fetch { query, credits } => {
                w.u64(*query);
                w.u32(*credits);
                T_FETCH
            }
            ClientMsg::Cancel { query } => {
                w.u64(*query);
                T_CANCEL
            }
            ClientMsg::Goodbye => T_GOODBYE,
            ClientMsg::Stats => T_STATS,
            ClientMsg::Inspect { query } => {
                w.u64(*query);
                T_INSPECT
            }
            ClientMsg::Events { cursor, max } => {
                w.u64(*cursor);
                w.u32(*max);
                T_EVENTS
            }
            ClientMsg::Subscribe { spec, opts } => {
                wire::put_query_spec(&mut w, spec)?;
                match opts.priority {
                    Some(p) => {
                        w.u8(1);
                        w.u8(p);
                    }
                    None => w.u8(0),
                }
                w.opt_f64(opts.reservation);
                w.opt_f64(opts.deadline);
                T_SUBSCRIBE
            }
            ClientMsg::Unsubscribe { sub } => {
                w.u64(*sub);
                T_UNSUBSCRIBE
            }
            ClientMsg::Poll { sub, max_records } => {
                w.u64(*sub);
                w.u32(*max_records);
                T_POLL
            }
            ClientMsg::Append { table, rows } => {
                w.str(table)?;
                wire::put_rows(&mut w, rows)?;
                T_APPEND
            }
        };
        Ok((tag, w.into_bytes()))
    }

    /// Decode from a received frame.
    pub fn decode(frame: &Frame) -> Result<ClientMsg> {
        let mut r = Reader::new(&frame.payload);
        let msg = match frame.msg_type {
            T_HELLO => ClientMsg::Hello { priority: r.u8()? },
            T_SUBMIT => {
                let spec = wire::get_query_spec(&mut r)?;
                let priority = if r.bool()? { Some(r.u8()?) } else { None };
                let deadline = r.opt_f64()?;
                let reservation = r.opt_f64()?;
                let arrival = r.f64()?;
                let weight = r.f64()?;
                ClientMsg::Submit {
                    spec,
                    opts: WireQueryOptions { priority, deadline, reservation, arrival, weight },
                }
            }
            T_FETCH => ClientMsg::Fetch { query: r.u64()?, credits: r.u32()? },
            T_CANCEL => ClientMsg::Cancel { query: r.u64()? },
            T_GOODBYE => ClientMsg::Goodbye,
            T_STATS => ClientMsg::Stats,
            T_INSPECT => ClientMsg::Inspect { query: r.u64()? },
            T_EVENTS => ClientMsg::Events { cursor: r.u64()?, max: r.u32()? },
            T_SUBSCRIBE => {
                let spec = wire::get_query_spec(&mut r)?;
                let priority = if r.bool()? { Some(r.u8()?) } else { None };
                let reservation = r.opt_f64()?;
                let deadline = r.opt_f64()?;
                ClientMsg::Subscribe {
                    spec,
                    opts: WireSubscribeOptions { priority, reservation, deadline },
                }
            }
            T_UNSUBSCRIBE => ClientMsg::Unsubscribe { sub: r.u64()? },
            T_POLL => ClientMsg::Poll { sub: r.u64()?, max_records: r.u32()? },
            T_APPEND => ClientMsg::Append { table: r.str()?, rows: wire::get_rows(&mut r)? },
            t => return Err(FrameError::Malformed(format!("unknown client message type {t}"))),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl ServerMsg {
    /// Encode into a frame body (type tag + payload).
    pub fn encode(&self) -> Result<(u8, Vec<u8>)> {
        let mut w = Writer::new();
        let tag = match self {
            ServerMsg::HelloAck { session } => {
                w.u64(*session);
                T_HELLO_ACK
            }
            ServerMsg::SubmitAck { query } => {
                w.u64(*query);
                T_SUBMIT_ACK
            }
            ServerMsg::Page { query, rows } => {
                w.u64(*query);
                wire::put_rows(&mut w, rows)?;
                T_PAGE
            }
            ServerMsg::Done { query, total_rows, cost, plan_cached } => {
                w.u64(*query);
                w.u64(*total_rows);
                w.f64(*cost);
                w.bool(*plan_cached);
                T_DONE
            }
            ServerMsg::Error { query, failure } => {
                w.u64(*query);
                w.u16(failure.code);
                w.str(&failure.message)?;
                T_ERROR
            }
            ServerMsg::GoodbyeAck => T_GOODBYE_ACK,
            ServerMsg::StatsReply { metrics, live } => {
                wire::put_metrics(&mut w, metrics)?;
                wire::put_live_queries(&mut w, live)?;
                T_STATS_REPLY
            }
            ServerMsg::InspectReply { query, found, phase, rendered } => {
                w.u64(*query);
                w.bool(*found);
                w.u8(*phase);
                w.str(rendered)?;
                T_INSPECT_REPLY
            }
            ServerMsg::EventsReply { events, next_cursor, gap } => {
                wire::put_events(&mut w, events)?;
                w.u64(*next_cursor);
                w.u64(*gap);
                T_EVENTS_REPLY
            }
            ServerMsg::SubAck { sub } => {
                w.u64(*sub);
                T_SUB_ACK
            }
            ServerMsg::Delta { sub, epoch, inserted, retracted } => {
                w.u64(*sub);
                w.u64(*epoch);
                wire::put_rows(&mut w, inserted)?;
                wire::put_rows(&mut w, retracted)?;
                T_DELTA
            }
            ServerMsg::SubDone { sub, lag } => {
                w.u64(*sub);
                w.u64(*lag);
                T_SUB_DONE
            }
            ServerMsg::AppendAck { epoch } => {
                w.u64(*epoch);
                T_APPEND_ACK
            }
        };
        Ok((tag, w.into_bytes()))
    }

    /// Decode from a received frame.
    pub fn decode(frame: &Frame) -> Result<ServerMsg> {
        let mut r = Reader::new(&frame.payload);
        let msg = match frame.msg_type {
            T_HELLO_ACK => ServerMsg::HelloAck { session: r.u64()? },
            T_SUBMIT_ACK => ServerMsg::SubmitAck { query: r.u64()? },
            T_PAGE => ServerMsg::Page { query: r.u64()?, rows: wire::get_rows(&mut r)? },
            T_DONE => ServerMsg::Done {
                query: r.u64()?,
                total_rows: r.u64()?,
                cost: r.f64()?,
                plan_cached: r.bool()?,
            },
            T_ERROR => ServerMsg::Error {
                query: r.u64()?,
                failure: RemoteFailure { code: r.u16()?, message: r.str()? },
            },
            T_GOODBYE_ACK => ServerMsg::GoodbyeAck,
            T_STATS_REPLY => ServerMsg::StatsReply {
                metrics: wire::get_metrics(&mut r)?,
                live: wire::get_live_queries(&mut r)?,
            },
            T_INSPECT_REPLY => ServerMsg::InspectReply {
                query: r.u64()?,
                found: r.bool()?,
                phase: r.u8()?,
                rendered: r.str()?,
            },
            T_EVENTS_REPLY => ServerMsg::EventsReply {
                events: wire::get_events(&mut r)?,
                next_cursor: r.u64()?,
                gap: r.u64()?,
            },
            T_SUB_ACK => ServerMsg::SubAck { sub: r.u64()? },
            T_DELTA => ServerMsg::Delta {
                sub: r.u64()?,
                epoch: r.u64()?,
                inserted: wire::get_rows(&mut r)?,
                retracted: wire::get_rows(&mut r)?,
            },
            T_SUB_DONE => ServerMsg::SubDone { sub: r.u64()?, lag: r.u64()? },
            T_APPEND_ACK => ServerMsg::AppendAck { epoch: r.u64()? },
            t => return Err(FrameError::Malformed(format!("unknown server message type {t}"))),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::RqpError;

    fn frame(tag: u8, payload: Vec<u8>) -> Frame {
        Frame { msg_type: tag, payload }
    }

    #[test]
    fn client_messages_round_trip() {
        let spec = QuerySpec::new()
            .table("t")
            .filter("t", col("t.a").gt(lit(3i64)))
            .limit(5);
        let msgs = [
            ClientMsg::Hello { priority: 2 },
            ClientMsg::Submit {
                spec,
                opts: WireQueryOptions {
                    priority: Some(1),
                    deadline: Some(123.5),
                    reservation: None,
                    arrival: 7.0,
                    weight: 2.0,
                },
            },
            ClientMsg::Fetch { query: 9, credits: 4 },
            ClientMsg::Cancel { query: 9 },
            ClientMsg::Goodbye,
            ClientMsg::Stats,
            ClientMsg::Inspect { query: 12 },
            ClientMsg::Events { cursor: 1000, max: 256 },
            ClientMsg::Subscribe {
                spec: QuerySpec::new().table("t").filter("t", col("t.a").gt(lit(3i64))),
                opts: WireSubscribeOptions {
                    priority: Some(2),
                    reservation: Some(64.0),
                    deadline: None,
                },
            },
            ClientMsg::Unsubscribe { sub: 17 },
            ClientMsg::Poll { sub: 17, max_records: 128 },
            ClientMsg::Append {
                table: "t".into(),
                rows: vec![vec![rqp_common::Value::Int(5), rqp_common::Value::Null]],
            },
        ];
        for m in msgs {
            let (tag, payload) = m.encode().unwrap();
            let back = ClientMsg::decode(&frame(tag, payload)).unwrap();
            match (&m, &back) {
                // QuerySpec has no PartialEq; compare by cache key.
                (ClientMsg::Submit { spec: a, opts: oa }, ClientMsg::Submit { spec: b, opts: ob }) => {
                    assert_eq!(a.cache_key(), b.cache_key());
                    assert_eq!(oa, ob);
                }
                (ClientMsg::Hello { priority: a }, ClientMsg::Hello { priority: b }) => {
                    assert_eq!(a, b)
                }
                (
                    ClientMsg::Fetch { query: a, credits: ca },
                    ClientMsg::Fetch { query: b, credits: cb },
                ) => assert_eq!((a, ca), (b, cb)),
                (ClientMsg::Cancel { query: a }, ClientMsg::Cancel { query: b }) => {
                    assert_eq!(a, b)
                }
                (ClientMsg::Goodbye, ClientMsg::Goodbye) => {}
                (ClientMsg::Stats, ClientMsg::Stats) => {}
                (ClientMsg::Inspect { query: a }, ClientMsg::Inspect { query: b }) => {
                    assert_eq!(a, b)
                }
                (
                    ClientMsg::Events { cursor: a, max: ma },
                    ClientMsg::Events { cursor: b, max: mb },
                ) => assert_eq!((a, ma), (b, mb)),
                (
                    ClientMsg::Subscribe { spec: a, opts: oa },
                    ClientMsg::Subscribe { spec: b, opts: ob },
                ) => {
                    assert_eq!(a.cache_key(), b.cache_key());
                    assert_eq!(oa, ob);
                }
                (ClientMsg::Unsubscribe { sub: a }, ClientMsg::Unsubscribe { sub: b }) => {
                    assert_eq!(a, b)
                }
                (
                    ClientMsg::Poll { sub: a, max_records: ma },
                    ClientMsg::Poll { sub: b, max_records: mb },
                ) => assert_eq!((a, ma), (b, mb)),
                (
                    ClientMsg::Append { table: a, rows: ra },
                    ClientMsg::Append { table: b, rows: rb },
                ) => assert_eq!((a, ra), (b, rb)),
                (sent, got) => panic!("variant changed in round trip: {sent:?} -> {got:?}"),
            }
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let failure = RemoteFailure {
            code: RqpError::DeadlineExceeded.wire_code(),
            message: RqpError::DeadlineExceeded.to_string(),
        };
        let msgs = [
            ServerMsg::HelloAck { session: 3 },
            ServerMsg::SubmitAck { query: 11 },
            ServerMsg::Page {
                query: 11,
                rows: vec![vec![rqp_common::Value::Int(1), rqp_common::Value::Null]],
            },
            ServerMsg::Done { query: 11, total_rows: 1, cost: 42.0, plan_cached: true },
            ServerMsg::Error { query: 11, failure: failure.clone() },
            ServerMsg::GoodbyeAck,
            ServerMsg::StatsReply {
                metrics: vec![
                    ("wire.connections".into(), rqp_telemetry::MetricValue::Counter(2)),
                    ("server.live.reserved".into(), rqp_telemetry::MetricValue::Gauge(0.5)),
                ],
                live: vec![LiveQueryStats {
                    query: 11,
                    session: 3,
                    priority: 1,
                    phase: rqp_server::QueryPhase::Running,
                    ticks: 9.0,
                    granted: 100.0,
                    share: 500.0,
                    deadline_remaining: None,
                }],
            },
            ServerMsg::InspectReply {
                query: 11,
                found: true,
                phase: rqp_server::QueryPhase::Running.as_u8(),
                rendered: "query q11 s3\n  table_scan 42 rows\n".into(),
            },
            ServerMsg::EventsReply {
                events: vec![RecordedEvent {
                    seq: 5,
                    at: 0.25,
                    query: 11,
                    kind: "admission.admit".into(),
                    detail: "running 1 of mpl 4".into(),
                }],
                next_cursor: 6,
                gap: 2,
            },
            ServerMsg::SubAck { sub: 17 },
            ServerMsg::Delta {
                sub: 17,
                epoch: 42,
                inserted: vec![vec![rqp_common::Value::Int(7)]],
                retracted: vec![vec![rqp_common::Value::Int(3)], vec![rqp_common::Value::Null]],
            },
            ServerMsg::SubDone { sub: 17, lag: 5 },
            ServerMsg::AppendAck { epoch: 43 },
        ];
        for m in msgs {
            let (tag, payload) = m.encode().unwrap();
            assert_eq!(ServerMsg::decode(&frame(tag, payload)).unwrap(), m);
        }
        assert!(failure.is_cancellation());
        assert_eq!(failure.name(), Some("DeadlineExceeded"));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_malformed() {
        assert!(ClientMsg::decode(&frame(250, Vec::new())).is_err());
        assert!(ServerMsg::decode(&frame(250, Vec::new())).is_err());
        let (tag, mut payload) = ClientMsg::Cancel { query: 1 }.encode().unwrap();
        payload.push(0);
        assert!(ClientMsg::decode(&frame(tag, payload)).is_err(), "trailing byte accepted");
        let (tag, mut payload) = ClientMsg::Poll { sub: 1, max_records: 0 }.encode().unwrap();
        payload.push(0);
        assert!(ClientMsg::decode(&frame(tag, payload)).is_err(), "trailing byte accepted");
        let (tag, mut payload) = ServerMsg::SubDone { sub: 1, lag: 0 }.encode().unwrap();
        payload.push(0);
        assert!(ServerMsg::decode(&frame(tag, payload)).is_err(), "trailing byte accepted");
    }

    #[test]
    fn remote_failure_classification_is_code_based() {
        let cancelled = RemoteFailure { code: RqpError::Cancelled.wire_code(), message: "x".into() };
        assert!(cancelled.is_cancellation());
        let exec = RemoteFailure {
            code: RqpError::Execution("deadline mentioned in text".into()).wire_code(),
            message: "deadline exceeded".into(), // lying message text
        };
        // The code, not the message, decides.
        assert!(!exec.is_cancellation());
        let unknown = RemoteFailure { code: 65000, message: "?".into() };
        assert_eq!(unknown.name(), None);
        assert!(!unknown.is_cancellation());
    }
}
