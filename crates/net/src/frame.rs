//! Length-prefixed binary framing.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic     0x52515057 ("RQPW"), big-endian
//! 4       2     version   protocol version, big-endian (currently 1)
//! 6       1     type      message type tag (see `proto`)
//! 7       1     reserved  must be 0
//! 8       4     length    payload length in bytes, big-endian
//! 12      n     payload   `length` bytes, message-type specific
//! ```
//!
//! Decoding is *total*: any byte sequence — truncated, corrupt, adversarial —
//! produces a typed [`FrameError`], never a panic. The length field is
//! checked against [`MAX_PAYLOAD`] **before** any allocation, so a hostile
//! peer cannot make the server reserve gigabytes with a 12-byte header.

use std::io::{Read, Write};

/// Frame magic: `"RQPW"` as a big-endian u32.
pub const MAGIC: u32 = 0x5251_5057;

/// Current protocol version. Bump on any incompatible layout change.
pub const VERSION: u16 = 1;

/// Hard upper bound on a frame payload (16 MiB). Frames claiming more are
/// rejected before allocation.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 12;

/// Typed decode failures. Everything a damaged or hostile peer can send
/// lands in exactly one of these; none of them panic or over-allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended inside a header or payload.
    Truncated,
    /// The first four bytes were not [`MAGIC`].
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    VersionMismatch(u16),
    /// The length field exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload's internal structure is invalid for its message type.
    Malformed(String),
    /// Underlying transport error (connection reset, broken pipe, …).
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            FrameError::VersionMismatch(v) => {
                write!(f, "protocol version mismatch: peer speaks v{v}, this side v{VERSION}")
            }
            FrameError::Oversized(n) => {
                write!(f, "frame payload of {n} bytes exceeds the {MAX_PAYLOAD}-byte limit")
            }
            FrameError::Malformed(m) => write!(f, "malformed payload: {m}"),
            FrameError::Io(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl From<FrameError> for rqp_common::RqpError {
    fn from(e: FrameError) -> Self {
        rqp_common::RqpError::Protocol(e.to_string())
    }
}

/// One decoded frame: the message type tag and its raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message type tag (interpreted by `proto`).
    pub msg_type: u8,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Encode a frame onto `w` (header + payload, one `write_all` each).
pub fn write_frame(w: &mut impl Write, msg_type: u8, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(FrameError::Oversized(payload.len() as u32));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC.to_be_bytes());
    header[4..6].copy_from_slice(&VERSION.to_be_bytes());
    header[6] = msg_type;
    header[7] = 0;
    header[8..12].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header).map_err(io_err)?;
    w.write_all(payload).map_err(io_err)?;
    w.flush().map_err(io_err)?;
    Ok(())
}

/// Decode the next frame from `r`. A clean EOF *before any header byte*
/// returns `Ok(None)` (the peer hung up between messages); EOF anywhere
/// else is [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err(e)),
        }
    }
    let magic = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_be_bytes(header[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(FrameError::VersionMismatch(version));
    }
    let msg_type = header[6];
    let len = u32::from_be_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(Some(Frame { msg_type, payload }))
}

fn io_err(e: std::io::Error) -> FrameError {
    FrameError::Io(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg_type: u8, payload: &[u8]) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg_type, payload).unwrap();
        read_frame(&mut &buf[..]).unwrap().expect("one frame")
    }

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", &[0u8; 1000][..]] {
            let f = round_trip(7, payload);
            assert_eq!(f.msg_type, 7);
            assert_eq!(f.payload, payload);
        }
    }

    #[test]
    fn clean_eof_is_none_and_partial_header_is_truncated() {
        assert_eq!(read_frame(&mut &[][..]), Ok(None));
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"abc").unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&mut &buf[..cut]).unwrap_err();
            assert_eq!(err, FrameError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"").unwrap();
        let mut bad = buf.clone();
        bad[0] = 0xff;
        assert!(matches!(read_frame(&mut &bad[..]), Err(FrameError::BadMagic(_))));
        let mut old = buf.clone();
        old[4..6].copy_from_slice(&9999u16.to_be_bytes());
        assert_eq!(read_frame(&mut &old[..]), Err(FrameError::VersionMismatch(9999)));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&MAGIC.to_be_bytes());
        header[4..6].copy_from_slice(&VERSION.to_be_bytes());
        header[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(read_frame(&mut &header[..]), Err(FrameError::Oversized(u32::MAX)));
    }

    #[test]
    fn arbitrary_prefixes_never_panic() {
        // Deterministic pseudo-random byte soup: every prefix must produce
        // a typed result, never a panic or a huge allocation.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut bytes = Vec::with_capacity(512);
        for _ in 0..512 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            bytes.push((state >> 33) as u8);
        }
        for cut in 0..bytes.len() {
            let _ = read_frame(&mut &bytes[..cut]);
        }
        // And byte soup that starts with a valid header prefix.
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"hello").unwrap();
        buf.extend_from_slice(&bytes);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).unwrap().is_some());
        let _ = read_frame(&mut r); // garbage after: typed error or Ok, no panic
    }
}
