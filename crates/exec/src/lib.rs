//! # rqp-exec
//!
//! The Volcano-style execution engine. Every operator implements
//! [`Operator`] (`open`-free, pull-based `next()`), charges the shared
//! [cost clock](rqp_common::clock) as it touches pages and tuples, and counts
//! the *actual* rows it produces — the raw material of every adaptive
//! technique in the seminar (POP checks actuals against validity ranges, LEO
//! feeds them back to the optimizer, eddies re-route on observed pass rates).
//!
//! Operator inventory:
//!
//! * [`scan`] — table scan, (un)clustered B-tree index scan, cracker scan,
//!   adaptive-merge scan;
//! * [`filter`] — filter and project;
//! * [`join`] — hash join (with Grace-style spill), sort-merge join,
//!   index-nested-loop join, block-nested-loop join;
//! * [`gjoin`] — Graefe's **generalized join**: one algorithm that behaves
//!   like merge join on sorted inputs, like hash join on unsorted inputs and
//!   like index-nested-loop when an index + small outer make probing cheap;
//! * [`symjoin`] — the symmetric (pipelined, non-blocking) hash join used by
//!   adaptive routing;
//! * [`mjoin`] — the **n-ary symmetric hash join (MJoin)** with adaptive
//!   probing sequences;
//! * [`sort`] — memory-bounded sort with external-run spill accounting, and
//!   top-N;
//! * [`agg`] — hash aggregation (COUNT/SUM/MIN/MAX/AVG);
//! * [`eddy`] — an **eddy** (Avnur & Hellerstein) with lottery-scheduled
//!   routing over selection predicates and star-join probe SteMs;
//! * [`agreedy`] — **A-Greedy** adaptive selection ordering (Babu et al.);
//! * [`checkpoint`] — **POP CHECK operators** (Markl et al.): materialization
//!   points that compare actual cardinality against a validity range and
//!   signal re-optimization;
//! * [`exchange`] — Volcano-style exchange: parallel scan, hash/range
//!   repartition with injectable skew, deterministic gather over
//!   `std::thread` workers;
//! * [`batch`] — batch-at-a-time twins of the hot-path operators
//!   (scan/filter/project/hash join/hash agg) exchanging columnar
//!   [`rqp_common::ColumnBatch`]es with dictionary-encoded strings, plus the
//!   batch→row adapter; charge-compatible with their scalar twins;
//! * [`context`] — the execution context: cost clock, memory governor,
//!   span tracer and metrics registry.
//!
//! Every operator opens a [`rqp_telemetry`] span at construction and bumps
//! it per produced row, so actual cardinalities, grants and spills are
//! always observable via [`ExecContext::tracer`] — no wrapper needed.

#![warn(missing_docs)]

pub mod agg;
pub mod agreedy;
pub mod batch;
pub mod checkpoint;
pub mod context;
pub mod eddy;
pub mod exchange;
pub mod filter;
pub mod gjoin;
pub mod join;
pub mod mjoin;
pub mod scan;
pub mod sort;
pub mod symjoin;

pub use agg::{AggFunc, AggSpec, HashAggOp};
pub use agreedy::AGreedyFilterOp;
pub use batch::{
    BatchFilterOp, BatchHashAggOp, BatchHashJoinOp, BatchOperator, BatchPartitionSourceOp,
    BatchProjectOp, BatchRowsOp, BatchScanOp, BoxBatchOp,
};
pub use checkpoint::{CheckOp, CheckOutcome, PopSignal};
pub use context::{collect, ExecContext, MemoryGovernor, SpanOp, WorkspaceLease};
pub use eddy::{EddyFilterOp, RoutingPolicy, StarEddyOp};
pub use exchange::{
    batch_pipeline, pipeline, BatchPipelineBuilder, ExchangeOp, Partitioning, PartitionSourceOp,
    PipelineBuilder,
};
pub use filter::{FilterOp, ProjectOp};
pub use gjoin::GJoinOp;
pub use join::{BnlJoinOp, HashJoinOp, IndexNlJoinOp, MergeJoinOp};
pub use mjoin::MJoinOp;
pub use scan::{AMergeScanOp, CrackerScanOp, IndexScanOp, MultiIndexScanOp, TableScanOp};
pub use sort::{SortOp, TopNOp};
pub use symjoin::SymmetricHashJoinOp;

use rqp_common::{Row, Schema};

pub use rqp_telemetry::SpanHandle;

/// A pull-based physical operator.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Option<Row>;

    /// The telemetry span counting this operator's output, if it keeps one.
    ///
    /// Every operator in this crate does; the default exists so external
    /// sources (test fixtures, adapters) don't have to. Consumers parent
    /// their inputs' spans beneath their own at construction, which is how
    /// the trace tree takes the plan's shape.
    fn span(&self) -> Option<&SpanHandle> {
        None
    }
}

/// Boxed operator, the unit of plan composition.
pub type BoxOp = Box<dyn Operator>;
