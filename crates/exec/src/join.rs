//! Classic join algorithms: hash, sort-merge, index-nested-loop and
//! block-nested-loop.
//!
//! The seminar's "wrong join method" discussions hinge on the cost asymmetry
//! between these: hash join pays O(build) memory and spills under pressure,
//! index-nested-loop is unbeatable for tiny outers and catastrophic for large
//! ones, merge join is safe when inputs are sorted. Misestimating a
//! cardinality flips the choice — E18 maps who wins where, E01–E03 measure
//! what POP recovers when the choice was wrong.

use crate::context::{ExecContext, WorkspaceLease};
use crate::{BoxOp, Operator};
use rqp_common::expr::BoundExpr;
use rqp_common::{Expr, Result, Row, RqpError, Schema, Value};
use rqp_storage::{BTreeIndex, Table};
use rqp_telemetry::SpanHandle;
use std::collections::HashMap;
use std::sync::Arc;

fn bind_keys(schema: &Schema, keys: &[&str]) -> Result<Vec<usize>> {
    keys.iter().map(|k| schema.index_of(k)).collect()
}

fn key_of(row: &Row, cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&i| row[i].clone()).collect()
}

/// Hash join: builds on the **right** input, probes with the left.
///
/// If the build side exceeds the memory grant, a Grace-style partitioning
/// spill is charged on the overflowing fraction of both inputs.
pub struct HashJoinOp {
    left: BoxOp,
    right: Option<BoxOp>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    schema: Schema,
    ctx: ExecContext,
    table: HashMap<Vec<Value>, Vec<Row>>,
    built: bool,
    spill_fraction: f64,
    probe_rows: f64,
    pending: Vec<Row>,
    current_left: Option<Row>,
    lease: WorkspaceLease,
    span: SpanHandle,
}

impl HashJoinOp {
    /// Join `left` and `right` on equality of the named key columns.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_keys: &[&str],
        right_keys: &[&str],
        ctx: ExecContext,
    ) -> Result<Self> {
        if left_keys.len() != right_keys.len() || left_keys.is_empty() {
            return Err(RqpError::Invalid("join keys must pair up".into()));
        }
        let lk = bind_keys(left.schema(), left_keys)?;
        let rk = bind_keys(right.schema(), right_keys)?;
        let schema = left.schema().join(right.schema());
        let span = ctx.op_span("hash_join", &[&left, &right]);
        Ok(HashJoinOp {
            left,
            right: Some(right),
            left_keys: lk,
            right_keys: rk,
            schema,
            ctx,
            table: HashMap::new(),
            built: false,
            spill_fraction: 0.0,
            probe_rows: 0.0,
            pending: Vec::new(),
            current_left: None,
            lease: WorkspaceLease::new(),
            span,
        })
    }

    fn build(&mut self) {
        let mut right = self.right.take().expect("build called once");
        let mut rows = Vec::new();
        while let Some(r) = right.next() {
            rows.push(r);
        }
        let n = rows.len() as f64;
        let grant = self.lease.grant(&self.ctx, &self.span, n);
        if n > grant {
            self.spill_fraction = 1.0 - grant / n;
            let spilled = n * self.spill_fraction;
            self.ctx.clock.charge_spill_rows(spilled);
            self.span.record_spill(spilled);
            self.span.record_event(
                &self.ctx.clock,
                "governor.spill",
                &format!("hash build spilled {spilled:.0} of {n:.0} rows (grant {grant:.0})"),
            );
        }
        self.ctx.clock.charge_hash_build(n);
        for r in rows {
            let k = key_of(&r, &self.right_keys);
            self.table.entry(k).or_default().push(r);
        }
        self.built = true;
    }

    /// Release the build-side grant and close the span. Idempotent; called
    /// on drain-to-`None` *and* on `Drop`, so early-terminating consumers
    /// cannot leak `outstanding` or leave an open span.
    fn finish(&mut self) {
        if !self.span.is_closed() {
            self.lease.release(&self.ctx);
            self.span.close(&self.ctx.clock);
        }
    }
}

impl Drop for HashJoinOp {
    fn drop(&mut self) {
        self.finish();
    }
}

impl Operator for HashJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if !self.built {
            self.build();
        }
        // Cooperative abort, then graceful degradation: shed build-side
        // workspace (as incremental spill) when the budget shrank mid-probe.
        self.ctx.checkpoint();
        self.lease.renegotiate(&self.ctx, &self.span);
        loop {
            if let Some(right_row) = self.pending.pop() {
                let left_row = self.current_left.as_ref().expect("pending implies left");
                self.ctx.clock.charge_cpu_tuples(1.0);
                let mut out = left_row.clone();
                out.extend(right_row);
                self.span.produced(&self.ctx.clock);
                return Some(out);
            }
            match self.left.next() {
                Some(l) => {
                    self.probe_rows += 1.0;
                    self.ctx.clock.charge_hash_probe(1.0);
                    let k = key_of(&l, &self.left_keys);
                    if let Some(matches) = self.table.get(&k) {
                        self.pending = matches.clone();
                        self.current_left = Some(l);
                    }
                }
                None => {
                    if self.spill_fraction > 0.0 && self.probe_rows > 0.0 {
                        // Spill the probe side's share once, at the end.
                        let spilled = self.probe_rows * self.spill_fraction;
                        self.ctx.clock.charge_spill_rows(spilled);
                        self.span.record_spill(spilled);
                        self.span.record_event(
                            &self.ctx.clock,
                            "governor.spill",
                            &format!("hash probe spilled {spilled:.0} rows"),
                        );
                        self.probe_rows = 0.0;
                    }
                    self.finish();
                    return None;
                }
            }
        }
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Sort-merge join over inputs already sorted on their key columns.
pub struct MergeJoinOp {
    left: BoxOp,
    right: BoxOp,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    schema: Schema,
    ctx: ExecContext,
    left_row: Option<Row>,
    right_row: Option<Row>,
    /// Buffered right group with the current key, and emit position.
    group: Vec<Row>,
    group_pos: usize,
    started: bool,
    span: SpanHandle,
}

impl MergeJoinOp {
    /// Merge-join `left` and `right`, both sorted ascending on their keys.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_keys: &[&str],
        right_keys: &[&str],
        ctx: ExecContext,
    ) -> Result<Self> {
        if left_keys.len() != right_keys.len() || left_keys.is_empty() {
            return Err(RqpError::Invalid("join keys must pair up".into()));
        }
        let lk = bind_keys(left.schema(), left_keys)?;
        let rk = bind_keys(right.schema(), right_keys)?;
        let schema = left.schema().join(right.schema());
        let span = ctx.op_span("merge_join", &[&left, &right]);
        Ok(MergeJoinOp {
            left,
            right,
            left_keys: lk,
            right_keys: rk,
            schema,
            ctx,
            left_row: None,
            right_row: None,
            group: Vec::new(),
            group_pos: 0,
            started: false,
            span,
        })
    }

    fn cmp_keys(&self, l: &Row, r: &Row) -> std::cmp::Ordering {
        for (&li, &ri) in self.left_keys.iter().zip(&self.right_keys) {
            let o = l[li].total_cmp(&r[ri]);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    }

    fn left_key_eq(&self, a: &Row, b: &Row) -> bool {
        self.left_keys.iter().all(|&i| a[i] == b[i])
    }

    fn produce(&mut self) -> Option<Row> {
        if !self.started {
            self.left_row = self.left.next();
            self.right_row = self.right.next();
            self.started = true;
        }
        loop {
            // Emit from the buffered group first.
            if self.group_pos < self.group.len() {
                let l = self.left_row.as_ref()?;
                self.ctx.clock.charge_cpu_tuples(1.0);
                let mut out = l.clone();
                out.extend(self.group[self.group_pos].clone());
                self.group_pos += 1;
                return Some(out);
            }
            // Group exhausted: advance left; if its key matches the group's
            // key, replay the group.
            if !self.group.is_empty() {
                let prev = self.left_row.take().expect("group implies left");
                self.left_row = self.left.next();
                self.ctx.clock.charge_compares(1.0);
                match &self.left_row {
                    Some(l) if self.left_key_eq(l, &prev) => {
                        self.group_pos = 0;
                        continue;
                    }
                    _ => {
                        self.group.clear();
                        self.group_pos = 0;
                    }
                }
            }
            let l = self.left_row.clone()?;
            let r = match &self.right_row {
                Some(r) => r.clone(),
                None => return None,
            };
            self.ctx.clock.charge_compares(1.0);
            match self.cmp_keys(&l, &r) {
                std::cmp::Ordering::Less => {
                    self.left_row = self.left.next();
                    self.left_row.as_ref()?;
                }
                std::cmp::Ordering::Greater => {
                    self.right_row = self.right.next();
                    self.right_row.as_ref()?;
                }
                std::cmp::Ordering::Equal => {
                    // Buffer the whole right group with this key.
                    self.group.clear();
                    self.group.push(r);
                    loop {
                        self.right_row = self.right.next();
                        self.ctx.clock.charge_compares(1.0);
                        match &self.right_row {
                            Some(nr)
                                if self.cmp_keys(&l, nr) == std::cmp::Ordering::Equal =>
                            {
                                self.group.push(nr.clone());
                            }
                            _ => break,
                        }
                    }
                    self.group_pos = 0;
                }
            }
        }
    }
}

impl Operator for MergeJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        let row = self.produce();
        match &row {
            Some(_) => self.span.produced(&self.ctx.clock),
            None => self.span.close(&self.ctx.clock),
        }
        row
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Index-nested-loop join: probes a B-tree index on the inner table for each
/// outer row.
pub struct IndexNlJoinOp {
    outer: BoxOp,
    index: Arc<BTreeIndex>,
    inner_table: Arc<Table>,
    outer_key: usize,
    schema: Schema,
    ctx: ExecContext,
    pending: Vec<Row>,
    current_outer: Option<Row>,
    rows_per_page: f64,
    span: SpanHandle,
}

impl IndexNlJoinOp {
    /// Join `outer.outer_key = index.column` by index probing.
    pub fn new(
        outer: BoxOp,
        outer_key: &str,
        index: Arc<BTreeIndex>,
        inner_table: Arc<Table>,
        ctx: ExecContext,
    ) -> Result<Self> {
        let ok = outer.schema().index_of(outer_key)?;
        let schema = outer.schema().join(&inner_table.qualified_schema());
        let rows_per_page = ctx.clock.params().rows_per_page;
        let span = ctx.op_span("index_nl_join", &[&outer]);
        span.set_detail(&format!("{}:{}", inner_table.name(), index.name()));
        Ok(IndexNlJoinOp {
            outer,
            index,
            inner_table,
            outer_key: ok,
            schema,
            ctx,
            pending: Vec::new(),
            current_outer: None,
            rows_per_page,
            span,
        })
    }
}

impl Operator for IndexNlJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(inner_row) = self.pending.pop() {
                let o = self.current_outer.as_ref().expect("pending implies outer");
                self.ctx.clock.charge_cpu_tuples(1.0);
                let mut out = o.clone();
                out.extend(inner_row);
                self.span.produced(&self.ctx.clock);
                return Some(out);
            }
            let Some(o) = self.outer.next() else {
                self.span.close(&self.ctx.clock);
                return None;
            };
            // B-tree descent per probe.
            let n = self.index.entries().max(2) as f64;
            self.ctx.clock.charge_compares(n.log2());
            let rids = self.index.lookup_eq(&o[self.outer_key]);
            if !rids.is_empty() {
                if self.index.clustered() {
                    let pages = (rids.len() as f64 / self.rows_per_page).ceil();
                    self.ctx.clock.charge_random_pages(pages.min(1.0));
                    self.ctx
                        .clock
                        .charge_seq_pages((pages - 1.0).max(0.0));
                } else {
                    self.ctx.clock.charge_random_pages(rids.len() as f64);
                }
                self.pending = rids.iter().map(|&rid| self.inner_table.row(rid)).collect();
                self.current_outer = Some(o);
            }
        }
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Block-nested-loop join with an arbitrary join predicate (the fallback for
/// non-equi joins, and the deliberately fragile baseline).
pub struct BnlJoinOp {
    left: BoxOp,
    right_rows: Option<Vec<Row>>,
    right_src: Option<BoxOp>,
    pred: Option<BoundExpr>,
    schema: Schema,
    ctx: ExecContext,
    current_left: Option<Row>,
    right_pos: usize,
    span: SpanHandle,
}

impl BnlJoinOp {
    /// Join with predicate `pred` evaluated on the concatenated row (pass
    /// `None` for a cross product).
    pub fn new(left: BoxOp, right: BoxOp, pred: Option<&Expr>, ctx: ExecContext) -> Result<Self> {
        let schema = left.schema().join(right.schema());
        let bound = pred.map(|p| p.bind(&schema)).transpose()?;
        let span = ctx.op_span("bnl_join", &[&left, &right]);
        Ok(BnlJoinOp {
            left,
            right_rows: None,
            right_src: Some(right),
            pred: bound,
            schema,
            ctx,
            current_left: None,
            right_pos: 0,
            span,
        })
    }

    fn produce(&mut self) -> Option<Row> {
        if self.right_rows.is_none() {
            let mut src = self.right_src.take().expect("materialize once");
            let mut rows = Vec::new();
            while let Some(r) = src.next() {
                rows.push(r);
            }
            self.ctx.clock.charge_cpu_tuples(rows.len() as f64);
            self.right_rows = Some(rows);
        }
        loop {
            if self.current_left.is_none() {
                self.current_left = self.left.next();
                self.current_left.as_ref()?;
                self.right_pos = 0;
            }
            let right = self.right_rows.as_ref().expect("materialized above");
            let l = self.current_left.as_ref().expect("set above");
            while self.right_pos < right.len() {
                let r = &right[self.right_pos];
                self.right_pos += 1;
                self.ctx.clock.charge_compares(1.0);
                let mut out = l.clone();
                out.extend(r.clone());
                match &self.pred {
                    Some(p) if !p.eval_bool(&out) => continue,
                    _ => {
                        self.ctx.clock.charge_cpu_tuples(1.0);
                        return Some(out);
                    }
                }
            }
            self.current_left = None;
        }
    }
}

impl Operator for BnlJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        let row = self.produce();
        match &row {
            Some(_) => self.span.produced(&self.ctx.clock),
            None => self.span.close(&self.ctx.clock),
        }
        row
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::collect;
    use crate::filter::test_support::RowsOp;
    use rqp_common::expr::col;
    use rqp_common::DataType;

    fn left_src() -> BoxOp {
        let schema = Schema::from_pairs(&[("l.k", DataType::Int), ("l.x", DataType::Int)]);
        let rows: Vec<Row> = (0..20)
            .map(|i| vec![Value::Int(i % 5), Value::Int(i)])
            .collect();
        RowsOp::boxed(schema, rows)
    }

    fn right_src() -> BoxOp {
        let schema = Schema::from_pairs(&[("r.k", DataType::Int), ("r.y", DataType::Int)]);
        let rows: Vec<Row> = (0..5).map(|i| vec![Value::Int(i), Value::Int(i * 100)]).collect();
        RowsOp::boxed(schema, rows)
    }

    fn sorted_left() -> BoxOp {
        let schema = Schema::from_pairs(&[("l.k", DataType::Int)]);
        let rows: Vec<Row> = vec![1, 1, 2, 3, 5, 5, 5]
            .into_iter()
            .map(|i| vec![Value::Int(i)])
            .collect();
        RowsOp::boxed(schema, rows)
    }

    fn sorted_right() -> BoxOp {
        let schema = Schema::from_pairs(&[("r.k", DataType::Int), ("r.v", DataType::Int)]);
        let rows: Vec<Row> = vec![(0, 0), (1, 10), (1, 11), (3, 30), (5, 50), (6, 60)]
            .into_iter()
            .map(|(k, v)| vec![Value::Int(k), Value::Int(v)])
            .collect();
        RowsOp::boxed(schema, rows)
    }

    fn big_src(name: &str, n: i64) -> BoxOp {
        let schema = Schema::from_pairs(&[
            (Box::leak(format!("{name}.k").into_boxed_str()) as &str, DataType::Int),
        ]);
        let rows: Vec<Row> = (0..n).map(|i| vec![Value::Int(i % 50)]).collect();
        RowsOp::boxed(schema, rows)
    }

    #[test]
    fn budget_shrink_mid_probe_sheds_and_spills_once() {
        // Chaos-governor regression: a budget shrink landing while the hash
        // join is probing must shed build-side workspace (charged as spill
        // exactly once per shock) and leave outstanding()==0 at completion.
        let ctx = ExecContext::with_memory(10_000.0);
        let mut j = HashJoinOp::new(
            big_src("l", 2_000),
            big_src("r", 5_000),
            &["l.k"],
            &["r.k"],
            ctx.clone(),
        )
        .unwrap();
        assert!(j.next().is_some());
        assert_eq!(ctx.memory.outstanding(), 5_000.0, "build side granted in full");
        assert_eq!(ctx.clock.breakdown().spill, 0.0);
        ctx.memory.set_budget(1_000.0);
        assert!(j.next().is_some());
        assert_eq!(ctx.memory.outstanding(), 1_000.0, "overflow shed");
        let spill1 = ctx.clock.breakdown().spill;
        assert!(spill1 > 0.0);
        assert_eq!(j.span().unwrap().spill_events(), 1, "exactly one spill per shock");
        for _ in 0..50 {
            j.next();
        }
        assert_eq!(ctx.clock.breakdown().spill, spill1, "no repeat spill without a shock");
        collect(&mut j);
        assert_eq!(ctx.memory.outstanding(), 0.0, "outstanding()==0 after completion");
        assert!(j
            .span()
            .unwrap()
            .events()
            .iter()
            .any(|e| e.kind == "governor.pressure"));
    }

    #[test]
    fn hash_join_basic() {
        let ctx = ExecContext::unbounded();
        let mut j =
            HashJoinOp::new(left_src(), right_src(), &["l.k"], &["r.k"], ctx).unwrap();
        let out = collect(&mut j);
        assert_eq!(out.len(), 20, "every left row matches exactly one right");
        assert_eq!(j.schema().len(), 4);
        // spot-check a row: l.k == r.k
        for row in &out {
            assert_eq!(row[0], row[2]);
        }
    }

    #[test]
    fn hash_join_spills_under_memory_pressure() {
        let tight = ExecContext::with_memory(2.0); // ~nothing
        let mut j = HashJoinOp::new(left_src(), right_src(), &["l.k"], &["r.k"], tight.clone())
            .unwrap();
        let out = collect(&mut j);
        assert_eq!(out.len(), 20, "spill must not change the answer");
        // The right side (5 rows) fits the 100-row floor: no spill. Make a
        // bigger build side instead.
        let schema = Schema::from_pairs(&[("r.k", DataType::Int)]);
        let big: Vec<Row> = (0..10_000).map(|i| vec![Value::Int(i % 5)]).collect();
        let tight = ExecContext::with_memory(100.0);
        let mut j = HashJoinOp::new(
            left_src(),
            RowsOp::boxed(schema, big),
            &["l.k"],
            &["r.k"],
            tight.clone(),
        )
        .unwrap();
        let out = collect(&mut j);
        assert_eq!(out.len(), 20 * 2000);
        assert!(tight.clock.breakdown().spill > 0.0, "spill charged");
        // Same join with ample memory: no spill, cheaper.
        let schema = Schema::from_pairs(&[("r.k", DataType::Int)]);
        let big: Vec<Row> = (0..10_000).map(|i| vec![Value::Int(i % 5)]).collect();
        let ample = ExecContext::unbounded();
        let mut j = HashJoinOp::new(
            left_src(),
            RowsOp::boxed(schema, big),
            &["l.k"],
            &["r.k"],
            ample.clone(),
        )
        .unwrap();
        collect(&mut j);
        assert_eq!(ample.clock.breakdown().spill, 0.0);
        assert!(ample.clock.now() < tight.clock.now());
    }

    #[test]
    fn hash_join_partial_drain_releases_grant_and_closes_span() {
        // The headline early-termination bug: a consumer that stops after a
        // few rows (limit, top-n, POP re-plan) must not leak the build-side
        // grant or leave an open span in the run report.
        let ctx = ExecContext::with_memory(50_000.0);
        let schema = Schema::from_pairs(&[("r.k", DataType::Int)]);
        let big: Vec<Row> = (0..5_000).map(|i| vec![Value::Int(i % 5)]).collect();
        let mut j = HashJoinOp::new(
            left_src(),
            RowsOp::boxed(schema, big),
            &["l.k"],
            &["r.k"],
            ctx.clone(),
        )
        .unwrap();
        assert!(j.next().is_some());
        assert_eq!(ctx.memory.outstanding(), 5_000.0, "build grant held");
        drop(j);
        assert_eq!(ctx.memory.outstanding(), 0.0, "drop releases the grant");
        assert!(
            ctx.tracer.snapshot().iter().all(|sp| !sp.closed_at.is_nan()),
            "no open spans after drop"
        );
    }

    #[test]
    fn hash_join_rejects_mismatched_keys() {
        let ctx = ExecContext::unbounded();
        assert!(HashJoinOp::new(left_src(), right_src(), &["l.k"], &[], ctx.clone()).is_err());
        assert!(HashJoinOp::new(left_src(), right_src(), &["nope"], &["r.k"], ctx).is_err());
    }

    #[test]
    fn merge_join_with_duplicate_groups() {
        let ctx = ExecContext::unbounded();
        let mut j =
            MergeJoinOp::new(sorted_left(), sorted_right(), &["l.k"], &["r.k"], ctx).unwrap();
        let out = collect(&mut j);
        // l has 1,1,2,3,5,5,5 ; r has 1×2, 3×1, 5×1 → 2*2 + 1 + 3 = 8
        assert_eq!(out.len(), 8);
        for row in &out {
            assert_eq!(row[0], row[1]);
        }
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let ctx = ExecContext::unbounded();
        let mut mj =
            MergeJoinOp::new(sorted_left(), sorted_right(), &["l.k"], &["r.k"], ctx.clone())
                .unwrap();
        let mut hout = {
            let mut hj =
                HashJoinOp::new(sorted_left(), sorted_right(), &["l.k"], &["r.k"], ctx)
                    .unwrap();
            collect(&mut hj)
        };
        let mut mout = collect(&mut mj);
        let key = |r: &Row| format!("{r:?}");
        hout.sort_by_key(key);
        mout.sort_by_key(key);
        assert_eq!(hout, mout);
    }

    #[test]
    fn index_nl_join() {
        let mut cat = rqp_storage::Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let mut t = Table::new("r", schema);
        for i in 0..100 {
            t.append(vec![Value::Int(i % 10), Value::Int(i)]);
        }
        cat.add_table(t);
        cat.create_index("ix", "r", "k").unwrap();
        let ctx = ExecContext::unbounded();
        let mut j = IndexNlJoinOp::new(
            left_src(),
            "l.k",
            cat.index("ix").unwrap(),
            cat.table("r").unwrap(),
            ctx.clone(),
        )
        .unwrap();
        let out = collect(&mut j);
        // each of 20 outer rows matches 10 inner rows
        assert_eq!(out.len(), 200);
        assert!(ctx.clock.breakdown().rand_io > 0.0, "probing charges I/O");
        for row in &out {
            assert_eq!(row[0], row[2]);
        }
    }

    #[test]
    fn bnl_join_theta_predicate() {
        let ctx = ExecContext::unbounded();
        let pred = col("l.k").lt(col("r.k"));
        let mut j = BnlJoinOp::new(left_src(), right_src(), Some(&pred), ctx).unwrap();
        let out = collect(&mut j);
        // l.k ∈ {0..4} × 4 each; for l.k=v matches right keys v+1..4 → (4+3+2+1+0)*4
        assert_eq!(out.len(), 40);
        for row in &out {
            assert!(row[0] < row[2]);
        }
    }

    #[test]
    fn bnl_cross_product() {
        let ctx = ExecContext::unbounded();
        let mut j = BnlJoinOp::new(left_src(), right_src(), None, ctx).unwrap();
        assert_eq!(collect(&mut j).len(), 100);
    }

    #[test]
    fn joins_with_empty_inputs() {
        let ctx = ExecContext::unbounded();
        let empty = || {
            RowsOp::boxed(
                Schema::from_pairs(&[("e.k", DataType::Int)]),
                vec![],
            )
        };
        let mut j = HashJoinOp::new(left_src(), empty(), &["l.k"], &["e.k"], ctx.clone()).unwrap();
        assert!(collect(&mut j).is_empty());
        let mut j = HashJoinOp::new(empty(), right_src(), &["e.k"], &["r.k"], ctx.clone()).unwrap();
        assert!(collect(&mut j).is_empty());
        let mut j = MergeJoinOp::new(empty(), sorted_right(), &["e.k"], &["r.k"], ctx).unwrap();
        assert!(collect(&mut j).is_empty());
    }
}
