//! Symmetric (pipelined, non-blocking) hash join.
//!
//! Builds hash tables on **both** inputs and emits matches incrementally as
//! tuples arrive from either side, alternating pulls. The survey in the
//! seminar's reading list singles it out as the enabler of adaptivity: it has
//! "frequent moments at which the join order can be changed without losing
//! work". The eddy experiments route through these.

use crate::context::ExecContext;
use crate::{BoxOp, Operator};
use rqp_common::{Result, Row, RqpError, Schema, Value};
use rqp_telemetry::SpanHandle;
use std::collections::HashMap;

/// Pipelined symmetric hash join.
pub struct SymmetricHashJoinOp {
    left: BoxOp,
    right: BoxOp,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    schema: Schema,
    ctx: ExecContext,
    left_table: HashMap<Vec<Value>, Vec<Row>>,
    right_table: HashMap<Vec<Value>, Vec<Row>>,
    left_done: bool,
    right_done: bool,
    /// Pull from left next (alternation flag).
    pull_left: bool,
    pending: Vec<Row>,
    span: SpanHandle,
}

impl SymmetricHashJoinOp {
    /// Join on equality of the named key columns.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_keys: &[&str],
        right_keys: &[&str],
        ctx: ExecContext,
    ) -> Result<Self> {
        if left_keys.len() != right_keys.len() || left_keys.is_empty() {
            return Err(RqpError::Invalid("join keys must pair up".into()));
        }
        let lk: Vec<usize> = left_keys
            .iter()
            .map(|k| left.schema().index_of(k))
            .collect::<Result<_>>()?;
        let rk: Vec<usize> = right_keys
            .iter()
            .map(|k| right.schema().index_of(k))
            .collect::<Result<_>>()?;
        let schema = left.schema().join(right.schema());
        let span = ctx.op_span("sym_hash_join", &[&left, &right]);
        Ok(SymmetricHashJoinOp {
            left,
            right,
            left_keys: lk,
            right_keys: rk,
            schema,
            ctx,
            left_table: HashMap::new(),
            right_table: HashMap::new(),
            left_done: false,
            right_done: false,
            pull_left: true,
            pending: Vec::new(),
            span,
        })
    }

    fn key(row: &Row, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&i| row[i].clone()).collect()
    }

    fn step(&mut self) -> bool {
        // Returns false when both inputs are exhausted.
        for _ in 0..2 {
            let from_left = if self.left_done {
                false
            } else if self.right_done {
                true
            } else {
                self.pull_left
            };
            self.pull_left = !self.pull_left;
            if from_left {
                match self.left.next() {
                    Some(l) => {
                        let k = Self::key(&l, &self.left_keys);
                        self.ctx.clock.charge_hash_build(1.0);
                        self.ctx.clock.charge_hash_probe(1.0);
                        if let Some(matches) = self.right_table.get(&k) {
                            for r in matches {
                                self.ctx.clock.charge_cpu_tuples(1.0);
                                let mut row = l.clone();
                                row.extend(r.clone());
                                self.pending.push(row);
                            }
                        }
                        self.left_table.entry(k).or_default().push(l);
                        return true;
                    }
                    None => self.left_done = true,
                }
            } else {
                match self.right.next() {
                    Some(r) => {
                        let k = Self::key(&r, &self.right_keys);
                        self.ctx.clock.charge_hash_build(1.0);
                        self.ctx.clock.charge_hash_probe(1.0);
                        if let Some(matches) = self.left_table.get(&k) {
                            for l in matches {
                                self.ctx.clock.charge_cpu_tuples(1.0);
                                let mut row = l.clone();
                                row.extend(r.clone());
                                self.pending.push(row);
                            }
                        }
                        self.right_table.entry(k).or_default().push(r);
                        return true;
                    }
                    None => self.right_done = true,
                }
            }
            if self.left_done && self.right_done {
                return false;
            }
        }
        true
    }
}

impl Operator for SymmetricHashJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(row) = self.pending.pop() {
                self.span.produced(&self.ctx.clock);
                return Some(row);
            }
            if self.left_done && self.right_done {
                self.span.close(&self.ctx.clock);
                return None;
            }
            self.step();
        }
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::collect;
    use crate::filter::test_support::RowsOp;
    use crate::join::HashJoinOp;
    use rqp_common::DataType;

    fn src(name: &str, keys: Vec<i64>) -> BoxOp {
        let schema = Schema::from_pairs(&[(
            Box::leak(format!("{name}.k").into_boxed_str()) as &str,
            DataType::Int,
        )]);
        RowsOp::boxed(schema, keys.into_iter().map(|k| vec![Value::Int(k)]).collect())
    }

    #[test]
    fn matches_blocking_hash_join() {
        let ctx = ExecContext::unbounded();
        let mut s = SymmetricHashJoinOp::new(
            src("l", vec![1, 2, 2, 3, 9]),
            src("r", vec![2, 2, 3, 4]),
            &["l.k"],
            &["r.k"],
            ctx.clone(),
        )
        .unwrap();
        let mut sout = collect(&mut s);
        let mut h = HashJoinOp::new(
            src("l", vec![1, 2, 2, 3, 9]),
            src("r", vec![2, 2, 3, 4]),
            &["l.k"],
            &["r.k"],
            ctx,
        )
        .unwrap();
        let mut hout = collect(&mut h);
        let key = |r: &Row| format!("{r:?}");
        sout.sort_by_key(key);
        hout.sort_by_key(key);
        assert_eq!(sout, hout);
        assert_eq!(sout.len(), 5); // 2×2 + 1
    }

    #[test]
    fn emits_incrementally() {
        // First match must appear before either input is exhausted: with
        // equal single keys on both sides, a match exists after two pulls.
        let ctx = ExecContext::unbounded();
        let mut s = SymmetricHashJoinOp::new(
            src("l", vec![7, 8, 9]),
            src("r", vec![7, 1, 2]),
            &["l.k"],
            &["r.k"],
            ctx,
        )
        .unwrap();
        let first = s.next();
        assert!(first.is_some(), "incremental emission");
        assert_eq!(first.unwrap(), vec![Value::Int(7), Value::Int(7)]);
    }

    #[test]
    fn asymmetric_lengths() {
        let ctx = ExecContext::unbounded();
        let mut s = SymmetricHashJoinOp::new(
            src("l", (0..100).map(|i| i % 5).collect()),
            src("r", vec![3]),
            &["l.k"],
            &["r.k"],
            ctx,
        )
        .unwrap();
        assert_eq!(collect(&mut s).len(), 20);
    }

    #[test]
    fn empty_side() {
        let ctx = ExecContext::unbounded();
        let mut s = SymmetricHashJoinOp::new(
            src("l", vec![]),
            src("r", vec![1, 2]),
            &["l.k"],
            &["r.k"],
            ctx,
        )
        .unwrap();
        assert!(collect(&mut s).is_empty());
    }
}
