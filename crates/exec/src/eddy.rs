//! Eddies: continuously adaptive tuple routing (Avnur & Hellerstein,
//! SIGMOD 2000).
//!
//! An eddy routes each tuple through a set of operators in an order chosen
//! *per tuple* from runtime statistics, instead of a compile-time order.
//! Two operators are provided:
//!
//! * [`EddyFilterOp`] — routes tuples through selection predicates; the
//!   lottery policy gives each predicate tickets proportional to its
//!   observed *drop* rate (drop early = win), with exponential decay so the
//!   routing tracks mid-stream selectivity drift;
//! * [`StarEddyOp`] — routes driver tuples through pre-built join SteMs
//!   (hash tables on dimension tables), adaptively choosing the probe order
//!   of a star join — the "query bubble / m-join" shape the seminar's
//!   deferred-decisions session describes, reduced to its adaptive-ordering
//!   core.

use crate::context::ExecContext;
use crate::{BoxOp, Operator};
use rand::rngs::StdRng;
use rand::Rng;
use rqp_common::expr::BoundExpr;
use rqp_common::{Expr, Result, Row, RqpError, Schema, Value};
use rqp_telemetry::SpanHandle;
use std::collections::HashMap;

/// How the eddy picks the next operator for a tuple.
#[derive(Debug, Clone)]
pub enum RoutingPolicy {
    /// Fixed order (the non-adaptive baseline).
    Fixed(Vec<usize>),
    /// Lottery scheduling: tickets ∝ observed drop rate, with decay factor
    /// applied per tuple (closer to 1.0 = longer memory).
    Lottery {
        /// Per-tuple decay of historic ticket counts, in (0, 1].
        decay: f64,
    },
}

/// Per-predicate runtime statistics (decayed counters).
#[derive(Debug, Clone, Copy)]
struct FilterStats {
    seen: f64,
    dropped: f64,
}

impl FilterStats {
    fn drop_rate(&self) -> f64 {
        if self.seen < 1.0 {
            0.5 // uninformed prior
        } else {
            self.dropped / self.seen
        }
    }
}

/// Cap on `eddy.reroute` events recorded per span; the metrics counter
/// keeps the full count, but a thrashing eddy must not bloat the report.
const MAX_REROUTE_EVENTS: usize = 32;

/// Eddy over selection predicates.
pub struct EddyFilterOp {
    inner: BoxOp,
    filters: Vec<BoundExpr>,
    stats: Vec<FilterStats>,
    policy: RoutingPolicy,
    schema: Schema,
    ctx: ExecContext,
    rng: StdRng,
    /// Total predicate evaluations performed (the eddy's work metric).
    pub evaluations: usize,
    span: SpanHandle,
    last_preferred: Vec<usize>,
    reroute_events: usize,
}

impl EddyFilterOp {
    /// Route `inner`'s tuples through `preds` under `policy`.
    pub fn new(
        inner: BoxOp,
        preds: &[Expr],
        policy: RoutingPolicy,
        seed: u64,
        ctx: ExecContext,
    ) -> Result<Self> {
        if preds.is_empty() {
            return Err(RqpError::Invalid("eddy needs at least one predicate".into()));
        }
        if let RoutingPolicy::Fixed(order) = &policy {
            if order.len() != preds.len() {
                return Err(RqpError::Invalid("fixed order must cover all predicates".into()));
            }
        }
        let schema = inner.schema().clone();
        let filters: Vec<BoundExpr> = preds
            .iter()
            .map(|p| p.bind(&schema))
            .collect::<Result<_>>()?;
        let stats = vec![FilterStats { seen: 0.0, dropped: 0.0 }; filters.len()];
        let span = ctx.op_span("eddy_filter", &[&inner]);
        let last_preferred = (0..filters.len()).collect();
        Ok(EddyFilterOp {
            inner,
            filters,
            stats,
            policy,
            schema,
            ctx,
            rng: rqp_common::rng::seeded(seed),
            evaluations: 0,
            span,
            last_preferred,
            reroute_events: 0,
        })
    }

    /// Current routing order the eddy would choose (most tickets first).
    pub fn preferred_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.filters.len()).collect();
        idx.sort_by(|&a, &b| {
            self.stats[b]
                .drop_rate()
                .partial_cmp(&self.stats[a].drop_rate())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }

    fn route_order(&mut self) -> Vec<usize> {
        match &self.policy {
            RoutingPolicy::Fixed(order) => order.clone(),
            RoutingPolicy::Lottery { .. } => {
                // Weighted sampling without replacement by ticket counts.
                let mut remaining: Vec<usize> = (0..self.filters.len()).collect();
                let mut order = Vec::with_capacity(remaining.len());
                while !remaining.is_empty() {
                    let weights: Vec<f64> = remaining
                        .iter()
                        .map(|&i| self.stats[i].drop_rate() + 0.05)
                        .collect();
                    let total: f64 = weights.iter().sum();
                    let mut pick = self.rng.gen::<f64>() * total;
                    let mut chosen = 0usize;
                    for (j, w) in weights.iter().enumerate() {
                        if pick < *w {
                            chosen = j;
                            break;
                        }
                        pick -= w;
                    }
                    order.push(remaining.swap_remove(chosen));
                }
                order
            }
        }
    }

    /// After a tuple's statistics update, note whether the eddy's preferred
    /// routing order shifted — the adaptive decision worth reporting.
    fn note_reroute(&mut self) {
        let now = self.preferred_order();
        if now != self.last_preferred {
            self.ctx.metrics.counter("eddy.reroutes").inc();
            if self.reroute_events < MAX_REROUTE_EVENTS {
                self.span.record_event(
                    &self.ctx.clock,
                    "eddy.reroute",
                    &format!("preferred order {:?} -> {now:?}", self.last_preferred),
                );
                self.reroute_events += 1;
            }
            self.last_preferred = now;
        }
    }
}

impl Operator for EddyFilterOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        'tuple: loop {
            let Some(row) = self.inner.next() else {
                self.span.close(&self.ctx.clock);
                return None;
            };
            let order = self.route_order();
            let decay = match self.policy {
                RoutingPolicy::Lottery { decay } => decay,
                _ => 1.0,
            };
            for &f in &order {
                self.evaluations += 1;
                self.ctx.clock.charge_compares(1.0);
                let passed = self.filters[f].eval_bool(&row);
                let s = &mut self.stats[f];
                s.seen = s.seen * decay + 1.0;
                s.dropped = s.dropped * decay + if passed { 0.0 } else { 1.0 };
                if !passed {
                    self.note_reroute();
                    continue 'tuple;
                }
            }
            self.note_reroute();
            self.span.produced(&self.ctx.clock);
            return Some(row);
        }
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// A SteM: a pre-built hash table on one dimension table's join key.
pub struct SteM {
    /// Human-readable name (for reports).
    pub name: String,
    /// Key → matching dimension rows.
    table: HashMap<Value, Vec<Row>>,
    /// Width of a dimension row (for schema construction).
    schema: Schema,
}

impl SteM {
    /// Build from `(key, row)` pairs.
    pub fn build(name: impl Into<String>, schema: Schema, pairs: Vec<(Value, Row)>) -> Self {
        let mut table: HashMap<Value, Vec<Row>> = HashMap::new();
        for (k, r) in pairs {
            table.entry(k).or_default().push(r);
        }
        SteM { name: name.into(), table, schema }
    }

    fn probe(&self, key: &Value) -> Option<&Vec<Row>> {
        self.table.get(key)
    }
}

/// Eddy routing driver tuples through star-join SteMs with adaptive probe
/// ordering.
pub struct StarEddyOp {
    driver: BoxOp,
    stems: Vec<SteM>,
    /// Driver column index holding the key for each SteM.
    key_cols: Vec<usize>,
    stats: Vec<FilterStats>,
    policy: RoutingPolicy,
    schema: Schema,
    ctx: ExecContext,
    rng: StdRng,
    pending: Vec<Row>,
    /// Total SteM probes performed.
    pub probes: usize,
    span: SpanHandle,
    last_preferred: Vec<usize>,
    reroute_events: usize,
}

impl StarEddyOp {
    /// Route `driver` tuples through `stems`, probing `driver[key_cols[i]]`
    /// into `stems[i]`.
    pub fn new(
        driver: BoxOp,
        stems: Vec<SteM>,
        key_cols: &[&str],
        policy: RoutingPolicy,
        seed: u64,
        ctx: ExecContext,
    ) -> Result<Self> {
        if stems.len() != key_cols.len() || stems.is_empty() {
            return Err(RqpError::Invalid("one key column per SteM required".into()));
        }
        let driver_schema = driver.schema().clone();
        let cols: Vec<usize> = key_cols
            .iter()
            .map(|k| driver_schema.index_of(k))
            .collect::<Result<_>>()?;
        let mut schema = driver_schema;
        for s in &stems {
            schema = schema.join(&s.schema);
        }
        let stats = vec![FilterStats { seen: 0.0, dropped: 0.0 }; stems.len()];
        let span = ctx.op_span("star_eddy", &[&driver]);
        let last_preferred = (0..stems.len()).collect();
        Ok(StarEddyOp {
            driver,
            stems,
            key_cols: cols,
            stats,
            policy,
            schema,
            ctx,
            rng: rqp_common::rng::seeded(seed),
            pending: Vec::new(),
            probes: 0,
            span,
            last_preferred,
            reroute_events: 0,
        })
    }

    /// SteM order the eddy currently prefers (most-dropping first).
    pub fn preferred_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.stems.len()).collect();
        idx.sort_by(|&a, &b| {
            self.stats[b]
                .drop_rate()
                .partial_cmp(&self.stats[a].drop_rate())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }

    fn route_order(&mut self) -> Vec<usize> {
        match &self.policy {
            RoutingPolicy::Fixed(order) => order.clone(),
            RoutingPolicy::Lottery { .. } => {
                let mut remaining: Vec<usize> = (0..self.stems.len()).collect();
                let mut order = Vec::with_capacity(remaining.len());
                while !remaining.is_empty() {
                    let weights: Vec<f64> = remaining
                        .iter()
                        .map(|&i| self.stats[i].drop_rate() + 0.05)
                        .collect();
                    let total: f64 = weights.iter().sum();
                    let mut pick = self.rng.gen::<f64>() * total;
                    let mut chosen = 0usize;
                    for (j, w) in weights.iter().enumerate() {
                        if pick < *w {
                            chosen = j;
                            break;
                        }
                        pick -= w;
                    }
                    order.push(remaining.swap_remove(chosen));
                }
                order
            }
        }
    }

    /// See [`EddyFilterOp::note_reroute`].
    fn note_reroute(&mut self) {
        let now = self.preferred_order();
        if now != self.last_preferred {
            self.ctx.metrics.counter("eddy.reroutes").inc();
            if self.reroute_events < MAX_REROUTE_EVENTS {
                self.span.record_event(
                    &self.ctx.clock,
                    "eddy.reroute",
                    &format!("preferred order {:?} -> {now:?}", self.last_preferred),
                );
                self.reroute_events += 1;
            }
            self.last_preferred = now;
        }
    }
}

impl Operator for StarEddyOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(row) = self.pending.pop() {
                self.span.produced(&self.ctx.clock);
                return Some(row);
            }
            let Some(driver_row) = self.driver.next() else {
                self.span.close(&self.ctx.clock);
                return None;
            };
            let order = self.route_order();
            let decay = match self.policy {
                RoutingPolicy::Lottery { decay } => decay,
                _ => 1.0,
            };
            // Probe SteMs in the chosen order; a miss drops the tuple early.
            // Matched dimension rows per SteM, gathered in probe order.
            let mut per_stem: Vec<(usize, Vec<Row>)> = Vec::with_capacity(order.len());
            let mut dropped = false;
            for &s in &order {
                self.probes += 1;
                self.ctx.clock.charge_hash_probe(1.0);
                let key = &driver_row[self.key_cols[s]];
                let hit = self.stems[s].probe(key);
                let st = &mut self.stats[s];
                st.seen = st.seen * decay + 1.0;
                st.dropped = st.dropped * decay + if hit.is_some() { 0.0 } else { 1.0 };
                match hit {
                    Some(rows) => per_stem.push((s, rows.clone())),
                    None => {
                        dropped = true;
                        break;
                    }
                }
            }
            self.note_reroute();
            if dropped {
                continue;
            }
            // Emit the cross product of matches, with dimension columns in
            // declared SteM order (schema order), not probe order.
            per_stem.sort_by_key(|&(s, _)| s);
            let mut results = vec![driver_row];
            for (_, dim_rows) in per_stem {
                let mut expanded = Vec::with_capacity(results.len() * dim_rows.len());
                for base in &results {
                    for d in &dim_rows {
                        self.ctx.clock.charge_cpu_tuples(1.0);
                        let mut row = base.clone();
                        row.extend(d.clone());
                        expanded.push(row);
                    }
                }
                results = expanded;
            }
            self.pending = results;
        }
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::collect;
    use crate::filter::test_support::RowsOp;
    use rqp_common::expr::{col, lit};
    use rqp_common::DataType;

    fn src(n: i64) -> BoxOp {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let rows: Vec<Row> = (0..n)
            .map(|i| vec![Value::Int(i % 10), Value::Int(i % 100)])
            .collect();
        RowsOp::boxed(schema, rows)
    }

    #[test]
    fn eddy_filters_correctly() {
        let ctx = ExecContext::unbounded();
        let preds = vec![col("a").lt(lit(5i64)), col("b").lt(lit(50i64))];
        let mut e = EddyFilterOp::new(src(1000), &preds, RoutingPolicy::Lottery { decay: 0.99 }, 7, ctx)
            .unwrap();
        let out = collect(&mut e);
        // a<5: half; b<50: half; a and b correlated via i → count exactly:
        let expected = (0..1000)
            .filter(|i| i % 10 < 5 && i % 100 < 50)
            .count();
        assert_eq!(out.len(), expected);
    }

    #[test]
    fn lottery_learns_to_run_selective_filter_first() {
        let ctx = ExecContext::unbounded();
        // p0 passes 90%, p1 passes 1% → eddy should prefer p1 first.
        let preds = vec![col("a").ge(lit(1i64)), col("b").eq(lit(0i64))];
        let mut e = EddyFilterOp::new(
            src(5000),
            &preds,
            RoutingPolicy::Lottery { decay: 0.995 },
            7,
            ctx,
        )
        .unwrap();
        let _ = collect(&mut e);
        assert_eq!(e.preferred_order()[0], 1, "selective predicate first");
        // The order shift is an observable adaptive decision.
        assert!(e.ctx.metrics.counter("eddy.reroutes").get() >= 1);
        assert!(e.span.events().iter().any(|ev| ev.kind == "eddy.reroute"));
        assert!(
            e.span.events().len() <= MAX_REROUTE_EVENTS,
            "report-side event volume is capped"
        );
        // The adaptive eddy does fewer evaluations than the worst fixed order.
        let ctx2 = ExecContext::unbounded();
        let mut worst = EddyFilterOp::new(
            src(5000),
            &preds,
            RoutingPolicy::Fixed(vec![0, 1]),
            7,
            ctx2,
        )
        .unwrap();
        let _ = collect(&mut worst);
        assert!(
            e.evaluations < worst.evaluations,
            "eddy {} vs fixed-bad {}",
            e.evaluations,
            worst.evaluations
        );
    }

    #[test]
    fn fixed_policy_validates_order() {
        let ctx = ExecContext::unbounded();
        let preds = vec![col("a").lt(lit(5i64))];
        assert!(EddyFilterOp::new(
            src(10),
            &preds,
            RoutingPolicy::Fixed(vec![0, 1]),
            7,
            ctx
        )
        .is_err());
    }

    fn dim_stem(name: &str, keys: std::ops::Range<i64>) -> SteM {
        let schema = Schema::from_pairs(&[(
            Box::leak(format!("{name}.v").into_boxed_str()) as &str,
            DataType::Int,
        )]);
        let pairs: Vec<(Value, Row)> = keys
            .map(|k| (Value::Int(k), vec![Value::Int(k * 1000)]))
            .collect();
        SteM::build(name, schema, pairs)
    }

    #[test]
    fn star_eddy_joins_correctly() {
        let ctx = ExecContext::unbounded();
        // Driver a∈0..10, b∈0..100. dim1 matches a<5, dim2 matches b<30.
        let stems = vec![dim_stem("d1", 0..5), dim_stem("d2", 0..30)];
        let mut e = StarEddyOp::new(
            src(1000),
            stems,
            &["a", "b"],
            RoutingPolicy::Lottery { decay: 0.99 },
            3,
            ctx,
        )
        .unwrap();
        let out = collect(&mut e);
        let expected = (0..1000)
            .filter(|i| i % 10 < 5 && i % 100 < 30)
            .count();
        assert_eq!(out.len(), expected);
        // Check join semantics on one row: d1.v == a*1000.
        let r = &out[0];
        assert_eq!(r[2], Value::Int(r[0].as_int().unwrap() * 1000));
        assert_eq!(r[3], Value::Int(r[1].as_int().unwrap() * 1000));
    }

    #[test]
    fn star_eddy_prefers_most_selective_stem() {
        let ctx = ExecContext::unbounded();
        // d1 matches everything (a∈0..10 ⊆ 0..10); d2 matches 1 of 100 keys.
        let stems = vec![dim_stem("d1", 0..10), dim_stem("d2", 0..1)];
        let mut e = StarEddyOp::new(
            src(5000),
            stems,
            &["a", "b"],
            RoutingPolicy::Lottery { decay: 0.995 },
            3,
            ctx,
        )
        .unwrap();
        let _ = collect(&mut e);
        assert_eq!(e.preferred_order()[0], 1);
        // Compare probes vs the bad fixed order.
        let ctx2 = ExecContext::unbounded();
        let stems2 = vec![dim_stem("d1", 0..10), dim_stem("d2", 0..1)];
        let mut fixed = StarEddyOp::new(
            src(5000),
            stems2,
            &["a", "b"],
            RoutingPolicy::Fixed(vec![0, 1]),
            3,
            ctx2,
        )
        .unwrap();
        let _ = collect(&mut fixed);
        assert!(e.probes < fixed.probes, "eddy {} vs fixed {}", e.probes, fixed.probes);
    }
}
