//! MJoin: the n-ary symmetric hash join.
//!
//! The adaptive-query-processing survey describes MJoins (n-ary symmetric
//! hash joins) as the most adaptivity-friendly join shape: one hash table
//! per input, tuples from *any* input arrive in any interleaving, and each
//! arrival probes the other tables along a **probing sequence** — there is
//! no frozen join tree to regret. The price the seminar's deferred-decisions
//! session flags — "increased memory requirements when many joins are
//! executed on large datasets" — is real here too: every input is fully
//! retained.
//!
//! This implementation covers the common star/natural case: all inputs join
//! on a single shared key column. Probing sequences adapt to observed miss
//! rates (most-missing table probed first), the MJoin counterpart of eddy
//! lottery routing.

use crate::context::ExecContext;
use crate::{BoxOp, Operator};
use rqp_common::{Result, Row, RqpError, Schema, Value};
use rqp_telemetry::SpanHandle;
use std::collections::HashMap;

/// N-ary symmetric hash join on one shared key.
pub struct MJoinOp {
    inputs: Vec<BoxOp>,
    key_cols: Vec<usize>,
    /// Hash tables, one per input.
    tables: Vec<HashMap<Value, Vec<Row>>>,
    done: Vec<bool>,
    /// Per-input probe-miss counters (drive the adaptive probing sequence).
    misses: Vec<f64>,
    probes: Vec<f64>,
    schema: Schema,
    ctx: ExecContext,
    next_input: usize,
    pending: Vec<Row>,
    /// Total probe operations (work metric).
    pub total_probes: usize,
    span: SpanHandle,
}

impl MJoinOp {
    /// Join `inputs` on equality of their respective `key_columns`.
    pub fn new(inputs: Vec<BoxOp>, key_columns: &[&str], ctx: ExecContext) -> Result<Self> {
        if inputs.len() < 2 || inputs.len() != key_columns.len() {
            return Err(RqpError::Invalid(
                "MJoin needs ≥2 inputs with one key column each".into(),
            ));
        }
        let key_cols: Vec<usize> = inputs
            .iter()
            .zip(key_columns)
            .map(|(op, k)| op.schema().index_of(k))
            .collect::<Result<_>>()?;
        let mut schema = inputs[0].schema().clone();
        for op in &inputs[1..] {
            schema = schema.join(op.schema());
        }
        let n = inputs.len();
        let refs: Vec<&BoxOp> = inputs.iter().collect();
        let span = ctx.op_span("m_join", &refs);
        Ok(MJoinOp {
            inputs,
            key_cols,
            tables: (0..n).map(|_| HashMap::new()).collect(),
            done: vec![false; n],
            misses: vec![0.0; n],
            probes: vec![0.0; n],
            schema,
            ctx,
            next_input: 0,
            pending: Vec::new(),
            total_probes: 0,
            span,
        })
    }

    /// The probing sequence the join currently prefers (highest observed
    /// miss rate first — fail fast).
    pub fn probing_sequence(&self, exclude: usize) -> Vec<usize> {
        let mut idx: Vec<usize> =
            (0..self.inputs.len()).filter(|&i| i != exclude).collect();
        idx.sort_by(|&a, &b| {
            let ra = self.misses[a] / self.probes[a].max(1.0);
            let rb = self.misses[b] / self.probes[b].max(1.0);
            rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }

    /// Pull one tuple from the next live input; returns false when all
    /// inputs are exhausted.
    fn step(&mut self) -> bool {
        let n = self.inputs.len();
        for _ in 0..n {
            let i = self.next_input;
            self.next_input = (self.next_input + 1) % n;
            if self.done[i] {
                continue;
            }
            match self.inputs[i].next() {
                None => {
                    self.done[i] = true;
                    continue;
                }
                Some(row) => {
                    let key = row[self.key_cols[i]].clone();
                    self.ctx.clock.charge_hash_build(1.0);
                    // Probe the other tables along the adaptive sequence;
                    // any empty probe kills the combination early.
                    let seq = self.probing_sequence(i);
                    let mut matches: Vec<(usize, &Vec<Row>)> = Vec::with_capacity(n - 1);
                    let mut dead = false;
                    for &j in &seq {
                        self.total_probes += 1;
                        self.probes[j] += 1.0;
                        self.ctx.clock.charge_hash_probe(1.0);
                        match self.tables[j].get(&key) {
                            Some(rows) => matches.push((j, rows)),
                            None => {
                                self.misses[j] += 1.0;
                                dead = true;
                                break;
                            }
                        }
                    }
                    if !dead {
                        // Emit the cross product, with inputs in declared
                        // order: position i takes the new row.
                        matches.sort_by_key(|&(j, _)| j);
                        let mut combos: Vec<Vec<&Row>> = vec![Vec::with_capacity(n)];
                        let mut mi = 0usize;
                        for slot in 0..n {
                            if slot == i {
                                for c in &mut combos {
                                    c.push(&row);
                                }
                            } else {
                                let (_, rows) = matches[mi];
                                mi += 1;
                                let mut next = Vec::with_capacity(combos.len() * rows.len());
                                for c in combos {
                                    for r in rows {
                                        let mut c2 = c.clone();
                                        c2.push(r);
                                        next.push(c2);
                                    }
                                }
                                combos = next;
                            }
                        }
                        for combo in combos {
                            self.ctx.clock.charge_cpu_tuples(1.0);
                            let mut out = Vec::with_capacity(self.schema.len());
                            for part in combo {
                                out.extend(part.iter().cloned());
                            }
                            self.pending.push(out);
                        }
                    }
                    self.tables[i].entry(key).or_default().push(row);
                    return true;
                }
            }
        }
        false
    }
}

impl Operator for MJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(r) = self.pending.pop() {
                self.span.produced(&self.ctx.clock);
                return Some(r);
            }
            if !self.step() {
                self.span.close(&self.ctx.clock);
                return None;
            }
        }
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::collect;
    use crate::filter::test_support::RowsOp;
    use crate::join::HashJoinOp;
    use rqp_common::DataType;

    fn src(name: &str, keys: Vec<i64>) -> BoxOp {
        let schema = Schema::from_pairs(&[(
            Box::leak(format!("{name}.k").into_boxed_str()) as &str,
            DataType::Int,
        )]);
        RowsOp::boxed(schema, keys.into_iter().map(|k| vec![Value::Int(k)]).collect())
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<String> {
        let mut v: Vec<String> = rows.drain(..).map(|r| format!("{r:?}")).collect();
        v.sort();
        v
    }

    #[test]
    fn three_way_matches_binary_cascade() {
        let ctx = ExecContext::unbounded();
        let a = vec![1, 2, 2, 3, 7];
        let b = vec![2, 3, 3, 9];
        let c = vec![1, 2, 3, 3];
        let mut m = MJoinOp::new(
            vec![src("a", a.clone()), src("b", b.clone()), src("c", c.clone())],
            &["a.k", "b.k", "c.k"],
            ctx.clone(),
        )
        .unwrap();
        let mjoin_out = sorted(collect(&mut m));

        let ab = Box::new(
            HashJoinOp::new(src("a", a), src("b", b), &["a.k"], &["b.k"], ctx.clone()).unwrap(),
        );
        let mut abc =
            HashJoinOp::new(ab, src("c", c), &["a.k"], &["c.k"], ctx).unwrap();
        let cascade_out = sorted(collect(&mut abc));
        assert_eq!(mjoin_out, cascade_out);
        // key 2: 2×1×1=2, key 3: 1×2×2=4 → 6 rows
        assert_eq!(mjoin_out.len(), 6);
    }

    #[test]
    fn emits_incrementally() {
        let ctx = ExecContext::unbounded();
        let mut m = MJoinOp::new(
            vec![src("a", vec![5, 1]), src("b", vec![5, 2]), src("c", vec![5, 3])],
            &["a.k", "b.k", "c.k"],
            ctx,
        )
        .unwrap();
        // After at most one round-robin cycle + one tuple, the 5-match exists.
        let first = m.next();
        assert!(first.is_some());
        assert_eq!(first.unwrap(), vec![Value::Int(5); 3]);
    }

    #[test]
    fn adaptive_probing_prefers_empty_table() {
        let ctx = ExecContext::unbounded();
        // Input c matches almost nothing: probing it first kills tuples
        // cheaply.
        let a: Vec<i64> = (0..2000).map(|i| i % 50).collect();
        let b: Vec<i64> = (0..2000).map(|i| i % 50).collect();
        let c: Vec<i64> = vec![999; 100]; // never matches
        let mut m = MJoinOp::new(
            vec![src("a", a), src("b", b), src("c", c)],
            &["a.k", "b.k", "c.k"],
            ctx,
        )
        .unwrap();
        let out = collect(&mut m);
        assert!(out.is_empty());
        // After warm-up, the sequence excluding input 0 should put table 2
        // (the all-miss table) first.
        assert_eq!(m.probing_sequence(0)[0], 2);
    }

    #[test]
    fn rejects_bad_arity() {
        let ctx = ExecContext::unbounded();
        assert!(MJoinOp::new(vec![src("a", vec![1])], &["a.k"], ctx.clone()).is_err());
        assert!(MJoinOp::new(
            vec![src("a", vec![1]), src("b", vec![1])],
            &["a.k"],
            ctx
        )
        .is_err());
    }

    #[test]
    fn empty_input_kills_all_output() {
        let ctx = ExecContext::unbounded();
        let mut m = MJoinOp::new(
            vec![src("a", vec![1, 2]), src("b", vec![]), src("c", vec![1, 2])],
            &["a.k", "b.k", "c.k"],
            ctx,
        )
        .unwrap();
        assert!(collect(&mut m).is_empty());
    }
}
