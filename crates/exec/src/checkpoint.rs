//! POP CHECK operators (Markl, Raman, Simmen, Lohman, Pirahesh —
//! *Robust Query Processing through Progressive Optimization*, SIGMOD 2004).
//!
//! A CHECK operator sits at a materialization point of the plan. It carries a
//! **validity range** `[lo, hi]`: the interval of actual cardinalities within
//! which the remainder of the plan is still (near-)optimal, computed by the
//! optimizer at plan time. At runtime the CHECK materializes its input,
//! counts the actual rows, and — if the count escapes the range — *stops the
//! plan* and publishes the materialized intermediate through a shared
//! [`PopSignal`], so the re-optimizer can reuse the completed work as a new
//! base relation instead of discarding it.

use crate::context::ExecContext;
use crate::{BoxOp, Operator};
use rqp_common::{Row, Schema};
use rqp_telemetry::SpanHandle;
use std::cell::RefCell;
use std::rc::Rc;

/// Outcome of a CHECK once it has materialized its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Not yet evaluated.
    Pending,
    /// Actual cardinality inside the validity range: plan continues.
    Passed,
    /// Range violated: plan halted, intermediate published for reuse.
    Violated,
}

/// A violation report carrying the reusable intermediate result.
#[derive(Debug, Clone)]
pub struct CheckViolation {
    /// Which checkpoint fired.
    pub checkpoint_id: usize,
    /// Estimated cardinality the optimizer planned with.
    pub estimated_rows: f64,
    /// Validity range `[lo, hi]` that was violated.
    pub validity: (f64, f64),
    /// Actual row count observed.
    pub actual_rows: usize,
    /// The materialized intermediate (reusable work).
    pub buffer: Vec<Row>,
    /// Schema of the intermediate.
    pub schema: Schema,
}

/// Shared mailbox through which a CHECK reports a violation to the POP
/// driver.
#[derive(Debug, Default)]
pub struct PopSignal {
    violation: RefCell<Option<CheckViolation>>,
}

impl PopSignal {
    /// Fresh signal.
    pub fn new() -> Rc<Self> {
        Rc::new(PopSignal::default())
    }

    /// Take the violation, if any (clears the mailbox).
    pub fn take(&self) -> Option<CheckViolation> {
        self.violation.borrow_mut().take()
    }

    /// True if a violation is waiting.
    pub fn violated(&self) -> bool {
        self.violation.borrow().is_some()
    }

    /// First violation wins: once a CHECK upstream has fired, every operator
    /// below it sees a truncated stream, so later "violations" are artifacts
    /// and must not mask the real one.
    fn publish(&self, v: CheckViolation) {
        let mut slot = self.violation.borrow_mut();
        if slot.is_none() {
            *slot = Some(v);
        }
    }
}

/// The CHECK operator.
pub struct CheckOp {
    inner: Option<BoxOp>,
    checkpoint_id: usize,
    estimated_rows: f64,
    validity: (f64, f64),
    signal: Rc<PopSignal>,
    schema: Schema,
    ctx: ExecContext,
    buffered: Option<std::vec::IntoIter<Row>>,
    outcome: CheckOutcome,
    span: SpanHandle,
    /// The input's span, when it carries one: the authoritative actual-
    /// cardinality observation (un-instrumented test sources fall back to
    /// the buffer length).
    input_span: Option<SpanHandle>,
}

impl CheckOp {
    /// Wrap `inner` with a checkpoint. `validity` is the inclusive actual-
    /// cardinality interval within which the downstream plan remains valid.
    pub fn new(
        inner: BoxOp,
        checkpoint_id: usize,
        estimated_rows: f64,
        validity: (f64, f64),
        signal: Rc<PopSignal>,
        ctx: ExecContext,
    ) -> Self {
        let schema = inner.schema().clone();
        let span = ctx.op_span("check", &[&inner]);
        span.set_est_rows(estimated_rows);
        span.set_detail(&format!("cp{checkpoint_id} [{},{}]", validity.0, validity.1));
        let input_span = inner.span().cloned();
        CheckOp {
            inner: Some(inner),
            checkpoint_id,
            estimated_rows,
            validity,
            signal,
            schema,
            ctx,
            buffered: None,
            outcome: CheckOutcome::Pending,
            span,
            input_span,
        }
    }

    /// The checkpoint's outcome so far.
    pub fn outcome(&self) -> CheckOutcome {
        self.outcome
    }

    fn materialize(&mut self) {
        let mut inner = self.inner.take().expect("materialize once");
        let mut buffer = Vec::new();
        while let Some(r) = inner.next() {
            buffer.push(r);
        }
        // Materialization cost: write + read the intermediate once.
        self.ctx.clock.charge_cpu_tuples(buffer.len() as f64);
        // Fully drained, so the input's span observation equals the buffer
        // length; prefer the span as the single source of actuals.
        let actual = match &self.input_span {
            Some(s) => s.rows() as f64,
            None => buffer.len() as f64,
        };
        if actual < self.validity.0 || actual > self.validity.1 {
            self.outcome = CheckOutcome::Violated;
            self.span.record_event(
                &self.ctx.clock,
                "pop.violation",
                &format!(
                    "cp{} actual={} outside [{},{}] (est {})",
                    self.checkpoint_id, actual, self.validity.0, self.validity.1,
                    self.estimated_rows
                ),
            );
            self.ctx.metrics.counter("pop.violations").inc();
            self.signal.publish(CheckViolation {
                checkpoint_id: self.checkpoint_id,
                estimated_rows: self.estimated_rows,
                validity: self.validity,
                actual_rows: actual as usize,
                buffer,
                schema: self.schema.clone(),
            });
            self.buffered = Some(Vec::new().into_iter());
        } else {
            self.outcome = CheckOutcome::Passed;
            self.buffered = Some(buffer.into_iter());
        }
    }
}

impl Operator for CheckOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if self.buffered.is_none() {
            self.materialize();
        }
        let row = self.buffered.as_mut().expect("materialized").next();
        match &row {
            Some(_) => self.span.produced(&self.ctx.clock),
            None => self.span.close(&self.ctx.clock),
        }
        row
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::collect;
    use crate::filter::test_support::RowsOp;
    use rqp_common::{DataType, Value};

    fn src(n: i64) -> BoxOp {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        RowsOp::boxed(schema, (0..n).map(|i| vec![Value::Int(i)]).collect())
    }

    #[test]
    fn passes_inside_validity_range() {
        let ctx = ExecContext::unbounded();
        let signal = PopSignal::new();
        let mut c = CheckOp::new(src(50), 1, 50.0, (10.0, 100.0), Rc::clone(&signal), ctx);
        let out = collect(&mut c);
        assert_eq!(out.len(), 50);
        assert_eq!(c.outcome(), CheckOutcome::Passed);
        assert!(!signal.violated());
    }

    #[test]
    fn violates_above_range_and_publishes_buffer() {
        let ctx = ExecContext::unbounded();
        let signal = PopSignal::new();
        let mut c = CheckOp::new(src(500), 7, 50.0, (10.0, 100.0), Rc::clone(&signal), ctx);
        let out = collect(&mut c);
        assert!(out.is_empty(), "plan halted");
        assert_eq!(c.outcome(), CheckOutcome::Violated);
        let v = signal.take().expect("violation published");
        assert_eq!(v.checkpoint_id, 7);
        assert_eq!(v.actual_rows, 500);
        let events = c.span.events();
        assert_eq!(events.len(), 1, "violation recorded as a span event");
        assert_eq!(events[0].kind, "pop.violation");
        assert!(events[0].detail.contains("cp7"), "{}", events[0].detail);
        assert_eq!(v.buffer.len(), 500, "intermediate preserved for reuse");
        assert_eq!(v.validity, (10.0, 100.0));
        assert!(!signal.violated(), "take clears");
    }

    #[test]
    fn violates_below_range() {
        let ctx = ExecContext::unbounded();
        let signal = PopSignal::new();
        let mut c = CheckOp::new(src(3), 2, 50.0, (10.0, 100.0), Rc::clone(&signal), ctx);
        let out = collect(&mut c);
        assert!(out.is_empty());
        assert_eq!(signal.take().unwrap().actual_rows, 3);
    }

    #[test]
    fn boundary_values_pass() {
        let ctx = ExecContext::unbounded();
        let signal = PopSignal::new();
        let mut c = CheckOp::new(src(10), 0, 10.0, (10.0, 100.0), Rc::clone(&signal), ctx.clone());
        assert_eq!(collect(&mut c).len(), 10);
        let mut c = CheckOp::new(src(100), 0, 10.0, (10.0, 100.0), Rc::clone(&signal), ctx);
        assert_eq!(collect(&mut c).len(), 100);
        assert!(!signal.violated());
    }

    #[test]
    fn first_violation_wins() {
        let ctx = ExecContext::unbounded();
        let signal = PopSignal::new();
        // Inner check violates (500 ≫ 100); the outer check then sees an
        // empty stream and "violates" too — but must not mask the inner one.
        let inner = CheckOp::new(src(500), 1, 50.0, (10.0, 100.0), Rc::clone(&signal), ctx.clone());
        let mut outer =
            CheckOp::new(Box::new(inner), 2, 400.0, (100.0, 800.0), Rc::clone(&signal), ctx);
        let out = collect(&mut outer);
        assert!(out.is_empty());
        let v = signal.take().expect("violation");
        assert_eq!(v.checkpoint_id, 1, "the root cause, not the artifact");
        assert_eq!(v.buffer.len(), 500);
    }

    #[test]
    fn pending_before_first_next() {
        let ctx = ExecContext::unbounded();
        let signal = PopSignal::new();
        let c = CheckOp::new(src(10), 0, 10.0, (0.0, 100.0), signal, ctx);
        assert_eq!(c.outcome(), CheckOutcome::Pending);
    }
}
