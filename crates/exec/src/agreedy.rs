//! A-Greedy: adaptive ordering of correlated selection predicates
//! (Babu, Motwani, Munagala, Nishizawa, Widom — SIGMOD 2004; surveyed in the
//! seminar's adaptive-query-processing reading).
//!
//! A-Greedy continuously maintains the *greedy invariant*: predicate at
//! position `i` has the highest conditional drop rate among tuples that
//! survived positions `0..i`, measured over a sliding sample ("matrix view")
//! of recent tuples with their full evaluation profile. Unlike rank ordering
//! under independence, the conditional profile captures predicate
//! correlation — the case the seminar's estimation sessions flag as the
//! hard one. Experiment E16 compares A-Greedy against static orders under
//! mid-stream selectivity drift.

use crate::context::ExecContext;
use crate::{BoxOp, Operator};
use rand::rngs::StdRng;
use rand::Rng;
use rqp_common::expr::BoundExpr;
use rqp_common::{Expr, Result, Row, RqpError, Schema};
use rqp_telemetry::SpanHandle;
use std::collections::VecDeque;

/// Adaptive selection-ordering operator.
pub struct AGreedyFilterOp {
    inner: BoxOp,
    filters: Vec<BoundExpr>,
    /// Current evaluation order (indices into `filters`).
    order: Vec<usize>,
    /// Sliding window of sampled tuple profiles: bit `f` set = filter `f`
    /// FAILED on that tuple.
    window: VecDeque<u64>,
    window_size: usize,
    /// Sampling probability for profiling tuples (profiled tuples evaluate
    /// *all* predicates).
    sample_prob: f64,
    /// Re-derive the order every this many input tuples.
    reopt_interval: usize,
    tuples_seen: usize,
    schema: Schema,
    ctx: ExecContext,
    rng: StdRng,
    /// Number of evaluations performed (work metric).
    pub evaluations: usize,
    /// Number of times the order actually changed.
    pub reorderings: usize,
    span: SpanHandle,
}

impl AGreedyFilterOp {
    /// Adaptive filter over `preds`.
    pub fn new(
        inner: BoxOp,
        preds: &[Expr],
        window_size: usize,
        sample_prob: f64,
        reopt_interval: usize,
        seed: u64,
        ctx: ExecContext,
    ) -> Result<Self> {
        if preds.is_empty() || preds.len() > 64 {
            return Err(RqpError::Invalid("A-Greedy supports 1..=64 predicates".into()));
        }
        let schema = inner.schema().clone();
        let filters: Vec<BoundExpr> = preds
            .iter()
            .map(|p| p.bind(&schema))
            .collect::<Result<_>>()?;
        let order = (0..filters.len()).collect();
        let span = ctx.op_span("agreedy_filter", &[&inner]);
        Ok(AGreedyFilterOp {
            inner,
            filters,
            order,
            window: VecDeque::with_capacity(window_size),
            window_size,
            sample_prob: sample_prob.clamp(0.0, 1.0),
            reopt_interval: reopt_interval.max(1),
            tuples_seen: 0,
            schema,
            ctx,
            rng: rqp_common::rng::seeded(seed),
            evaluations: 0,
            reorderings: 0,
            span,
        })
    }

    /// The current evaluation order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Greedy re-derivation from the matrix view: position 0 gets the filter
    /// with the most failures over the whole window; position `i` gets the
    /// filter with the most failures among window tuples that *pass* all
    /// filters at positions `0..i`.
    fn rederive_order(&mut self) {
        if self.window.is_empty() {
            return;
        }
        let n = self.filters.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut new_order = Vec::with_capacity(n);
        let mut survivors: Vec<u64> = self.window.iter().copied().collect();
        while remaining.len() > 1 {
            let (best_pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(pos, &f)| {
                    let fails = survivors
                        .iter()
                        .filter(|&&profile| profile & (1u64 << f) != 0)
                        .count();
                    (pos, fails)
                })
                .max_by_key(|&(_, fails)| fails)
                .expect("remaining non-empty");
            let f = remaining.swap_remove(best_pos);
            new_order.push(f);
            survivors.retain(|&profile| profile & (1u64 << f) == 0);
        }
        new_order.push(remaining[0]);
        if new_order != self.order {
            self.reorderings += 1;
            self.order = new_order;
        }
    }
}

impl Operator for AGreedyFilterOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        'tuple: loop {
            let Some(row) = self.inner.next() else {
                self.span.close(&self.ctx.clock);
                return None;
            };
            self.tuples_seen += 1;
            let profile_this = self.rng.gen::<f64>() < self.sample_prob;
            if profile_this {
                // Evaluate all filters to build the full profile.
                let mut profile = 0u64;
                let mut passed_all = true;
                for (f, filter) in self.filters.iter().enumerate() {
                    self.evaluations += 1;
                    self.ctx.clock.charge_compares(1.0);
                    if !filter.eval_bool(&row) {
                        profile |= 1u64 << f;
                        passed_all = false;
                    }
                }
                if self.window.len() == self.window_size {
                    self.window.pop_front();
                }
                self.window.push_back(profile);
                if self.tuples_seen.is_multiple_of(self.reopt_interval) {
                    self.rederive_order();
                }
                if passed_all {
                    self.span.produced(&self.ctx.clock);
                    return Some(row);
                }
                continue 'tuple;
            }
            // Fast path: current order, short-circuit on first failure.
            let order = self.order.clone();
            for f in order {
                self.evaluations += 1;
                self.ctx.clock.charge_compares(1.0);
                if !self.filters[f].eval_bool(&row) {
                    continue 'tuple;
                }
            }
            if self.tuples_seen.is_multiple_of(self.reopt_interval) {
                self.rederive_order();
            }
            self.span.produced(&self.ctx.clock);
            return Some(row);
        }
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::collect;
    use crate::filter::test_support::RowsOp;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Value};

    /// Source where predicate selectivities flip halfway: for the first half
    /// `a < 100` always passes and `b < 100` rarely does; then they swap.
    fn drifting_src(n: i64) -> BoxOp {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                if i < n / 2 {
                    vec![Value::Int(i % 50), Value::Int(100 + i % 1000)]
                } else {
                    vec![Value::Int(100 + i % 1000), Value::Int(i % 50)]
                }
            })
            .collect();
        RowsOp::boxed(schema, rows)
    }

    fn preds() -> Vec<Expr> {
        vec![col("a").lt(lit(100i64)), col("b").lt(lit(100i64))]
    }

    #[test]
    fn produces_correct_rows() {
        let ctx = ExecContext::unbounded();
        let mut a =
            AGreedyFilterOp::new(drifting_src(2000), &preds(), 100, 0.1, 50, 7, ctx).unwrap();
        let out = collect(&mut a);
        // Only rows where both a<100 and b<100; by construction none in
        // either half satisfies both (one side is always ≥ 100).
        assert!(out.is_empty());
    }

    #[test]
    fn adapts_order_after_drift() {
        let ctx = ExecContext::unbounded();
        let mut a = AGreedyFilterOp::new(
            drifting_src(10_000),
            &preds(),
            200,
            0.2,
            100,
            7,
            ctx,
        )
        .unwrap();
        let _ = collect(&mut a);
        // After the flip, predicate 0 (a<100) drops almost everything →
        // should be first.
        assert_eq!(a.order()[0], 0);
        assert!(a.reorderings >= 1, "order must have changed at least once");
    }

    #[test]
    fn beats_stale_static_order() {
        // Static order fixed for the pre-drift distribution (b first is good
        // early, terrible late). Compare total evaluations.
        let ctx = ExecContext::unbounded();
        let mut adaptive = AGreedyFilterOp::new(
            drifting_src(20_000),
            &preds(),
            200,
            0.1,
            100,
            7,
            ctx,
        )
        .unwrap();
        let _ = collect(&mut adaptive);

        // "Stale static": always evaluate p0 then p1 — bad in the first half
        // where p0 passes everything.
        let ctx2 = ExecContext::unbounded();
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let _ = schema;
        let mut stale_evals = 0usize;
        let mut src = drifting_src(20_000);
        let s = src.schema().clone();
        let p0 = preds()[0].bind(&s).unwrap();
        let p1 = preds()[1].bind(&s).unwrap();
        while let Some(r) = src.next() {
            stale_evals += 1;
            if p0.eval_bool(&r) {
                stale_evals += 1;
                let _ = p1.eval_bool(&r);
            }
        }
        let _ = ctx2;
        assert!(
            adaptive.evaluations < stale_evals,
            "adaptive {} vs stale {}",
            adaptive.evaluations,
            stale_evals
        );
    }

    #[test]
    fn rejects_empty_and_oversized() {
        let ctx = ExecContext::unbounded();
        assert!(
            AGreedyFilterOp::new(drifting_src(10), &[], 10, 0.1, 10, 1, ctx.clone()).is_err()
        );
    }

    #[test]
    fn window_bounded() {
        let ctx = ExecContext::unbounded();
        let mut a =
            AGreedyFilterOp::new(drifting_src(5000), &preds(), 50, 1.0, 10, 7, ctx).unwrap();
        let _ = collect(&mut a);
        assert!(a.window.len() <= 50);
    }
}
