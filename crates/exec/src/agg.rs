//! Hash aggregation.

use crate::context::ExecContext;
use crate::{BoxOp, Operator};
use rqp_common::{DataType, Field, Result, Row, RqpError, Schema, Value};
use rqp_telemetry::SpanHandle;
use std::collections::HashMap;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT(*) (column ignored) or COUNT(col).
    Count,
    /// SUM(col).
    Sum,
    /// MIN(col).
    Min,
    /// MAX(col).
    Max,
    /// AVG(col).
    Avg,
}

/// One aggregate column specification.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input column name (`None` only for COUNT(*)).
    pub col: Option<String>,
    /// Output field name.
    pub alias: String,
}

impl AggSpec {
    /// `COUNT(*) AS alias`
    pub fn count_star(alias: impl Into<String>) -> Self {
        AggSpec { func: AggFunc::Count, col: None, alias: alias.into() }
    }

    /// `func(col) AS alias`
    pub fn on(func: AggFunc, col: impl Into<String>, alias: impl Into<String>) -> Self {
        AggSpec { func, col: Some(col.into()), alias: alias.into() }
    }
}

#[derive(Debug, Clone)]
struct AggState {
    count: f64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> Self {
        AggState { count: 0.0, sum: 0.0, min: None, max: None }
    }

    fn update(&mut self, v: Option<&Value>) {
        match v {
            None => self.count += 1.0, // COUNT(*)
            Some(v) if !v.is_null() => {
                self.count += 1.0;
                if let Some(x) = v.as_float() {
                    self.sum += x;
                }
                if self.min.as_ref().map(|m| v < m).unwrap_or(true) {
                    self.min = Some(v.clone());
                }
                if self.max.as_ref().map(|m| v > m).unwrap_or(true) {
                    self.max = Some(v.clone());
                }
            }
            Some(_) => {}
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Avg => {
                if self.count > 0.0 {
                    Value::Float(self.sum / self.count)
                } else {
                    Value::Null
                }
            }
        }
    }
}

/// Hash-based GROUP BY aggregation.
///
/// With no group columns it produces exactly one row (global aggregates),
/// even over empty input (COUNT = 0) — SQL semantics.
pub struct HashAggOp {
    inner: Option<BoxOp>,
    group_cols: Vec<usize>,
    aggs: Vec<(AggFunc, Option<usize>)>,
    schema: Schema,
    ctx: ExecContext,
    out: Option<std::vec::IntoIter<Row>>,
    span: SpanHandle,
}

impl HashAggOp {
    /// Aggregate `inner`, grouping by `group_by` columns.
    pub fn new(
        inner: BoxOp,
        group_by: &[&str],
        aggs: &[AggSpec],
        ctx: ExecContext,
    ) -> Result<Self> {
        if aggs.is_empty() && group_by.is_empty() {
            return Err(RqpError::Invalid("aggregation needs groups or aggregates".into()));
        }
        let in_schema = inner.schema().clone();
        let group_cols: Vec<usize> = group_by
            .iter()
            .map(|c| in_schema.index_of(c))
            .collect::<Result<_>>()?;
        let mut fields: Vec<Field> = group_cols
            .iter()
            .map(|&i| in_schema.field(i).clone())
            .collect();
        let mut bound_aggs = Vec::with_capacity(aggs.len());
        for a in aggs {
            let col = a.col.as_deref().map(|c| in_schema.index_of(c)).transpose()?;
            let dtype = match a.func {
                AggFunc::Count => DataType::Int,
                AggFunc::Sum | AggFunc::Avg => DataType::Float,
                AggFunc::Min | AggFunc::Max => col
                    .map(|i| in_schema.field(i).dtype)
                    .unwrap_or(DataType::Float),
            };
            fields.push(Field::new(a.alias.clone(), dtype));
            bound_aggs.push((a.func, col));
        }
        let span = ctx.op_span("hash_agg", &[&inner]);
        Ok(HashAggOp {
            inner: Some(inner),
            group_cols,
            aggs: bound_aggs,
            schema: Schema::new(fields),
            ctx,
            out: None,
            span,
        })
    }

    fn run(&mut self) {
        let mut inner = self.inner.take().expect("run once");
        let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
        let mut n = 0.0;
        while let Some(r) = inner.next() {
            n += 1.0;
            let key: Vec<Value> = self.group_cols.iter().map(|&i| r[i].clone()).collect();
            let states = groups
                .entry(key)
                .or_insert_with(|| vec![AggState::new(); self.aggs.len()]);
            for (s, (_, col)) in states.iter_mut().zip(&self.aggs) {
                s.update(col.map(|i| &r[i]));
            }
        }
        self.ctx.clock.charge_hash_build(n);
        if groups.is_empty() && self.group_cols.is_empty() {
            groups.insert(Vec::new(), vec![AggState::new(); self.aggs.len()]);
        }
        let mut rows: Vec<Row> = groups
            .into_iter()
            .map(|(mut key, states)| {
                key.extend(
                    states
                        .iter()
                        .zip(&self.aggs)
                        .map(|(s, (f, _))| s.finish(*f)),
                );
                key
            })
            .collect();
        // Deterministic output order.
        rows.sort_by(|a, b| {
            for i in 0..self.group_cols.len() {
                let o = a[i].total_cmp(&b[i]);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.ctx.clock.charge_cpu_tuples(rows.len() as f64);
        self.out = Some(rows.into_iter());
    }
}

impl Operator for HashAggOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if self.out.is_none() {
            self.run();
        }
        let row = self.out.as_mut().expect("filled").next();
        match &row {
            Some(_) => self.span.produced(&self.ctx.clock),
            None => self.span.close(&self.ctx.clock),
        }
        row
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::collect;
    use crate::filter::test_support::RowsOp;

    fn src() -> BoxOp {
        let schema = Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Float)]);
        // groups 0,1,2 with 3,3,4 rows; v = 10*g + i
        let rows: Vec<Row> = vec![
            (0, 0.0),
            (0, 1.0),
            (0, 2.0),
            (1, 10.0),
            (1, 11.0),
            (1, 12.0),
            (2, 20.0),
            (2, 21.0),
            (2, 22.0),
            (2, 23.0),
        ]
        .into_iter()
        .map(|(g, v)| vec![Value::Int(g), Value::Float(v)])
        .collect();
        RowsOp::boxed(schema, rows)
    }

    #[test]
    fn group_by_with_all_functions() {
        let ctx = ExecContext::unbounded();
        let aggs = vec![
            AggSpec::count_star("n"),
            AggSpec::on(AggFunc::Sum, "v", "s"),
            AggSpec::on(AggFunc::Min, "v", "lo"),
            AggSpec::on(AggFunc::Max, "v", "hi"),
            AggSpec::on(AggFunc::Avg, "v", "avg"),
        ];
        let mut a = HashAggOp::new(src(), &["g"], &aggs, ctx).unwrap();
        let out = collect(&mut a);
        assert_eq!(out.len(), 3);
        // group 0: n=3, s=3, lo=0, hi=2, avg=1
        assert_eq!(out[0][0], Value::Int(0));
        assert_eq!(out[0][1], Value::Int(3));
        assert_eq!(out[0][2], Value::Float(3.0));
        assert_eq!(out[0][3], Value::Float(0.0));
        assert_eq!(out[0][4], Value::Float(2.0));
        assert_eq!(out[0][5], Value::Float(1.0));
        // group 2: n=4, s=86
        assert_eq!(out[2][1], Value::Int(4));
        assert_eq!(out[2][2], Value::Float(86.0));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let ctx = ExecContext::unbounded();
        let schema = Schema::from_pairs(&[("v", DataType::Float)]);
        let aggs = vec![AggSpec::count_star("n"), AggSpec::on(AggFunc::Avg, "v", "a")];
        let mut a =
            HashAggOp::new(RowsOp::boxed(schema, vec![]), &[], &aggs, ctx).unwrap();
        let out = collect(&mut a);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(0));
        assert!(out[0][1].is_null());
    }

    #[test]
    fn group_by_empty_input_yields_no_groups() {
        let ctx = ExecContext::unbounded();
        let schema = Schema::from_pairs(&[("g", DataType::Int)]);
        let aggs = vec![AggSpec::count_star("n")];
        let mut a =
            HashAggOp::new(RowsOp::boxed(schema, vec![]), &["g"], &aggs, ctx).unwrap();
        assert!(collect(&mut a).is_empty());
    }

    #[test]
    fn output_deterministically_sorted() {
        let ctx = ExecContext::unbounded();
        let aggs = vec![AggSpec::count_star("n")];
        let mut a = HashAggOp::new(src(), &["g"], &aggs, ctx).unwrap();
        let out = collect(&mut a);
        assert!(out.windows(2).all(|w| w[0][0] <= w[1][0]));
    }

    #[test]
    fn invalid_specs_rejected() {
        let ctx = ExecContext::unbounded();
        assert!(HashAggOp::new(src(), &[], &[], ctx.clone()).is_err());
        let aggs = vec![AggSpec::on(AggFunc::Sum, "nope", "s")];
        assert!(HashAggOp::new(src(), &["g"], &aggs, ctx).is_err());
    }
}
