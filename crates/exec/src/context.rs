//! Execution context: cost clock, memory governor, span tracer, metrics.

use crate::{BoxOp, Operator};
use rqp_common::sync::AtomicF64;
use rqp_common::{CancelToken, ChaosPolicy, CostClock, Row, Schema, SharedClock};
use rqp_telemetry::{MetricsRegistry, SpanHandle, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Workspace-memory governor, in *rows* of workspace.
///
/// The seminar's resource-management session ("grow & shrink memory",
/// FMT) needs memory that can fluctuate *while queries run*: operators ask
/// for a grant each time they materialize, so a budget change between two
/// pipeline stages is observed by the later stage. Spills are charged by the
/// operators themselves via the cost clock.
///
/// The governor also keeps pure-accounting tallies (grants issued,
/// outstanding workspace, high-water mark) so run reports can show memory
/// pressure; the tallies never influence what is granted. All state is
/// atomic: one governor budget spans every exchange worker, so a leak in one
/// worker would visibly starve the others — which is why operators release
/// on `Drop`, not only on drain-to-`None`.
#[derive(Debug)]
pub struct MemoryGovernor {
    budget_rows: AtomicF64,
    base_budget: AtomicF64,
    outstanding: AtomicF64,
    peak_outstanding: AtomicF64,
    grant_count: AtomicU64,
    granted_total: AtomicF64,
    pressure_epoch: AtomicU64,
}

impl MemoryGovernor {
    /// A governor with the given workspace budget (rows).
    pub fn new(budget_rows: f64) -> Arc<Self> {
        Arc::new(MemoryGovernor {
            budget_rows: AtomicF64::new(budget_rows.max(0.0)),
            base_budget: AtomicF64::new(budget_rows.max(0.0)),
            outstanding: AtomicF64::new(0.0),
            peak_outstanding: AtomicF64::new(0.0),
            grant_count: AtomicU64::new(0),
            granted_total: AtomicF64::new(0.0),
            pressure_epoch: AtomicU64::new(0),
        })
    }

    /// Current budget.
    pub fn budget(&self) -> f64 {
        self.budget_rows.get()
    }

    /// The budget the governor was configured with (what [`restore`]
    /// (Self::restore) returns to after shocks).
    pub fn base_budget(&self) -> f64 {
        self.base_budget.get()
    }

    /// Change the budget (FMT schedules call this mid-workload). Outstanding
    /// grants are *not* revoked: shrinking below what is already handed out
    /// leaves the governor overcommitted until operators release — but no
    /// longer *silently*: the pressure epoch is bumped so holders
    /// renegotiate ([`WorkspaceLease::renegotiate`]), and the overcommit is
    /// reported to the caller. Also resets the base budget, so this is the
    /// "official" resize; transient chaos shocks use [`shock_to`]
    /// (Self::shock_to) instead.
    pub fn set_budget(&self, rows: f64) -> bool {
        self.base_budget.set(rows.max(0.0));
        self.budget_rows.set(rows.max(0.0));
        let over = self.overcommitted();
        if over {
            self.pressure_epoch.fetch_add(1, Ordering::Relaxed);
        }
        over
    }

    /// Shock the budget down to at most `rows`, *monotonically*: the budget
    /// only moves toward the minimum, so concurrent shocks from racing
    /// workers commute and the post-shock budget is deterministic. The base
    /// budget is untouched; [`restore`](Self::restore) undoes the shock.
    /// Returns whether the shock left the governor overcommitted (and bumped
    /// the pressure epoch).
    pub fn shock_to(&self, rows: f64) -> bool {
        let rows = rows.max(0.0);
        self.budget_rows.update(|b| b.min(rows));
        let over = self.overcommitted();
        if over {
            self.pressure_epoch.fetch_add(1, Ordering::Relaxed);
        }
        over
    }

    /// Restore the budget to its base value — the "grow" half of a
    /// fluctuating-memory schedule. Never bumps the pressure epoch: growth
    /// requires no renegotiation.
    pub fn restore(&self) {
        self.budget_rows.set(self.base_budget.get());
    }

    /// Monotone counter bumped every time a budget change leaves the
    /// governor overcommitted. Operators holding workspace snapshot it at
    /// grant time and renegotiate when it moves.
    pub fn pressure_epoch(&self) -> u64 {
        self.pressure_epoch.load(Ordering::Relaxed)
    }

    /// Grant up to `want` rows of workspace; returns the granted amount.
    ///
    /// A zero-budget governor still grants `min(want, 100)` — the one-page
    /// progress floor, so operators never deadlock — but the floor never
    /// exceeds the ask: `grant(0.0)` is 0, and a 5-row ask gets 5 rows, not
    /// a phantom page inflating `outstanding`/`granted_total`.
    pub fn grant(&self, want: f64) -> f64 {
        let want = want.max(0.0);
        let floor = want.min(100.0);
        let granted = want.min(self.budget_rows.get()).max(floor);
        let now_out = self.outstanding.update(|x| x + granted);
        self.peak_outstanding.fetch_max(now_out);
        self.grant_count.fetch_add(1, Ordering::Relaxed);
        self.granted_total.add(granted);
        granted
    }

    /// Return `rows` of workspace (an operator released its materialization).
    /// Clamped so sloppy callers cannot drive the tally negative.
    pub fn release(&self, rows: f64) {
        self.outstanding.update(|x| (x - rows.max(0.0)).max(0.0));
    }

    /// Workspace currently handed out and not yet released.
    pub fn outstanding(&self) -> f64 {
        self.outstanding.get()
    }

    /// High-water mark of [`outstanding`](Self::outstanding).
    pub fn peak_outstanding(&self) -> f64 {
        self.peak_outstanding.get()
    }

    /// Number of grants issued.
    pub fn grant_count(&self) -> u64 {
        self.grant_count.load(Ordering::Relaxed)
    }

    /// Sum of all grants issued.
    pub fn granted_total(&self) -> f64 {
        self.granted_total.get()
    }

    /// True while more workspace is outstanding than the current budget —
    /// the state a mid-query budget shrink leaves behind.
    pub fn overcommitted(&self) -> bool {
        self.outstanding.get() > self.budget_rows.get()
    }
}

/// One operator's workspace holding, with graceful degradation under
/// mid-query budget shrinks.
///
/// Sort, hash join and g-join materialize under a governor grant. Before the
/// chaos governor, that grant was fixed for the operator's lifetime, so an
/// FMT-style budget shrink mid-drain silently left the governor
/// overcommitted until the operator finished. A `WorkspaceLease` tracks what
/// the operator actually holds and a snapshot of the governor's pressure
/// epoch; when the epoch moves (a shrink landed), [`renegotiate`]
/// (Self::renegotiate) sheds the overflow back to the governor and charges
/// it as incremental spill — the smooth response the robustness metrics
/// reward, instead of holding memory hostage or failing.
///
/// The lease tracks the *sum* of grants (an operator may grant more than
/// once, e.g. g-join's two run-generation passes), unlike the span's
/// `mem_granted`, which is a high-water max.
#[derive(Debug, Default)]
pub struct WorkspaceLease {
    held: f64,
    epoch: u64,
}

impl WorkspaceLease {
    /// An empty lease.
    pub fn new() -> Self {
        WorkspaceLease::default()
    }

    /// Workspace currently held.
    pub fn held(&self) -> f64 {
        self.held
    }

    /// Take a grant of up to `want` rows, recording it on `span`.
    pub fn grant(&mut self, ctx: &ExecContext, span: &SpanHandle, want: f64) -> f64 {
        let granted = ctx.memory.grant(want);
        span.record_grant(granted);
        self.held += granted;
        self.epoch = ctx.memory.pressure_epoch();
        granted
    }

    /// React to budget pressure: if the governor's pressure epoch moved
    /// since the last grant/renegotiation and this lease now holds more than
    /// the budget, release the overflow (down to the one-page progress
    /// floor) and charge it as spill — exactly once per shock. Returns the
    /// rows shed. A no-op (two atomic loads) while the epoch is unchanged,
    /// so drain loops can call it per row.
    pub fn renegotiate(&mut self, ctx: &ExecContext, span: &SpanHandle) -> f64 {
        let epoch = ctx.memory.pressure_epoch();
        if epoch == self.epoch {
            return 0.0;
        }
        self.epoch = epoch;
        let budget = ctx.memory.budget();
        if self.held <= budget {
            return 0.0;
        }
        // Keep at least one page so the operator still makes progress.
        let keep = budget.max(100.0).min(self.held);
        let shed = self.held - keep;
        if shed <= 0.0 {
            return 0.0;
        }
        self.held = keep;
        ctx.memory.release(shed);
        ctx.clock.charge_spill_rows(shed);
        span.record_spill(shed);
        span.record_event(
            &ctx.clock,
            "governor.pressure",
            &format!("budget shrink: shed {shed:.0} rows, kept {keep:.0}"),
        );
        ctx.metrics.counter("governor.renegotiations").inc();
        shed
    }

    /// Return everything still held to the governor.
    pub fn release(&mut self, ctx: &ExecContext) {
        if self.held > 0.0 {
            ctx.memory.release(self.held);
            self.held = 0.0;
        }
    }
}

/// Everything an operator needs from its environment.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// The deterministic cost clock ("response time").
    pub clock: SharedClock,
    /// The workspace-memory governor.
    pub memory: Arc<MemoryGovernor>,
    /// Collects one span per operator constructed under this context.
    pub tracer: Tracer,
    /// Named counters/gauges/histograms for everything that isn't a plan node.
    pub metrics: MetricsRegistry,
    /// Deterministic fault-injection policy (disabled by default). Shared by
    /// every worker forked from this context, so one seed governs a whole
    /// parallel query.
    pub chaos: Arc<ChaosPolicy>,
    /// Cooperative-cancellation token polled at cost-charging boundaries via
    /// [`checkpoint`](Self::checkpoint). Fresh (never cancelled, no deadline)
    /// unless installed with [`with_cancel`](Self::with_cancel); forked
    /// workers share it, offset by the coordinator's elapsed cost so
    /// deadlines stay in root-clock units.
    pub cancel: CancelToken,
}

impl ExecContext {
    /// Context with the given clock and memory budget.
    pub fn new(clock: SharedClock, memory_rows: f64) -> Self {
        ExecContext {
            clock,
            memory: MemoryGovernor::new(memory_rows),
            tracer: Tracer::new(),
            metrics: MetricsRegistry::new(),
            chaos: Arc::new(ChaosPolicy::off()),
            cancel: CancelToken::new(),
        }
    }

    /// This context with the given fault-injection policy.
    pub fn with_chaos(mut self, policy: ChaosPolicy) -> Self {
        self.chaos = Arc::new(policy);
        self
    }

    /// This context with the given cancellation token (a query service
    /// installs the session's token here before building the plan).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Default context: fresh clock, effectively unbounded memory.
    pub fn unbounded() -> Self {
        ExecContext::new(CostClock::default_clock(), f64::INFINITY)
    }

    /// Default context with a bounded workspace.
    pub fn with_memory(memory_rows: f64) -> Self {
        ExecContext::new(CostClock::default_clock(), memory_rows)
    }

    /// A worker-private context for one exchange worker: a **fresh shard
    /// clock** (same cost parameters, zeroed) and a **fresh tracer**, but
    /// the *same* governor and metrics registry.
    ///
    /// The split is what makes parallel execution deterministic: workers
    /// charge their private shard clocks, and the gather side
    /// [`absorb`](CostClock::absorb)s the shards and
    /// [`adopt`](Tracer::adopt)s the worker traces in worker-index order —
    /// so cost totals and trace contents never depend on thread scheduling.
    /// Memory, by contrast, is genuinely shared: one budget spans all
    /// workers, which is exactly the contention surface the governor exists
    /// to observe.
    pub fn fork_worker(&self) -> ExecContext {
        ExecContext {
            clock: CostClock::new(*self.clock.params()),
            memory: Arc::clone(&self.memory),
            tracer: Tracer::new(),
            metrics: self.metrics.clone(),
            chaos: Arc::clone(&self.chaos),
            // Same token, offset by the coordinator's elapsed cost: the
            // worker's shard clock restarts at zero but its deadline polls
            // must still compare against root-clock cost units.
            cancel: self.cancel.child(self.clock.now()),
        }
    }

    /// Poll the cancellation token at the current virtual time and unwind
    /// with the typed cause ([`RqpError::Cancelled`] /
    /// [`RqpError::DeadlineExceeded`]) if it has tripped.
    ///
    /// Operators call this at cost-charging boundaries (scan pages, sort and
    /// join output rows, exchange worker loops), right where they already
    /// call [`WorkspaceLease::renegotiate`]: cancellation is just one more
    /// resource condition observed cooperatively. The unwind takes the
    /// normal early-termination path — operator `Drop` impls release
    /// workspace leases and close spans — and the exchange gather triages
    /// the payload as a cancellation, never as a retryable worker fault.
    #[inline]
    pub fn checkpoint(&self) {
        if let Some(cause) = self.cancel.poll(self.clock.now()) {
            self.metrics.counter("cancel.trips").inc();
            // The payload is a typed RqpError the unwind-catchers triage;
            // the quiet hook keeps the deliberate unwind off stderr.
            rqp_common::chaos::install_quiet_panic_hook();
            std::panic::panic_any(cause);
        }
    }

    /// Open a span for an operator under construction, re-parenting the
    /// spans of its `inputs` beneath it — the trace tree emerges from
    /// construction order.
    pub fn op_span(&self, kind: &'static str, inputs: &[&BoxOp]) -> SpanHandle {
        let span = self.tracer.open(kind, &self.clock);
        for op in inputs {
            if let Some(s) = op.span() {
                s.set_parent(span.id());
            }
        }
        span
    }

    /// Assemble a [`RunReport`](rqp_telemetry::RunReport) from everything
    /// this context observed: the cost-clock breakdown, every span, every
    /// metric. Experiments call this once at the end of a run and
    /// [`write_to`](rqp_telemetry::RunReport::write_to) `exp_output/`.
    pub fn run_report(&self, experiment: &str) -> rqp_telemetry::RunReport {
        let mut report = rqp_telemetry::RunReport::new(experiment);
        report.cost = self.clock.breakdown();
        report.spans = self.tracer.snapshot();
        report.metrics = self.metrics.snapshot();
        report
    }
}

/// A pass-through operator that gives an un-instrumented input a span.
///
/// This absorbs the old `Meter` row counter into the span API: wrapping a
/// source in `SpanOp` counts its rows exactly as `Meter` did, but the count
/// lands in the trace next to every other operator's observations instead of
/// in a bespoke `Rc<Cell<usize>>`. Operators in this crate already carry
/// spans; `SpanOp` is for ad-hoc pipelines (tests, benches, raw sources).
pub struct SpanOp {
    inner: BoxOp,
    span: SpanHandle,
    clock: SharedClock,
}

impl SpanOp {
    /// Wrap `inner` under a fresh span of the given kind.
    pub fn new(inner: BoxOp, kind: &'static str, ctx: &ExecContext) -> Self {
        let span = ctx.op_span(kind, &[&inner]);
        SpanOp { inner, span, clock: Arc::clone(&ctx.clock) }
    }

    /// A handle to the span counting this operator's output.
    pub fn handle(&self) -> SpanHandle {
        self.span.clone()
    }
}

impl Operator for SpanOp {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Option<Row> {
        let row = self.inner.next();
        match &row {
            Some(_) => self.span.produced(&self.clock),
            None => self.span.close(&self.clock),
        }
        row
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Drain an operator into a vector.
pub fn collect(op: &mut dyn Operator) -> Vec<Row> {
    let mut out = Vec::new();
    while let Some(r) = op.next() {
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::{DataType, Value};

    /// A tiny literal-rows source for tests.
    pub struct RowsOp {
        schema: Schema,
        rows: std::vec::IntoIter<Row>,
    }

    impl RowsOp {
        pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
            RowsOp { schema, rows: rows.into_iter() }
        }
    }

    impl Operator for RowsOp {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn next(&mut self) -> Option<Row> {
            self.rows.next()
        }
    }

    #[test]
    fn span_op_counts_rows() {
        let ctx = ExecContext::unbounded();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let rows: Vec<Row> = (0..5).map(|i| vec![Value::Int(i)]).collect();
        let src = Box::new(RowsOp::new(schema, rows));
        let mut m = SpanOp::new(src, "rows", &ctx);
        let handle = m.handle();
        assert_eq!(handle.rows(), 0);
        let out = collect(&mut m);
        assert_eq!(out.len(), 5);
        assert_eq!(handle.rows(), 5);
        assert!(handle.is_closed());
        assert_eq!(ctx.tracer.len(), 1);
    }

    #[test]
    fn governor_grant_and_fluctuation() {
        let g = MemoryGovernor::new(10_000.0);
        assert_eq!(g.grant(5_000.0), 5_000.0);
        assert_eq!(g.grant(50_000.0), 10_000.0);
        g.set_budget(1_000.0);
        assert_eq!(g.grant(50_000.0), 1_000.0);
        g.set_budget(0.0);
        assert_eq!(g.grant(50_000.0), 100.0, "one-page floor");
    }

    #[test]
    fn governor_zero_budget_still_makes_progress() {
        let g = MemoryGovernor::new(0.0);
        assert_eq!(g.budget(), 0.0);
        // Big asks against a zero budget are floored at one page so
        // operators never deadlock…
        assert_eq!(g.grant(1_000_000.0), 100.0);
        // …and the governor knows it handed out more than it has.
        assert_eq!(g.outstanding(), 100.0);
        assert!(g.overcommitted());
        // A negative construction budget clamps to zero, same behavior.
        let g = MemoryGovernor::new(-5.0);
        assert_eq!(g.budget(), 0.0);
        assert_eq!(g.grant(500.0), 100.0);
    }

    #[test]
    fn governor_never_grants_more_than_asked() {
        // The progress floor is capped at the ask: sub-page requests get
        // exactly what they wanted, and a zero ask gets zero — no phantom
        // pages in outstanding/granted_total.
        let g = MemoryGovernor::new(0.0);
        assert_eq!(g.grant(0.0), 0.0);
        assert_eq!(g.grant(5.0), 5.0);
        assert_eq!(g.grant(-3.0), 0.0, "negative asks clamp to zero");
        assert_eq!(g.outstanding(), 5.0);
        assert_eq!(g.granted_total(), 5.0);
        // Same with a healthy budget: the floor never rounds an ask up.
        let g = MemoryGovernor::new(10_000.0);
        assert_eq!(g.grant(7.0), 7.0);
        assert_eq!(g.grant(0.0), 0.0);
        assert_eq!(g.outstanding(), 7.0);
    }

    #[test]
    fn governor_shrink_below_outstanding_grants() {
        let g = MemoryGovernor::new(10_000.0);
        let a = g.grant(8_000.0);
        assert_eq!(a, 8_000.0);
        assert!(!g.overcommitted());
        // FMT shrinks the budget mid-query, below what is already out.
        g.set_budget(1_000.0);
        assert!(g.overcommitted(), "8000 outstanding vs budget 1000");
        // New grants see the shrunken budget; old grants are not revoked.
        let b = g.grant(5_000.0);
        assert_eq!(b, 1_000.0);
        assert_eq!(g.outstanding(), 9_000.0);
        // Releasing the big materialization clears the overcommit.
        g.release(a);
        assert_eq!(g.outstanding(), 1_000.0);
        assert!(!g.overcommitted());
    }

    #[test]
    fn governor_accounting_across_concurrent_operators() {
        let g = MemoryGovernor::new(4_000.0);
        // Two operators materialize at the same time (e.g. both sides of a
        // sort-merge join): each grant is tallied, not just the last one.
        let sort_l = g.grant(3_000.0);
        let sort_r = g.grant(3_000.0);
        assert_eq!((sort_l, sort_r), (3_000.0, 3_000.0));
        assert_eq!(g.grant_count(), 2);
        assert_eq!(g.granted_total(), 6_000.0);
        assert_eq!(g.outstanding(), 6_000.0);
        assert_eq!(g.peak_outstanding(), 6_000.0);
        assert!(g.overcommitted(), "governor admits both, but visibly");
        g.release(sort_l);
        g.release(sort_r);
        assert_eq!(g.outstanding(), 0.0);
        assert_eq!(g.peak_outstanding(), 6_000.0, "peak survives release");
        // Over-release clamps instead of going negative.
        g.release(1_000.0);
        assert_eq!(g.outstanding(), 0.0);
    }

    #[test]
    fn set_budget_reports_overcommit_and_bumps_pressure_epoch() {
        let g = MemoryGovernor::new(10_000.0);
        assert_eq!(g.pressure_epoch(), 0);
        // Shrinking with nothing outstanding is quiet.
        assert!(!g.set_budget(5_000.0));
        assert_eq!(g.pressure_epoch(), 0);
        // Shrinking below outstanding is reported, not silently passed.
        g.grant(4_000.0);
        assert!(g.set_budget(1_000.0), "outstanding 4000 vs budget 1000");
        assert_eq!(g.pressure_epoch(), 1);
        assert!(g.overcommitted());
        // Growing back is quiet again.
        assert!(!g.set_budget(50_000.0));
        assert_eq!(g.pressure_epoch(), 1);
    }

    #[test]
    fn shock_is_monotone_and_restore_returns_to_base() {
        let g = MemoryGovernor::new(8_000.0);
        assert!(!g.shock_to(2_000.0));
        assert_eq!(g.budget(), 2_000.0);
        // Shocks only tighten: a "weaker" concurrent shock cannot undo a
        // stronger one, so racing workers commute.
        g.shock_to(4_000.0);
        assert_eq!(g.budget(), 2_000.0);
        g.shock_to(500.0);
        assert_eq!(g.budget(), 500.0);
        assert_eq!(g.base_budget(), 8_000.0, "base survives shocks");
        g.restore();
        assert_eq!(g.budget(), 8_000.0);
        // An overcommitting shock bumps the epoch.
        g.grant(6_000.0);
        let before = g.pressure_epoch();
        assert!(g.shock_to(1_000.0));
        assert_eq!(g.pressure_epoch(), before + 1);
    }

    #[test]
    fn lease_renegotiates_once_per_shock() {
        let ctx = ExecContext::with_memory(10_000.0);
        let span = ctx.tracer.open("probe", &ctx.clock);
        let mut lease = WorkspaceLease::new();
        assert_eq!(lease.grant(&ctx, &span, 8_000.0), 8_000.0);
        assert_eq!(lease.held(), 8_000.0);
        // No pressure: renegotiation is a no-op, charges nothing.
        assert_eq!(lease.renegotiate(&ctx, &span), 0.0);
        assert_eq!(ctx.clock.breakdown().spill, 0.0);
        // One shock → exactly one shed, spilled exactly once.
        ctx.memory.set_budget(2_000.0);
        assert_eq!(lease.renegotiate(&ctx, &span), 6_000.0);
        assert_eq!(lease.held(), 2_000.0);
        assert_eq!(ctx.memory.outstanding(), 2_000.0);
        assert_eq!(span.spill_events(), 1);
        let spill_after_first = ctx.clock.breakdown().spill;
        assert!(spill_after_first > 0.0);
        // Re-checking without a new shock must not shed again.
        assert_eq!(lease.renegotiate(&ctx, &span), 0.0);
        assert_eq!(ctx.clock.breakdown().spill, spill_after_first);
        // Shrinking to zero still leaves the one-page progress floor.
        ctx.memory.set_budget(0.0);
        lease.renegotiate(&ctx, &span);
        assert_eq!(lease.held(), 100.0);
        lease.release(&ctx);
        assert_eq!(ctx.memory.outstanding(), 0.0);
        assert_eq!(lease.held(), 0.0);
        // governor.pressure surfaced as a span event.
        assert!(span.events().iter().any(|e| e.kind == "governor.pressure"));
    }

    #[test]
    fn chaos_defaults_off_and_forks_shared() {
        let ctx = ExecContext::unbounded();
        assert!(!ctx.chaos.is_enabled(), "default context injects nothing");
        let chaotic = ExecContext::with_memory(1_000.0)
            .with_chaos(rqp_common::ChaosPolicy::seeded(7));
        assert!(chaotic.chaos.is_enabled());
        let w = chaotic.fork_worker();
        assert!(
            Arc::ptr_eq(&w.chaos, &chaotic.chaos),
            "workers share the coordinator's policy"
        );
    }

    #[test]
    fn governor_is_shared_across_threads() {
        let g = MemoryGovernor::new(1_000_000.0);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let got = g.grant(200.0);
                        g.release(got);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.outstanding(), 0.0, "all grants returned");
        assert_eq!(g.grant_count(), 2_000);
        assert_eq!(g.granted_total(), 400_000.0);
    }

    #[test]
    fn contexts() {
        let c = ExecContext::unbounded();
        assert_eq!(c.clock.now(), 0.0);
        assert!(c.memory.budget().is_infinite());
        assert!(c.tracer.is_empty());
        assert!(c.metrics.is_empty());
        let c = ExecContext::with_memory(500.0);
        assert_eq!(c.memory.budget(), 500.0);
        // Clones share the tracer and metrics namespace.
        let c2 = c.clone();
        c2.tracer.open("probe", &c2.clock);
        assert_eq!(c.tracer.len(), 1);
    }

    #[test]
    fn fork_worker_shares_memory_but_not_clock_or_trace() {
        let ctx = ExecContext::with_memory(5_000.0);
        ctx.clock.charge_seq_pages(10.0);
        ctx.tracer.open("parent_op", &ctx.clock);
        let w = ctx.fork_worker();
        assert_eq!(w.clock.now(), 0.0, "shard clock starts at zero");
        assert_eq!(w.clock.params(), ctx.clock.params());
        assert!(w.tracer.is_empty(), "worker traces privately");
        // The governor is the same object: a worker grant is visible to all.
        w.memory.grant(400.0);
        assert_eq!(ctx.memory.outstanding(), 400.0);
        // So is the metrics namespace.
        w.metrics.counter("shared.counter").inc();
        assert_eq!(ctx.metrics.counter("shared.counter").get(), 1);
        // Worker charges stay on the shard until absorbed.
        w.clock.charge_seq_pages(3.0);
        assert_eq!(ctx.clock.now(), 10.0);
        ctx.clock.absorb(&w.clock.breakdown());
        assert_eq!(ctx.clock.now(), 13.0);
    }

    #[test]
    fn checkpoint_is_a_no_op_on_a_live_token() {
        let ctx = ExecContext::unbounded();
        ctx.clock.charge_seq_pages(1_000.0);
        ctx.checkpoint(); // must not panic
        assert_eq!(ctx.metrics.counter("cancel.trips").get(), 0);
    }

    #[test]
    fn checkpoint_unwinds_with_the_typed_cause() {
        use rqp_common::RqpError;
        let ctx = ExecContext::unbounded();
        ctx.cancel.cancel();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.checkpoint();
        }))
        .expect_err("cancelled context must unwind");
        let err = payload.downcast_ref::<RqpError>().expect("typed payload");
        assert_eq!(*err, RqpError::Cancelled);
        assert!(err.is_cancellation());
        assert_eq!(ctx.metrics.counter("cancel.trips").get(), 1);
    }

    #[test]
    fn deadline_trips_on_the_cost_clock() {
        use rqp_common::RqpError;
        let ctx = ExecContext::unbounded();
        ctx.cancel.set_deadline(50.0);
        ctx.clock.charge_seq_pages(4.0); // 4 cost units < 50
        ctx.checkpoint();
        ctx.clock.charge_seq_pages(100.0);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.checkpoint();
        }))
        .expect_err("past-deadline context must unwind");
        assert_eq!(
            *payload.downcast_ref::<RqpError>().expect("typed payload"),
            RqpError::DeadlineExceeded
        );
    }

    #[test]
    fn forked_worker_shares_the_deadline_in_root_units() {
        let ctx = ExecContext::unbounded();
        ctx.cancel.set_deadline(100.0);
        ctx.clock.charge_seq_pages(80.0);
        let w = ctx.fork_worker();
        // The shard clock restarts at zero, but the worker's token carries
        // the coordinator's 80 elapsed units: 20 more trips the deadline.
        w.clock.charge_seq_pages(19.0);
        w.checkpoint();
        w.clock.charge_seq_pages(1.0);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.checkpoint();
        }))
        .is_err());
        // The trip latched on the shared token: the coordinator sees it too.
        assert!(ctx.cancel.is_cancelled());
    }
}
